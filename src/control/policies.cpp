#include "control/policies.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace tsvpt::control {

namespace {

constexpr double kEpsilonFraction = 1e-12;

DieCommand command_at(const Ladder& ladder, std::size_t level) {
  DieCommand cmd;
  cmd.level = std::min(level, ladder.size() - 1);
  cmd.relative_frequency = ladder[cmd.level].relative_frequency;
  cmd.power_scale = ladder[cmd.level].power_scale;
  return cmd;
}

std::size_t resolve_level(const Ladder& ladder, std::size_t level) {
  return level == kLadderBottom ? ladder.size() - 1
                                : std::min(level, ladder.size() - 1);
}

void validate_common(const PolicyConfig& config) {
  validate_ladder(config.ladder);
  if (!(config.floor < config.ceiling)) {
    throw std::invalid_argument{"PolicyConfig: floor must be below ceiling"};
  }
}

/// Worst-case baseline: every die parked at one rung, sensing ignored.
class StaticWorstCasePolicy final : public Policy {
 public:
  StaticWorstCasePolicy(const PolicyConfig& config, std::size_t die_count)
      : ladder_(config.ladder), die_count_(die_count) {
    validate_ladder(ladder_);
    level_ = resolve_level(ladder_, config.static_level);
  }

  [[nodiscard]] const char* name() const override { return "static"; }

  [[nodiscard]] Actuation decide(const StackObservation&) override {
    return safe_actuation();
  }

  [[nodiscard]] Actuation safe_actuation() const override {
    Actuation act;
    act.dies.assign(die_count_, command_at(ladder_, level_));
    return act;
  }

  void reset() override {}

 private:
  Ladder ladder_;
  std::size_t die_count_;
  std::size_t level_ = 0;
};

/// Per-die ladder governor with hysteresis — one LadderStepper walk per
/// die, each starting worst-case-safe at the bottom rung.
class DvfsLadderPolicy final : public Policy {
 public:
  DvfsLadderPolicy(const PolicyConfig& config, std::size_t die_count)
      : ladder_(config.ladder),
        stepper_{config.ceiling, config.floor},
        levels_(die_count, 0) {
    validate_common(config);
    reset();
  }

  [[nodiscard]] const char* name() const override { return "dvfs"; }

  [[nodiscard]] Actuation decide(const StackObservation& obs) override {
    Actuation act;
    act.dies.resize(levels_.size());
    for (std::size_t d = 0; d < levels_.size(); ++d) {
      const bool blind = d >= obs.dies.size() || obs.dies[d].blind();
      if (blind) {
        levels_[d] = ladder_.size() - 1;  // never actuate on a dead sensor
      } else {
        levels_[d] =
            stepper_.step(levels_[d], ladder_.size(), obs.dies[d].max_sensed);
      }
      act.dies[d] = command_at(ladder_, levels_[d]);
    }
    return act;
  }

  [[nodiscard]] Actuation safe_actuation() const override {
    Actuation act;
    act.dies.assign(levels_.size(), command_at(ladder_, ladder_.size() - 1));
    return act;
  }

  void reset() override {
    std::fill(levels_.begin(), levels_.end(), ladder_.size() - 1);
  }

 private:
  Ladder ladder_;
  LadderStepper stepper_;
  std::vector<std::size_t> levels_;
};

/// Reactive clock/power gating: a hysteretic trip per die.  Gated dies run
/// at the gate fraction with zero work; everything else runs nominal.
class ReactiveGatingPolicy final : public Policy {
 public:
  ReactiveGatingPolicy(const PolicyConfig& config, std::size_t die_count)
      : ladder_(config.ladder), gate_scale_(config.gate_power_scale) {
    validate_ladder(ladder_);
    if (gate_scale_ < 0.0 || gate_scale_ > 1.0) {
      throw std::invalid_argument{"PolicyConfig: gate_power_scale"};
    }
    trips_.reserve(die_count);
    for (std::size_t d = 0; d < die_count; ++d) {
      trips_.emplace_back(config.gate_on, config.gate_off);
    }
  }

  [[nodiscard]] const char* name() const override { return "gating"; }

  [[nodiscard]] Actuation decide(const StackObservation& obs) override {
    Actuation act;
    act.dies.resize(trips_.size());
    for (std::size_t d = 0; d < trips_.size(); ++d) {
      const bool blind = d >= obs.dies.size() || obs.dies[d].blind();
      bool gated;
      if (blind) {
        gated = true;  // fail safe, and resync the trip with reality
        trips_[d].update(Celsius{1e6});
      } else {
        gated = trips_[d].update(obs.dies[d].max_sensed);
      }
      act.dies[d] = gated ? gated_command() : command_at(ladder_, 0);
    }
    return act;
  }

  [[nodiscard]] Actuation safe_actuation() const override {
    Actuation act;
    act.dies.assign(trips_.size(), gated_command());
    return act;
  }

  void reset() override {
    for (Hysteresis& trip : trips_) trip.reset();
  }

 private:
  [[nodiscard]] DieCommand gated_command() const {
    DieCommand cmd;
    cmd.level = ladder_.size() - 1;
    cmd.relative_frequency = 0.0;
    cmd.power_scale = gate_scale_;
    cmd.gated = true;
    return cmd;
  }

  Ladder ladder_;
  double gate_scale_;
  std::vector<Hysteresis> trips_;
};

/// Inter-die task migration: a dvfs backstop keeps every die legal while a
/// persistent set of power moves drains the hottest die toward the coolest.
/// The move set grows or retracts one `migrate_step` at a time, under a
/// cooldown, and only while the hot/cool gap exceeds the margin — which is
/// what keeps two equally-hot dies from trading work forever.
class MigrationPolicy final : public Policy {
 public:
  MigrationPolicy(const PolicyConfig& config, std::size_t die_count)
      : ladder_(config.ladder),
        stepper_{config.ceiling, config.floor},
        trip_(config.migrate_trip),
        margin_(config.migrate_margin_c),
        step_(config.migrate_step),
        cap_(config.migrate_cap),
        cooldown_scans_(config.migrate_cooldown_scans),
        levels_(die_count, 0) {
    validate_common(config);
    if (step_ <= 0.0 || step_ > 1.0) {
      throw std::invalid_argument{"PolicyConfig: migrate_step"};
    }
    if (cap_ <= 0.0 || cap_ > 1.0 || cap_ < step_) {
      throw std::invalid_argument{"PolicyConfig: migrate_cap"};
    }
    if (margin_ < 0.0) {
      throw std::invalid_argument{"PolicyConfig: migrate_margin_c"};
    }
    reset();
  }

  [[nodiscard]] const char* name() const override { return "migration"; }

  [[nodiscard]] Actuation decide(const StackObservation& obs) override {
    Actuation act;
    act.dies.resize(levels_.size());
    for (std::size_t d = 0; d < levels_.size(); ++d) {
      const bool blind = d >= obs.dies.size() || obs.dies[d].blind();
      if (blind) {
        levels_[d] = ladder_.size() - 1;
      } else {
        levels_[d] =
            stepper_.step(levels_[d], ladder_.size(), obs.dies[d].max_sensed);
      }
      act.dies[d] = command_at(ladder_, levels_[d]);
    }
    rebalance(obs);
    act.migrations = moves_;
    return act;
  }

  [[nodiscard]] Actuation safe_actuation() const override {
    Actuation act;
    act.dies.assign(levels_.size(), command_at(ladder_, ladder_.size() - 1));
    return act;
  }

  void reset() override {
    std::fill(levels_.begin(), levels_.end(), ladder_.size() - 1);
    moves_.clear();
    since_move_ = cooldown_scans_;  // first decision may move immediately
  }

 private:
  void rebalance(const StackObservation& obs) {
    if (since_move_ < cooldown_scans_) {
      ++since_move_;
      return;
    }
    // Hottest and coolest sighted dies; ties break toward the lower index.
    std::size_t hot = levels_.size(), cool = levels_.size();
    for (std::size_t d = 0; d < std::min(levels_.size(), obs.dies.size());
         ++d) {
      if (obs.dies[d].blind()) continue;  // never a source or a target
      if (hot == levels_.size() || obs.dies[d].max_sensed > obs.dies[hot].max_sensed) {
        hot = d;
      }
      if (cool == levels_.size() ||
          obs.dies[d].max_sensed < obs.dies[cool].max_sensed) {
        cool = d;
      }
    }
    if (hot == levels_.size() || cool == levels_.size() || hot == cool) {
      return;
    }
    if (!(obs.dies[hot].max_sensed > trip_)) return;
    if (obs.dies[hot].max_sensed.value() - obs.dies[cool].max_sensed.value() <=
        margin_) {
      return;
    }
    // Undo flow into the hot die before ever opening a reverse lane —
    // retract-first is the other half of the no-ping-pong guarantee.
    for (auto it = moves_.begin(); it != moves_.end(); ++it) {
      if (it->to_die != hot) continue;
      it->fraction -= step_;
      if (it->fraction <= kEpsilonFraction) moves_.erase(it);
      since_move_ = 0;
      return;
    }
    double outflow = 0.0;
    for (const Migration& m : moves_) {
      if (m.from_die == hot) outflow += m.fraction;
    }
    const double room = cap_ - outflow;
    if (room <= kEpsilonFraction) return;
    const double grow = std::min(step_, room);
    for (Migration& m : moves_) {
      if (m.from_die == hot && m.to_die == cool) {
        m.fraction += grow;
        since_move_ = 0;
        return;
      }
    }
    moves_.push_back(Migration{hot, cool, grow});
    since_move_ = 0;
  }

  Ladder ladder_;
  LadderStepper stepper_;
  Celsius trip_;
  double margin_;
  double step_;
  double cap_;
  std::uint64_t cooldown_scans_;
  std::vector<std::size_t> levels_;
  std::vector<Migration> moves_;
  std::uint64_t since_move_ = 0;
};

}  // namespace

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kStaticWorstCase: return "static";
    case PolicyKind::kDvfsLadder: return "dvfs";
    case PolicyKind::kReactiveGating: return "gating";
    case PolicyKind::kMigration: return "migration";
  }
  return "unknown";
}

bool parse_policy_kind(std::string_view text, PolicyKind* out) {
  if (text == "static") { *out = PolicyKind::kStaticWorstCase; return true; }
  if (text == "dvfs") { *out = PolicyKind::kDvfsLadder; return true; }
  if (text == "gating") { *out = PolicyKind::kReactiveGating; return true; }
  if (text == "migration") { *out = PolicyKind::kMigration; return true; }
  return false;
}

std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                    const PolicyConfig& config,
                                    std::size_t die_count) {
  if (die_count == 0) {
    throw std::invalid_argument{"make_policy: zero dies"};
  }
  switch (kind) {
    case PolicyKind::kStaticWorstCase:
      return std::make_unique<StaticWorstCasePolicy>(config, die_count);
    case PolicyKind::kDvfsLadder:
      return std::make_unique<DvfsLadderPolicy>(config, die_count);
    case PolicyKind::kReactiveGating:
      return std::make_unique<ReactiveGatingPolicy>(config, die_count);
    case PolicyKind::kMigration:
      return std::make_unique<MigrationPolicy>(config, die_count);
  }
  throw std::invalid_argument{"make_policy: unknown kind"};
}

}  // namespace tsvpt::control
