#include "control/eval.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/pt_sensor.hpp"
#include "ptsim/rng.hpp"

namespace tsvpt::control {

namespace {

void set_site_dead(core::StackMonitor& monitor, std::size_t site, bool dead) {
  if (dead) {
    for (std::size_t r = 0; r < core::kRoCount; ++r) {
      monitor.sensor(site).inject_fault(static_cast<core::RoRole>(r),
                                        core::RoFault::kDead);
    }
  } else {
    monitor.sensor(site).clear_faults();
  }
}

Celsius stack_max_true(const thermal::ThermalNetwork& network) {
  Celsius hottest{-273.15};
  for (std::size_t d = 0; d < network.config().die_count(); ++d) {
    const Celsius t = to_celsius(network.max_temperature(d));
    if (t > hottest) hottest = t;
  }
  return hottest;
}

}  // namespace

EvalResult run_closed_loop(thermal::ThermalNetwork& network,
                           const thermal::Workload& workload,
                           core::StackMonitor& monitor,
                           Controller& controller, const EvalConfig& config,
                           std::uint64_t noise_seed) {
  if (config.sample_period.value() <= 0.0 ||
      config.thermal_step.value() <= 0.0) {
    throw std::invalid_argument{"run_closed_loop: non-positive period"};
  }
  if (config.max_duration.value() <= 0.0) {
    throw std::invalid_argument{"run_closed_loop: non-positive duration"};
  }
  for (const SensorOutage& o : config.outages) {
    if (o.site >= monitor.site_count() || o.end_scan <= o.start_scan) {
      throw std::invalid_argument{"run_closed_loop: bad outage"};
    }
  }

  Rng noise{noise_seed};
  controller.reset();

  // Power-on: program the uncontrolled map, pick the start state, calibrate.
  workload.apply(network, Second{0.0});
  if (config.start_at_steady_state) {
    network.set_temperatures(network.steady_state());
  } else {
    network.set_uniform_temperature(network.config().ambient);
  }
  monitor.calibrate_all(&noise);

  std::unique_ptr<core::HealthSupervisor> supervisor;
  if (config.supervise) {
    supervisor = std::make_unique<core::HealthSupervisor>(config.health);
  }

  EvalResult result;
  Second t{0.0};
  std::uint64_t scan = 0;
  while (true) {
    for (const SensorOutage& o : config.outages) {
      if (scan == o.start_scan) set_site_dead(monitor, o.site, true);
      if (scan == o.end_scan) set_site_dead(monitor, o.site, false);
    }

    std::vector<core::StackMonitor::SiteReading> readings;
    if (supervisor != nullptr) {
      // The FleetSampler's skip-quarantined path: sites the supervisor has
      // pulled from duty are never converted; their slots carry degraded
      // placeholders the supervisor substitutes.
      const std::size_t sites = monitor.site_count();
      std::vector<bool> sampled(sites, true);
      readings.reserve(sites);
      for (std::size_t i = 0; i < sites; ++i) {
        if (supervisor->wants_sample(i)) {
          readings.push_back(monitor.sample_site(i, &noise));
        } else {
          sampled[i] = false;
          core::StackMonitor::SiteReading placeholder;
          placeholder.site_index = i;
          placeholder.die = monitor.site(i).die;
          placeholder.location = monitor.site(i).location;
          placeholder.truth = monitor.truth_at(i);
          placeholder.degraded = true;
          readings.push_back(placeholder);
        }
      }
      auto observed = supervisor->observe(readings, sampled);
      for (const std::size_t i : observed.recalibrate) {
        monitor.sensor(i).clear_calibration();
      }
      readings = std::move(observed.readings);
    } else {
      readings = monitor.sample_all(&noise);
    }

    controller.on_scan(scan, t, readings);
    if (config.on_scan) config.on_scan(scan, readings, controller.actuation());
    ++scan;

    Second advanced{0.0};
    while (advanced < config.sample_period) {
      const Second h = std::min(config.thermal_step,
                                config.sample_period - advanced);
      if (h.value() <= 0.0) break;  // float residue; the period is covered
      apply_actuation(workload, network, t + advanced,
                      controller.actuation(), controller.config().plant);
      network.step(h);
      const Celsius max_true = stack_max_true(network);
      controller.note_tick(
          h, max_true,
          Watt{network.total_power().value() +
               network.leakage_power().value()});
      advanced += h;
      if (max_true > config.abort_above) {
        result.runaway = true;
        result.duration = t + advanced;
        result.stats = controller.stats();
        return result;
      }
      if (config.work_budget > 0.0 &&
          controller.stats().work_done >= config.work_budget) {
        result.completed = true;
        result.duration = t + advanced;
        result.stats = controller.stats();
        return result;
      }
    }
    t += config.sample_period;
    if (t >= config.max_duration) break;
  }

  result.duration = t;
  result.stats = controller.stats();
  return result;
}

}  // namespace tsvpt::control
