#include "control/controller.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace tsvpt::control {

namespace {

/// Control-plane instrumentation, registered once and shared by every
/// stack's controller (handles are sharded internally, so concurrent
/// workers stay uncontended).
struct ControlMetrics {
  obs::Counter decisions = obs::counter("tsvpt_control_decisions_total");
  obs::Counter actuations = obs::counter("tsvpt_control_actuations_total");
  obs::Counter migrations = obs::counter("tsvpt_control_migrations_total");
  obs::Counter blind = obs::counter("tsvpt_control_blind_scans_total");

  static const ControlMetrics& get() {
    static const ControlMetrics metrics;
    return metrics;
  }
};

std::uint64_t migration_delta(const std::vector<Migration>& before,
                              const std::vector<Migration>& after) {
  std::uint64_t changed = 0;
  const std::size_t common = std::min(before.size(), after.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(before[i] == after[i])) ++changed;
  }
  changed += static_cast<std::uint64_t>(
      std::max(before.size(), after.size()) - common);
  return changed;
}

void append_u64(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu,",
                static_cast<unsigned long long>(v));
  *out += buf;
}

void append_double_bits(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx,",
                static_cast<unsigned long long>(bits));
  *out += buf;
}

}  // namespace

Controller::Controller(Config config, std::size_t die_count)
    : config_(config),
      die_count_(die_count),
      policy_(make_policy(config.kind, config.policy, die_count)) {
  if (config_.plant.unscalable_fraction < 0.0 ||
      config_.plant.unscalable_fraction > 1.0) {
    throw std::invalid_argument{"Controller: unscalable_fraction"};
  }
  actuation_ = policy_->safe_actuation();
}

void Controller::on_scan(
    std::uint64_t scan, Second sim_time,
    const std::vector<core::StackMonitor::SiteReading>& readings) {
  on_observation(observe_scan(scan, sim_time, readings, die_count_));
}

void Controller::on_observation(const StackObservation& obs) {
  const ControlMetrics& metrics = ControlMetrics::get();
  Actuation next = policy_->decide(obs);

  stats_.decisions += 1;
  metrics.decisions.inc();
  std::uint64_t level_changes = 0;
  const std::size_t common = std::min(actuation_.dies.size(), next.dies.size());
  for (std::size_t d = 0; d < common; ++d) {
    if (!(actuation_.dies[d] == next.dies[d])) ++level_changes;
  }
  level_changes += static_cast<std::uint64_t>(
      std::max(actuation_.dies.size(), next.dies.size()) - common);
  const std::uint64_t moved =
      migration_delta(actuation_.migrations, next.migrations);
  stats_.level_changes += level_changes;
  stats_.migrations += moved;
  if (moved > 0) metrics.migrations.add(moved);
  if (level_changes > 0 || moved > 0) {
    stats_.actuations += 1;
    metrics.actuations.inc();
  }
  for (const DieObservation& die : obs.dies) {
    if (die.blind()) {
      stats_.blind_scans += 1;
      metrics.blind.inc();
      break;
    }
  }
  actuation_ = std::move(next);
}

void Controller::note_tick(Second dt, Celsius max_true, Watt total_power) {
  stats_.energy_j += total_power.value() * dt.value();
  if (max_true > config_.violation_ceiling) {
    stats_.violation_s += dt.value();
  }
  if (max_true.value() > stats_.peak_true_c) {
    stats_.peak_true_c = max_true.value();
  }
  double rate = 0.0;
  for (const DieCommand& cmd : actuation_.dies) {
    if (!cmd.gated) rate += cmd.relative_frequency;
  }
  stats_.work_done += rate * dt.value();
}

void Controller::reset() {
  policy_->reset();
  actuation_ = policy_->safe_actuation();
  stats_ = Stats{};
}

ControlPlane::ControlPlane(Config config) : config_(config) {
  if (config_.stack_count == 0) {
    throw std::invalid_argument{"ControlPlane: zero stacks"};
  }
  if (config_.die_count == 0) {
    throw std::invalid_argument{"ControlPlane: zero dies"};
  }
  controllers_.reserve(config_.stack_count);
  for (std::size_t k = 0; k < config_.stack_count; ++k) {
    controllers_.push_back(
        std::make_unique<Controller>(config_.controller, config_.die_count));
  }
}

Controller::Stats ControlPlane::total() const {
  Controller::Stats total;
  for (const auto& c : controllers_) {
    const Controller::Stats& s = c->stats();
    total.decisions += s.decisions;
    total.actuations += s.actuations;
    total.level_changes += s.level_changes;
    total.migrations += s.migrations;
    total.blind_scans += s.blind_scans;
    total.energy_j += s.energy_j;
    total.work_done += s.work_done;
    total.violation_s += s.violation_s;
    total.peak_true_c = std::max(total.peak_true_c, s.peak_true_c);
  }
  return total;
}

std::string canonical_digest(const ControlPlane& plane) {
  std::string out;
  out.reserve(plane.stack_count() * 96);
  for (std::size_t k = 0; k < plane.stack_count(); ++k) {
    const Controller::Stats& s = plane.controller(k).stats();
    append_u64(&out, k);
    append_u64(&out, s.decisions);
    append_u64(&out, s.actuations);
    append_u64(&out, s.level_changes);
    append_u64(&out, s.migrations);
    append_u64(&out, s.blind_scans);
    append_double_bits(&out, s.energy_j);
    append_double_bits(&out, s.work_done);
    append_double_bits(&out, s.violation_s);
    append_double_bits(&out, s.peak_true_c);
    out += '\n';
  }
  return out;
}

}  // namespace tsvpt::control
