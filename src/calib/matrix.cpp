#include "calib/matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tsvpt::calib {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument{"ragged initializer for Matrix"};
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range{"Matrix::at"};
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range{"Matrix::at"};
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t{cols_, rows_};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument{"Matrix mul shape"};
  Matrix out{rows_, rhs.cols_};
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  if (cols_ != v.size()) throw std::invalid_argument{"Matrix*Vector shape"};
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument{"Matrix add shape"};
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument{"Matrix sub shape"};
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (c == 0 ? "" : ", ") << (*this)(r, c);
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument{"dot shape"};
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

Vector operator+(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument{"vector add shape"};
  Vector out = a;
  for (std::size_t i = 0; i < b.size(); ++i) out[i] += b[i];
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument{"vector sub shape"};
  Vector out = a;
  for (std::size_t i = 0; i < b.size(); ++i) out[i] -= b[i];
  return out;
}

Vector operator*(double s, const Vector& v) {
  Vector out = v;
  for (double& x : out) x *= s;
  return out;
}

}  // namespace tsvpt::calib
