// Lookup tables with interpolation — the hardware-realistic calibration
// store.  A silicon implementation keeps its calibration as a small LUT in
// fuses or SRAM; these classes model exactly that (including an optional
// fixed-point quantization of stored values).
#pragma once

#include <cstddef>
#include <vector>

namespace tsvpt::calib {

/// 1-D table y = f(x) over a uniform x grid with linear interpolation.
/// Queries outside the grid extrapolate linearly from the end segments.
class Lut1D {
 public:
  Lut1D(double x_lo, double x_hi, std::vector<double> values);

  [[nodiscard]] double x_lo() const { return x_lo_; }
  [[nodiscard]] double x_hi() const { return x_hi_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  [[nodiscard]] double operator()(double x) const;

  /// Inverse lookup: find x with f(x) = y.  Requires the stored values to be
  /// strictly monotone; throws std::runtime_error otherwise or when y is out
  /// of range.
  [[nodiscard]] double invert(double y) const;

  [[nodiscard]] bool is_monotone() const;

  /// Quantize stored values to `bits`-wide fixed point over their own range
  /// (models an on-chip register file).  Returns the worst quantization
  /// error introduced.
  double quantize(unsigned bits);

 private:
  double x_lo_;
  double x_hi_;
  double step_;
  std::vector<double> values_;
};

/// 2-D table z = f(x, y) on a uniform grid with bilinear interpolation;
/// out-of-range queries clamp to the grid edge.
class Lut2D {
 public:
  Lut2D(double x_lo, double x_hi, std::size_t nx, double y_lo, double y_hi,
        std::size_t ny);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] double x_at(std::size_t i) const;
  [[nodiscard]] double y_at(std::size_t j) const;

  [[nodiscard]] double& cell(std::size_t i, std::size_t j);
  [[nodiscard]] double cell(std::size_t i, std::size_t j) const;

  [[nodiscard]] double operator()(double x, double y) const;

 private:
  double x_lo_;
  double x_hi_;
  double y_lo_;
  double y_hi_;
  std::size_t nx_;
  std::size_t ny_;
  std::vector<double> cells_;
};

}  // namespace tsvpt::calib
