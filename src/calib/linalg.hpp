// Dense factorizations and solvers used by calibration and by the process
// variation sampler.
#pragma once

#include "calib/matrix.hpp"

namespace tsvpt::calib {

/// Lower-triangular Cholesky factor L of a symmetric positive-definite
/// matrix (A = L Lᵀ).  If A is only positive *semi*-definite (as nearly
/// coincident correlation points make it), a diagonal jitter up to
/// `max_jitter` * trace/n is added automatically.  Throws if that fails.
[[nodiscard]] Matrix cholesky(const Matrix& a, double max_jitter = 1e-6);

/// Solve A x = b via an existing Cholesky factor L.
[[nodiscard]] Vector cholesky_solve(const Matrix& l, const Vector& b);

/// Solve a general square system by LU with partial pivoting.
[[nodiscard]] Vector lu_solve(Matrix a, Vector b);

/// Least-squares solution of an overdetermined system (rows >= cols) via
/// Householder QR.  Minimizes ||A x - b||_2.
[[nodiscard]] Vector qr_least_squares(Matrix a, Vector b);

/// Inverse of a small square matrix (via LU column solves).
[[nodiscard]] Matrix inverse(const Matrix& a);

/// 2-norm condition-number estimate via a few power iterations on AᵀA and
/// its inverse; used to report the conditioning of decoupling matrices.
[[nodiscard]] double condition_estimate(const Matrix& a, int iterations = 50);

}  // namespace tsvpt::calib
