#include "calib/newton.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "calib/linalg.hpp"

namespace tsvpt::calib {
namespace {

double inf_norm(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

void clamp_to_box(Vector& x, const NewtonOptions& opt) {
  if (!opt.lower_bounds.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = std::max(x[i], opt.lower_bounds[i]);
    }
  }
  if (!opt.upper_bounds.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = std::min(x[i], opt.upper_bounds[i]);
    }
  }
}

}  // namespace

NewtonResult newton_solve(const std::function<Vector(const Vector&)>& f,
                          Vector x0, const NewtonOptions& options) {
  const std::size_t n = x0.size();
  if (!options.lower_bounds.empty() && options.lower_bounds.size() != n) {
    throw std::invalid_argument{"newton: bounds shape"};
  }
  if (!options.upper_bounds.empty() && options.upper_bounds.size() != n) {
    throw std::invalid_argument{"newton: bounds shape"};
  }

  NewtonResult result;
  result.x = std::move(x0);
  clamp_to_box(result.x, options);
  Vector fx = f(result.x);
  if (fx.size() != n) throw std::invalid_argument{"newton: non-square system"};

  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it;
    result.residual = inf_norm(fx);
    if (result.residual < options.tolerance) {
      result.converged = true;
      return result;
    }

    // Forward-difference Jacobian.
    Matrix jac{n, n};
    for (std::size_t j = 0; j < n; ++j) {
      const double h =
          options.jacobian_step * std::max(1.0, std::abs(result.x[j]));
      Vector xh = result.x;
      xh[j] += h;
      const Vector fh = f(xh);
      for (std::size_t i = 0; i < n; ++i) {
        jac(i, j) = (fh[i] - fx[i]) / h;
      }
    }

    Vector step;
    try {
      Vector rhs = fx;
      for (double& v : rhs) v = -v;
      step = lu_solve(jac, rhs);
    } catch (const std::runtime_error&) {
      // Singular Jacobian: bail out with converged=false.
      return result;
    }

    // Backtracking line search on ||f||_inf.
    double lambda = 1.0;
    bool accepted = false;
    for (int bt = 0; bt < options.max_backtracks; ++bt) {
      Vector candidate = result.x + lambda * step;
      clamp_to_box(candidate, options);
      Vector fc = f(candidate);
      if (inf_norm(fc) < result.residual) {
        result.x = std::move(candidate);
        fx = std::move(fc);
        accepted = true;
        break;
      }
      lambda *= options.backtrack;
    }
    if (!accepted) {
      // No descent direction found; accept the full step once in case we
      // are at a flat spot, then give up next iteration if still stuck.
      Vector candidate = result.x + lambda * step;
      clamp_to_box(candidate, options);
      Vector fc = f(candidate);
      if (inf_norm(fc) >= result.residual) return result;
      result.x = std::move(candidate);
      fx = std::move(fc);
    }
  }
  result.residual = inf_norm(fx);
  result.converged = result.residual < options.tolerance;
  return result;
}

double brent_root(const std::function<double(double)>& f, double lo, double hi,
                  double tolerance, int max_iterations) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if (fa * fb > 0.0) throw std::runtime_error{"brent_root: not bracketed"};

  // Keep b the best estimate.
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  bool bisected = true;
  double d = 0.0;

  for (int it = 0; it < max_iterations; ++it) {
    if (std::abs(fb) < tolerance || std::abs(b - a) < tolerance) return b;
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }
    const double mid = 0.5 * (a + b);
    const bool out_of_range = (s < std::min(mid, b)) || (s > std::max(mid, b));
    if (out_of_range ||
        (bisected && std::abs(s - b) >= 0.5 * std::abs(b - c)) ||
        (!bisected && std::abs(s - b) >= 0.5 * std::abs(c - d))) {
      s = mid;
      bisected = true;
    } else {
      bisected = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return b;
}

}  // namespace tsvpt::calib
