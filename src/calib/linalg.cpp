#include "calib/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace tsvpt::calib {

Matrix cholesky(const Matrix& a, double max_jitter) {
  if (a.rows() != a.cols()) throw std::invalid_argument{"cholesky: not square"};
  const std::size_t n = a.rows();
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
  const double scale = n == 0 ? 1.0 : trace / static_cast<double>(n);

  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Matrix l{n, n};
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = a(i, j) + (i == j ? jitter : 0.0);
        for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
        if (i == j) {
          if (sum <= 0.0) {
            ok = false;
            break;
          }
          l(i, i) = std::sqrt(sum);
        } else {
          l(i, j) = sum / l(j, j);
        }
      }
    }
    if (ok) return l;
    jitter = jitter == 0.0 ? scale * 1e-12 : jitter * 10.0;
    if (jitter > scale * max_jitter) break;
  }
  throw std::runtime_error{"cholesky: matrix not positive definite"};
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument{"cholesky_solve shape"};
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Vector lu_solve(Matrix a, Vector b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument{"lu_solve shape"};
  }
  // Doolittle LU with partial pivoting, in place.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best == 0.0) throw std::runtime_error{"lu_solve: singular matrix"};
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      a(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) sum -= a(ii, c) * x[c];
    x[ii] = sum / a(ii, ii);
  }
  return x;
}

Vector qr_least_squares(Matrix a, Vector b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) throw std::invalid_argument{"qr_least_squares: underdetermined"};
  if (b.size() != m) throw std::invalid_argument{"qr_least_squares shape"};

  // Householder QR applied simultaneously to A and b.
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) throw std::runtime_error{"qr: rank-deficient column"};
    const double alpha = a(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha e1 (stored in column k, rows k..m-1)
    std::vector<double> v(m - k);
    v[0] = a(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = a(i, k);
    double vtv = 0.0;
    for (double val : v) vtv += val * val;
    if (vtv == 0.0) continue;
    // Apply H = I - 2 v vᵀ / vᵀv to remaining columns and b.
    for (std::size_t c = k; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i - k] * a(i, c);
      proj = 2.0 * proj / vtv;
      for (std::size_t i = k; i < m; ++i) a(i, c) -= proj * v[i - k];
    }
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) proj += v[i - k] * b[i];
    proj = 2.0 * proj / vtv;
    for (std::size_t i = k; i < m; ++i) b[i] -= proj * v[i - k];
    a(k, k) = alpha;  // clean up numerical residue on the diagonal
  }

  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) sum -= a(ii, c) * x[c];
    if (a(ii, ii) == 0.0) throw std::runtime_error{"qr: singular R"};
    x[ii] = sum / a(ii, ii);
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument{"inverse: not square"};
  Matrix inv{n, n};
  for (std::size_t c = 0; c < n; ++c) {
    Vector e(n, 0.0);
    e[c] = 1.0;
    const Vector col = lu_solve(a, e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

double condition_estimate(const Matrix& a, int iterations) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument{"condition_estimate: not square"};
  }
  const std::size_t n = a.rows();
  if (n == 0) return 1.0;
  const Matrix ata = a.transposed() * a;
  // Power iteration for the largest eigenvalue of AᵀA.
  Vector v(n, 1.0);
  double lambda_max = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Vector w = ata * v;
    const double nw = norm2(w);
    if (nw == 0.0) return std::numeric_limits<double>::infinity();
    v = (1.0 / nw) * w;
    lambda_max = nw;
  }
  // Inverse power iteration for the smallest eigenvalue.
  Vector u(n, 1.0);
  double inv_growth = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Vector w = lu_solve(ata, u);
    const double nw = norm2(w);
    if (nw == 0.0) return std::numeric_limits<double>::infinity();
    u = (1.0 / nw) * w;
    inv_growth = nw;
  }
  const double lambda_min = 1.0 / inv_growth;
  return std::sqrt(lambda_max / lambda_min);
}

}  // namespace tsvpt::calib
