#include "calib/polyfit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "calib/linalg.hpp"

namespace tsvpt::calib {

Polynomial::Polynomial(Vector coefficients) : coeffs_(std::move(coefficients)) {
  if (coeffs_.empty()) throw std::invalid_argument{"empty polynomial"};
}

double Polynomial::operator()(double x) const {
  double acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coeffs_.size() <= 1) return Polynomial{Vector{0.0}};
  Vector d(coeffs_.size() - 1);
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    d[i - 1] = coeffs_[i] * static_cast<double>(i);
  }
  return Polynomial{std::move(d)};
}

double Polynomial::invert(double y, double lo, double hi,
                          double tolerance) const {
  double flo = (*this)(lo) - y;
  double fhi = (*this)(hi) - y;
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (flo * fhi > 0.0) {
    throw std::runtime_error{"Polynomial::invert: y not bracketed"};
  }
  const Polynomial deriv = derivative();
  double a = lo;
  double b = hi;
  double x = 0.5 * (a + b);
  for (int it = 0; it < 200; ++it) {
    const double fx = (*this)(x)-y;
    if (std::abs(fx) < tolerance || 0.5 * (b - a) < tolerance) return x;
    if ((flo < 0.0) == (fx < 0.0)) {
      a = x;
      flo = fx;
    } else {
      b = x;
    }
    const double dfx = deriv(x);
    double next = dfx != 0.0 ? x - fx / dfx : x;
    if (next <= a || next >= b) next = 0.5 * (a + b);  // fall back: bisection
    x = next;
  }
  return x;
}

Polynomial polyfit(const std::vector<double>& x, const std::vector<double>& y,
                   std::size_t degree) {
  if (x.size() != y.size()) throw std::invalid_argument{"polyfit shape"};
  if (x.size() < degree + 1) {
    throw std::invalid_argument{"polyfit: too few samples for degree"};
  }
  // Center/scale x for conditioning.
  const auto [min_it, max_it] = std::minmax_element(x.begin(), x.end());
  const double center = 0.5 * (*min_it + *max_it);
  double scale = 0.5 * (*max_it - *min_it);
  if (scale == 0.0) scale = 1.0;

  Matrix a{x.size(), degree + 1};
  Vector b = y;
  for (std::size_t r = 0; r < x.size(); ++r) {
    const double t = (x[r] - center) / scale;
    double p = 1.0;
    for (std::size_t c = 0; c <= degree; ++c) {
      a(r, c) = p;
      p *= t;
    }
  }
  const Vector scaled = qr_least_squares(std::move(a), std::move(b));

  // Expand q(t) with t = (x - center)/scale back to coefficients in x by
  // repeated synthetic substitution: accumulate (x - center)^k / scale^k.
  Vector coeffs(degree + 1, 0.0);
  Vector basis{1.0};  // (x-center)^0 / scale^0 in x-coefficients
  for (std::size_t k = 0; k <= degree; ++k) {
    for (std::size_t i = 0; i < basis.size(); ++i) {
      coeffs[i] += scaled[k] * basis[i];
    }
    if (k == degree) break;
    // basis *= (x - center) / scale
    Vector next(basis.size() + 1, 0.0);
    for (std::size_t i = 0; i < basis.size(); ++i) {
      next[i + 1] += basis[i] / scale;
      next[i] -= basis[i] * center / scale;
    }
    basis = std::move(next);
  }
  return Polynomial{std::move(coeffs)};
}

double max_residual(const Polynomial& p, const std::vector<double>& x,
                    const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument{"max_residual shape"};
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(p(x[i]) - y[i]));
  }
  return worst;
}

}  // namespace tsvpt::calib
