// Nonlinear solvers: damped multivariate Newton with numerical Jacobian, and
// a robust scalar root bracket solver.  The self-calibration engine inverts
// the oscillator-bank model F(Vtn, Vtp, T) = f_measured with these.
#pragma once

#include <functional>

#include "calib/matrix.hpp"

namespace tsvpt::calib {

/// Result of a Newton solve.
struct NewtonResult {
  Vector x;
  bool converged = false;
  int iterations = 0;
  /// Final residual infinity-norm.
  double residual = 0.0;
};

struct NewtonOptions {
  int max_iterations = 60;
  /// Convergence threshold on the residual infinity-norm (in the residual's
  /// own units — callers should scale their residuals sensibly).
  double tolerance = 1e-12;
  /// Relative step used for the forward-difference Jacobian.
  double jacobian_step = 1e-6;
  /// Backtracking line-search shrink factor and maximum trials.
  double backtrack = 0.5;
  int max_backtracks = 20;
  /// Optional box constraints (empty = unconstrained).
  Vector lower_bounds;
  Vector upper_bounds;
};

/// Solve F(x) = 0 for square systems.  `f` maps an n-vector to an n-vector.
[[nodiscard]] NewtonResult newton_solve(
    const std::function<Vector(const Vector&)>& f, Vector x0,
    const NewtonOptions& options = {});

/// Robust 1-D root of f on [lo, hi] (Brent-style bisection/secant hybrid).
/// Requires f(lo) and f(hi) to bracket a root; throws otherwise.
[[nodiscard]] double brent_root(const std::function<double(double)>& f,
                                double lo, double hi,
                                double tolerance = 1e-12,
                                int max_iterations = 200);

}  // namespace tsvpt::calib
