// Polynomial fitting and evaluation — the on-chip-feasible calibration model
// (a LUT/polynomial is what a real sensor macro would store in fuses/SRAM).
#pragma once

#include <cstddef>
#include <vector>

#include "calib/matrix.hpp"

namespace tsvpt::calib {

/// Polynomial with coefficients in ascending-power order:
/// p(x) = c0 + c1 x + c2 x^2 + ...
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(Vector coefficients);

  [[nodiscard]] std::size_t degree() const {
    return coeffs_.empty() ? 0 : coeffs_.size() - 1;
  }
  [[nodiscard]] const Vector& coefficients() const { return coeffs_; }

  /// Horner evaluation.
  [[nodiscard]] double operator()(double x) const;

  /// Analytic derivative polynomial.
  [[nodiscard]] Polynomial derivative() const;

  /// Solve p(x) = y on [lo, hi] by safeguarded Newton/bisection.  Requires
  /// p monotone over the bracket (checked via endpoint values); throws
  /// std::runtime_error when y is outside the bracketed range.
  [[nodiscard]] double invert(double y, double lo, double hi,
                              double tolerance = 1e-12) const;

 private:
  Vector coeffs_;
};

/// Least-squares polynomial fit of given degree through (x, y) samples.
/// Centers and scales x internally for conditioning; the returned polynomial
/// is in the *original* x variable.
[[nodiscard]] Polynomial polyfit(const std::vector<double>& x,
                                 const std::vector<double>& y,
                                 std::size_t degree);

/// Maximum absolute residual of a polynomial over sample pairs.
[[nodiscard]] double max_residual(const Polynomial& p,
                                  const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace tsvpt::calib
