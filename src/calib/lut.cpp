#include "calib/lut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsvpt::calib {

Lut1D::Lut1D(double x_lo, double x_hi, std::vector<double> values)
    : x_lo_(x_lo), x_hi_(x_hi), values_(std::move(values)) {
  if (values_.size() < 2) throw std::invalid_argument{"Lut1D needs >= 2 rows"};
  if (!(x_hi_ > x_lo_)) throw std::invalid_argument{"Lut1D needs x_hi > x_lo"};
  step_ = (x_hi_ - x_lo_) / static_cast<double>(values_.size() - 1);
}

double Lut1D::operator()(double x) const {
  const double pos = (x - x_lo_) / step_;
  const auto max_seg = static_cast<double>(values_.size() - 2);
  const double seg = std::clamp(std::floor(pos), 0.0, max_seg);
  const auto i = static_cast<std::size_t>(seg);
  const double frac = pos - seg;
  return values_[i] + frac * (values_[i + 1] - values_[i]);
}

bool Lut1D::is_monotone() const {
  bool increasing = true;
  bool decreasing = true;
  for (std::size_t i = 1; i < values_.size(); ++i) {
    if (values_[i] <= values_[i - 1]) increasing = false;
    if (values_[i] >= values_[i - 1]) decreasing = false;
  }
  return increasing || decreasing;
}

double Lut1D::invert(double y) const {
  if (!is_monotone()) throw std::runtime_error{"Lut1D::invert: not monotone"};
  const bool increasing = values_.back() > values_.front();
  const double lo_val = increasing ? values_.front() : values_.back();
  const double hi_val = increasing ? values_.back() : values_.front();
  if (y < lo_val || y > hi_val) {
    throw std::runtime_error{"Lut1D::invert: y out of range"};
  }
  // Binary search for the containing segment.
  std::size_t lo = 0;
  std::size_t hi = values_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    const bool go_left = increasing ? (values_[mid] > y) : (values_[mid] < y);
    if (go_left) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double y0 = values_[lo];
  const double y1 = values_[hi];
  const double frac = y1 == y0 ? 0.0 : (y - y0) / (y1 - y0);
  return x_lo_ + (static_cast<double>(lo) + frac) * step_;
}

double Lut1D::quantize(unsigned bits) {
  if (bits == 0 || bits > 32) throw std::invalid_argument{"quantize bits"};
  const auto [min_it, max_it] =
      std::minmax_element(values_.begin(), values_.end());
  const double lo = *min_it;
  const double span = *max_it - lo;
  if (span == 0.0) return 0.0;
  const double levels = static_cast<double>((1ULL << bits) - 1);
  double worst = 0.0;
  for (double& v : values_) {
    const double code = std::round((v - lo) / span * levels);
    const double q = lo + code / levels * span;
    worst = std::max(worst, std::abs(q - v));
    v = q;
  }
  return worst;
}

Lut2D::Lut2D(double x_lo, double x_hi, std::size_t nx, double y_lo,
             double y_hi, std::size_t ny)
    : x_lo_(x_lo), x_hi_(x_hi), y_lo_(y_lo), y_hi_(y_hi), nx_(nx), ny_(ny),
      cells_(nx * ny, 0.0) {
  if (nx_ < 2 || ny_ < 2) throw std::invalid_argument{"Lut2D needs >= 2x2"};
  if (!(x_hi_ > x_lo_) || !(y_hi_ > y_lo_)) {
    throw std::invalid_argument{"Lut2D needs positive ranges"};
  }
}

double Lut2D::x_at(std::size_t i) const {
  return x_lo_ + (x_hi_ - x_lo_) * static_cast<double>(i) /
                     static_cast<double>(nx_ - 1);
}

double Lut2D::y_at(std::size_t j) const {
  return y_lo_ + (y_hi_ - y_lo_) * static_cast<double>(j) /
                     static_cast<double>(ny_ - 1);
}

double& Lut2D::cell(std::size_t i, std::size_t j) {
  if (i >= nx_ || j >= ny_) throw std::out_of_range{"Lut2D::cell"};
  return cells_[i * ny_ + j];
}

double Lut2D::cell(std::size_t i, std::size_t j) const {
  if (i >= nx_ || j >= ny_) throw std::out_of_range{"Lut2D::cell"};
  return cells_[i * ny_ + j];
}

double Lut2D::operator()(double x, double y) const {
  const double sx = (x - x_lo_) / (x_hi_ - x_lo_) * static_cast<double>(nx_ - 1);
  const double sy = (y - y_lo_) / (y_hi_ - y_lo_) * static_cast<double>(ny_ - 1);
  const double cx = std::clamp(sx, 0.0, static_cast<double>(nx_ - 1));
  const double cy = std::clamp(sy, 0.0, static_cast<double>(ny_ - 1));
  const auto i = std::min(static_cast<std::size_t>(cx), nx_ - 2);
  const auto j = std::min(static_cast<std::size_t>(cy), ny_ - 2);
  const double fx = cx - static_cast<double>(i);
  const double fy = cy - static_cast<double>(j);
  const double z00 = cell(i, j);
  const double z10 = cell(i + 1, j);
  const double z01 = cell(i, j + 1);
  const double z11 = cell(i + 1, j + 1);
  return z00 * (1 - fx) * (1 - fy) + z10 * fx * (1 - fy) +
         z01 * (1 - fx) * fy + z11 * fx * fy;
}

}  // namespace tsvpt::calib
