// Small dense matrix/vector algebra for calibration math and the thermal
// solver.  Deliberately minimal: row-major storage, bounds-checked access,
// and only the operations the project uses.  Sizes here are tiny (3x3
// decoupling systems, ~tens of fit coefficients) to moderate (thermal grids
// handled via the sparse solver, not this class).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace tsvpt::calib {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  /// Unchecked access for hot loops.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Vector operator*(const Vector& v) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator*(double s) const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const;

  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Vector helpers.
[[nodiscard]] double dot(const Vector& a, const Vector& b);
[[nodiscard]] double norm2(const Vector& v);
[[nodiscard]] Vector operator+(const Vector& a, const Vector& b);
[[nodiscard]] Vector operator-(const Vector& a, const Vector& b);
[[nodiscard]] Vector operator*(double s, const Vector& v);

}  // namespace tsvpt::calib
