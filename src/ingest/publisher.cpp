#include "ingest/publisher.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace tsvpt::ingest {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] Clock::duration to_duration(Second s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s.value()));
}

struct PublisherMetrics {
  obs::Counter frames = obs::counter("tsvpt_pub_frames_total");
  obs::Counter batches = obs::counter("tsvpt_pub_batches_total");
  obs::Counter bytes = obs::counter("tsvpt_pub_bytes_total");
  obs::Counter reconnects = obs::counter("tsvpt_pub_reconnects_total");
  obs::Counter queue_drops = obs::counter("tsvpt_pub_queue_drops_total");
  obs::Counter stalls = obs::counter("tsvpt_pub_backpressure_stalls_total");
  obs::Histogram batch_bytes = obs::histogram("tsvpt_pub_batch_bytes");
  obs::Histogram send_seconds = obs::histogram("tsvpt_pub_send_seconds");
};

[[nodiscard]] PublisherMetrics& metrics_of() {
  static PublisherMetrics metrics;
  return metrics;
}

}  // namespace

FleetPublisher::FleetPublisher(Config config) : config_(std::move(config)) {
  if (config_.batch_max_frames == 0) config_.batch_max_frames = 1;
  if (config_.queue_max_batches == 0) config_.queue_max_batches = 1;
  backoff_ = config_.backoff_initial;
}

FleetPublisher::~FleetPublisher() { stop(); }

void FleetPublisher::start(std::vector<telemetry::FrameRing*> rings) {
  stop_requested_.store(false, std::memory_order_relaxed);
  sender_ = std::thread([this, rings = std::move(rings)]() mutable {
    run(std::move(rings));
  });
}

void FleetPublisher::stop() {
  if (!sender_.joinable()) return;
  // mo: release pairs with the sender loop's acquire load so everything the
  // stopping thread did (e.g. final ring pushes) is visible to the drain.
  stop_requested_.store(true, std::memory_order_release);
  sender_.join();
}

void FleetPublisher::run(std::vector<telemetry::FrameRing*> rings) {
  bool draining = false;
  Clock::time_point drain_deadline{};
  for (;;) {
    bool progressed = false;
    std::vector<std::uint8_t> wire;
    for (telemetry::FrameRing* ring : rings) {
      while (ring->try_pop(wire)) {
        offer(std::move(wire));
        wire.clear();
        progressed = true;
      }
    }
    if (open_deadline_armed_ && Clock::now() >= open_deadline_) flush();
    if (try_send_pending()) progressed = true;

    // mo: acquire pairs with stop()'s release store (see above).
    if (stop_requested_.load(std::memory_order_acquire)) {
      if (!draining) {
        draining = true;
        drain_deadline = Clock::now() + to_duration(config_.drain_deadline);
        flush();
      }
      const bool rings_empty = std::all_of(
          rings.begin(), rings.end(),
          [](telemetry::FrameRing* r) { return r->empty(); });
      if (rings_empty && open_frames_.empty() &&
          (pending_.empty() || Clock::now() >= drain_deadline)) {
        break;
      }
    }
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void FleetPublisher::offer(std::vector<std::uint8_t> wire) {
  if (open_frames_.empty()) {
    open_deadline_ = Clock::now() + to_duration(config_.flush_interval);
    open_deadline_armed_ = true;
  }
  open_bytes_ += wire.size();
  open_frames_.push_back(std::move(wire));
  frames_enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (open_frames_.size() >= config_.batch_max_frames ||
      open_bytes_ >= config_.batch_max_bytes) {
    seal_locked();
  }
}

void FleetPublisher::flush() {
  if (!open_frames_.empty()) seal_locked();
}

bool FleetPublisher::pump() {
  try_send_pending();
  return pending_.empty();
}

void FleetPublisher::seal_locked() {
  Batch batch;
  batch.bytes = net::encode_batch(open_frames_);
  batch.frames = open_frames_.size();
  batch.index = next_batch_index_++;
  metrics_of().batch_bytes.observe(static_cast<double>(batch.bytes.size()));
  open_frames_.clear();
  open_bytes_ = 0;
  open_deadline_armed_ = false;
  pending_.push_back(std::move(batch));
  while (pending_.size() > config_.queue_max_batches) {
    queue_dropped_batches_.fetch_add(1, std::memory_order_relaxed);
    queue_dropped_frames_.fetch_add(pending_.front().frames,
                                    std::memory_order_relaxed);
    metrics_of().queue_drops.add(1);
    metrics_of().stalls.add(1);
    pending_.pop_front();
  }
}

bool FleetPublisher::ensure_connected() {
  if (socket_.valid()) return true;
  if (backoff_armed_ && Clock::now() < next_attempt_) return false;
  socket_ = net::tcp_connect(config_.host, config_.port);
  if (!socket_.valid()) {
    backoff_armed_ = true;
    next_attempt_ = Clock::now() + to_duration(backoff_);
    backoff_ = Second{
        std::min(backoff_.value() * 2.0, config_.backoff_max.value())};
    return false;
  }
  net::set_nodelay(socket_);
  backoff_armed_ = false;
  backoff_ = config_.backoff_initial;
  const std::uint64_t prior =
      connects_.fetch_add(1, std::memory_order_relaxed);
  if (prior > 0) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    metrics_of().reconnects.add(1);
  }
  connected_once_.store(true, std::memory_order_relaxed);
  return true;
}

bool FleetPublisher::try_send_pending() {
  bool progressed = false;
  while (!pending_.empty()) {
    if (!ensure_connected()) return progressed;
    Batch& batch = pending_.front();
    net::BatchAction action;
    if (config_.hook != nullptr) {
      action = config_.hook->on_batch(batch.index, batch.bytes);
    }
    if (action.stall_seconds > 0.0) {
      hook_stalls_.fetch_add(1, std::memory_order_relaxed);
      metrics_of().stalls.add(1);
      std::this_thread::sleep_for(to_duration(Second{action.stall_seconds}));
    }
    const std::size_t limit =
        std::min(action.truncate_to, batch.bytes.size());
    const bool truncated = limit < batch.bytes.size();
    const obs::ScopedTimer timer{metrics_of().send_seconds};
    if (!net::send_all(socket_, batch.bytes.data(), limit)) {
      // Connection died mid-send: the batch stays queued for retransmit
      // after reconnect (the server discards whatever partial tail it saw).
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      socket_.close();
      backoff_armed_ = true;
      next_attempt_ = Clock::now() + to_duration(backoff_);
      return progressed;
    }
    if (truncated) {
      // Deliberate mid-batch cut: the server must treat the partial batch
      // as lost frames, so drop the connection and do NOT retransmit.
      hook_truncated_.fetch_add(1, std::memory_order_relaxed);
      socket_.close();
      pending_.pop_front();
      progressed = true;
      continue;
    }
    frames_sent_.fetch_add(batch.frames, std::memory_order_relaxed);
    batches_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(batch.bytes.size(), std::memory_order_relaxed);
    metrics_of().frames.add(batch.frames);
    metrics_of().batches.add(1);
    metrics_of().bytes.add(batch.bytes.size());
    pending_.pop_front();
    progressed = true;
    if (action.drop_connection) {
      hook_dropped_.fetch_add(1, std::memory_order_relaxed);
      socket_.close();
    }
  }
  return progressed;
}

void FleetPublisher::disconnect() {
  socket_.close();
  backoff_armed_ = false;
  backoff_ = config_.backoff_initial;
}

FleetPublisher::Stats FleetPublisher::stats() const {
  Stats s;
  s.frames_enqueued = frames_enqueued_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.connects = connects_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.send_failures = send_failures_.load(std::memory_order_relaxed);
  s.queue_dropped_batches =
      queue_dropped_batches_.load(std::memory_order_relaxed);
  s.queue_dropped_frames =
      queue_dropped_frames_.load(std::memory_order_relaxed);
  s.hook_stalls = hook_stalls_.load(std::memory_order_relaxed);
  s.hook_truncated_batches = hook_truncated_.load(std::memory_order_relaxed);
  s.hook_dropped_connections = hook_dropped_.load(std::memory_order_relaxed);
  s.connected_once = connected_once_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tsvpt::ingest
