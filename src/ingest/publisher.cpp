#include "ingest/publisher.hpp"

#include <unistd.h>

#include <algorithm>
#include <iterator>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "telemetry/codec_util.hpp"

namespace tsvpt::ingest {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] Clock::duration to_duration(Second s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s.value()));
}

struct PublisherMetrics {
  obs::Counter frames = obs::counter("tsvpt_pub_frames_total");
  obs::Counter batches = obs::counter("tsvpt_pub_batches_total");
  obs::Counter bytes = obs::counter("tsvpt_pub_bytes_total");
  obs::Counter reconnects = obs::counter("tsvpt_pub_reconnects_total");
  obs::Counter queue_drops = obs::counter("tsvpt_pub_queue_drops_total");
  obs::Counter stalls = obs::counter("tsvpt_pub_backpressure_stalls_total");
  obs::Counter acks = obs::counter("tsvpt_pub_acks_total");
  obs::Counter retransmits = obs::counter("tsvpt_pub_retransmits_total");
  obs::Counter heartbeats = obs::counter("tsvpt_pub_heartbeats_total");
  obs::Histogram batch_bytes = obs::histogram("tsvpt_pub_batch_bytes");
  obs::Histogram send_seconds = obs::histogram("tsvpt_pub_send_seconds");
  obs::Histogram ack_rtt = obs::histogram("tsvpt_pub_ack_rtt_seconds");
  obs::Histogram ring_to_seal = obs::stage_latency(obs::kStageRingToSeal);
  obs::Histogram seal_to_wire = obs::stage_latency(obs::kStageSealToWire);
};

[[nodiscard]] PublisherMetrics& metrics_of() {
  static PublisherMetrics metrics;
  return metrics;
}

/// Fallback identity when the caller did not assign one.  Two regimes:
///   - spill_dir set: the id must be STABLE across restarts of the same
///     publisher (resume + dedup is keyed on it), so it is derived from the
///     spill path alone — the same durable identity the log embodies.
///   - no spill dir: the id must be DISTINCT per publisher instance (the
///     server's dedup would otherwise veto a second publisher's seq 1..N
///     as retransmits of the first's), so fold in the pid and a
///     process-wide instance counter.
[[nodiscard]] std::uint64_t derive_publisher_id(
    const FleetPublisher::Config& config) {
  std::vector<std::uint8_t> key(config.host.begin(), config.host.end());
  key.push_back(static_cast<std::uint8_t>(config.port));
  key.push_back(static_cast<std::uint8_t>(config.port >> 8));
  key.insert(key.end(), config.spill_dir.begin(), config.spill_dir.end());
  std::uint64_t id = derive_seed(telemetry::crc32(key.data(), key.size()),
                                 0x1Du);
  if (config.spill_dir.empty()) {
    static std::atomic<std::uint64_t> instance_counter{0};
    id = derive_seed(id, static_cast<std::uint64_t>(::getpid()));
    id = derive_seed(
        id, instance_counter.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  return id == 0 ? 1 : id;
}

}  // namespace

FleetPublisher::FleetPublisher(Config config) : config_(std::move(config)) {
  if (config_.batch_max_frames == 0) config_.batch_max_frames = 1;
  if (config_.queue_max_batches == 0) config_.queue_max_batches = 1;
  if (config_.publisher_id == 0) {
    config_.publisher_id = derive_publisher_id(config_);
  }
  backoff_ = config_.backoff_initial;
  jitter_rng_ = Rng{config_.jitter_seed != 0
                        ? config_.jitter_seed
                        : derive_seed(config_.publisher_id, 0xB0FFu)};
  last_send_ = Clock::now();

  if (!config_.spill_dir.empty()) {
    SpillQueue::RecoverInfo info;
    spill_.emplace(SpillQueue::open(config_.spill_dir, config_.spill, info));
    next_seq_ = info.next_seq;
    // Resume: the recovered unacked window becomes the head of the pending
    // queue, bytes left on disk until each batch's turn to (re)send.  Their
    // sends count as retransmits — a crash cannot tell what reached the
    // server, which is exactly what dedup absorbs.
    for (const std::uint64_t seq : info.unacked_seqs) {
      Batch batch;
      batch.seq = seq;
      batch.frames = spill_->frame_count_of(seq);
      batch.spilled = true;
      batch.sent_before = true;
      resumed_batches_.fetch_add(1, std::memory_order_relaxed);
      resumed_frames_.fetch_add(batch.frames, std::memory_order_relaxed);
      pending_.push_back(std::move(batch));
    }
  }
}

FleetPublisher::~FleetPublisher() { stop(); }

void FleetPublisher::start(std::vector<telemetry::FrameRing*> rings) {
  stop_requested_.store(false, std::memory_order_relaxed);
  sender_ = std::thread([this, rings = std::move(rings)]() mutable {
    run(std::move(rings));
  });
}

void FleetPublisher::stop() {
  if (!sender_.joinable()) return;
  // mo: release pairs with the sender loop's acquire load so everything the
  // stopping thread did (e.g. final ring pushes) is visible to the drain.
  stop_requested_.store(true, std::memory_order_release);
  sender_.join();
}

void FleetPublisher::run(std::vector<telemetry::FrameRing*> rings) {
  bool draining = false;
  Clock::time_point drain_deadline{};
  for (;;) {
    bool progressed = false;
    std::vector<std::uint8_t> wire;
    for (telemetry::FrameRing* ring : rings) {
      while (ring->try_pop(wire)) {
        offer(std::move(wire));
        wire.clear();
        progressed = true;
      }
    }
    if (open_deadline_armed_ && Clock::now() >= open_deadline_) flush();
    if (!poll_acks()) on_connection_lost();
    if (try_send_pending()) progressed = true;

    if (config_.heartbeat_interval.value() > 0.0 && socket_.valid() &&
        Clock::now() - last_send_ >=
            to_duration(config_.heartbeat_interval)) {
      heartbeat();
    }

    // mo: acquire pairs with stop()'s release store (see above).
    if (stop_requested_.load(std::memory_order_acquire)) {
      if (!draining) {
        draining = true;
        drain_deadline = Clock::now() + to_duration(config_.drain_deadline);
        flush();
      }
      const bool rings_empty = std::all_of(
          rings.begin(), rings.end(),
          [](telemetry::FrameRing* r) { return r->empty(); });
      // Spill mode always runs the handshake (drain() reconnects if needed:
      // even an empty resumed window needs the server's confirmation);
      // best-effort mode only bothers when a connection is up.
      if (rings_empty && open_frames_.empty() && pending_.empty() &&
          (socket_.valid() || spill_.has_value())) {
        // Everything handed to the kernel: run the FIN handshake with
        // whatever deadline budget remains, then leave.
        const double left = std::chrono::duration<double>(
                                drain_deadline - Clock::now())
                                .count();
        if (left > 0.0) drain(Second{left});
        break;
      }
      if (rings_empty && open_frames_.empty() &&
          (pending_.empty() || Clock::now() >= drain_deadline)) {
        break;
      }
    }
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void FleetPublisher::offer(std::vector<std::uint8_t> wire) {
  if (open_frames_.empty()) {
    open_deadline_ = Clock::now() + to_duration(config_.flush_interval);
    open_deadline_armed_ = true;
  }
  open_bytes_ += wire.size();
  open_frames_.push_back(std::move(wire));
  frames_enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (open_frames_.size() >= config_.batch_max_frames ||
      open_bytes_ >= config_.batch_max_bytes) {
    seal_locked();
  }
}

void FleetPublisher::flush() {
  if (!open_frames_.empty()) seal_locked();
}

bool FleetPublisher::pump() {
  if (!poll_acks()) on_connection_lost();
  try_send_pending();
  return pending_.empty();
}

void FleetPublisher::seal_locked() {
  Batch batch;
  net::BatchMeta meta;
  meta.publisher_id = config_.publisher_id;
  meta.seq = next_seq_++;
  // Trace context: a deterministic function of (publisher, seq), so the
  // server derives the same id for the same batch without negotiation.
  meta.trace_id = derive_seed(config_.publisher_id, meta.seq);
  batch.seq = meta.seq;
  batch.trace_id = meta.trace_id;
  const Clock::time_point now = Clock::now();
  batch.seal_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
  batch.bytes = net::encode_batch(open_frames_, meta);
  batch.frames = open_frames_.size();
  metrics_of().batch_bytes.observe(static_cast<double>(batch.bytes.size()));
  // ring_to_seal: how long the oldest frame sat in the open batch.  The
  // batch opened flush_interval before its deadline, so the open time is
  // recoverable without a clock read at offer().
  if (open_deadline_armed_) {
    const double waited =
        std::chrono::duration<double>(
            now - (open_deadline_ - to_duration(config_.flush_interval)))
            .count();
    if (waited >= 0.0) metrics_of().ring_to_seal.observe(waited);
  }
  open_frames_.clear();
  open_bytes_ = 0;
  open_deadline_armed_ = false;
  if (spill_) {
    // WAL discipline: on disk before the first send attempt, so a SIGKILL
    // any time after seal_locked() returns cannot lose the batch.
    spill_->append(batch.seq, static_cast<std::uint32_t>(batch.frames),
                   batch.bytes);
    spill_->note_next_seq(next_seq_);
  }
  pending_.push_back(std::move(batch));
  enforce_memory_bound();
}

void FleetPublisher::enforce_memory_bound() {
  const auto in_memory = [this] {
    std::size_t n = 0;
    for (const Batch& b : pending_) n += b.bytes.empty() ? 0 : 1;
    for (const Batch& b : unacked_) n += b.bytes.empty() ? 0 : 1;
    return n;
  };
  if (!spill_) {
    // Best-effort mode: bounded queue, drop-oldest (the v1 policy).  The
    // dropped batches consumed seqs, so the loss is visible server-side as
    // honest batch gaps rather than silence.
    while (pending_.size() > config_.queue_max_batches) {
      queue_dropped_batches_.fetch_add(1, std::memory_order_relaxed);
      queue_dropped_frames_.fetch_add(pending_.front().frames,
                                      std::memory_order_relaxed);
      metrics_of().queue_drops.add(1);
      metrics_of().stalls.add(1);
      pending_.pop_front();
    }
    // The unacked window is also bounded; evicted batches were already
    // sent, they just lose retransmit coverage (best-effort has no better
    // answer — use a spill dir for the real guarantee).
    while (unacked_.size() > config_.queue_max_batches) {
      unacked_.pop_front();
      unacked_depth_.store(unacked_.size(), std::memory_order_relaxed);
    }
    return;
  }
  // Durable mode: never shed — evict batch *bytes* back to the log,
  // retransmit-coverage first (unacked retransmits are rare; the pending
  // front is about to be sent, so it is evicted last).
  if (in_memory() <= config_.queue_max_batches) return;
  const auto evict = [this](Batch& b) {
    if (b.bytes.empty()) return false;
    b.bytes = {};
    b.bytes.shrink_to_fit();
    b.spilled = true;
    spilled_batches_.fetch_add(1, std::memory_order_relaxed);
    metrics_of().stalls.add(1);
    return true;
  };
  std::size_t live = in_memory();
  for (auto it = unacked_.rbegin();
       it != unacked_.rend() && live > config_.queue_max_batches; ++it) {
    if (evict(*it)) live -= 1;
  }
  for (auto it = pending_.rbegin();
       it != pending_.rend() && live > config_.queue_max_batches; ++it) {
    if (std::next(it) == pending_.rend()) break;  // keep the send head hot
    if (evict(*it)) live -= 1;
  }
}

void FleetPublisher::arm_backoff() {
  backoff_armed_ = true;
  // Deterministic jitter: scale this wait into [1-jitter, 1] with the next
  // seed-derived draw, so a fleet restarted together fans out instead of
  // reconnecting in lockstep — and a replay with the same seed waits the
  // same.
  double scale = 1.0;
  if (config_.backoff_jitter > 0.0) {
    const double jitter = std::min(config_.backoff_jitter, 1.0);
    scale = 1.0 - jitter * jitter_rng_.uniform();
  }
  next_attempt_ =
      Clock::now() + to_duration(Second{backoff_.value() * scale});
  backoff_ = Second{
      std::min(backoff_.value() * 2.0, config_.backoff_max.value())};
}

bool FleetPublisher::ensure_connected() {
  if (socket_.valid()) return true;
  if (backoff_armed_ && Clock::now() < next_attempt_) return false;
  socket_ = net::tcp_connect(config_.host, config_.port);
  if (!socket_.valid()) {
    arm_backoff();
    return false;
  }
  net::set_nodelay(socket_);
  net::set_nonblocking(socket_, true);
  backoff_armed_ = false;
  backoff_ = config_.backoff_initial;
  ack_parser_ = net::AckParser{};  // ack frames never span connections
  clock_align_.reset();            // new socket, new queueing regime
  fin_inflight_ = false;
  const std::uint64_t prior =
      connects_.fetch_add(1, std::memory_order_relaxed);
  if (prior > 0) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    metrics_of().reconnects.add(1);
  }
  connected_once_.store(true, std::memory_order_relaxed);
  // Retransmit-on-reconnect: the unacked window goes back to the head of
  // the queue, in seq order, ahead of anything not yet sent.
  if (!unacked_.empty()) {
    pending_.insert(pending_.begin(),
                    std::make_move_iterator(unacked_.begin()),
                    std::make_move_iterator(unacked_.end()));
    unacked_.clear();
    unacked_depth_.store(0, std::memory_order_relaxed);
  }
  return true;
}

void FleetPublisher::on_connection_lost() {
  if (!socket_.valid()) return;
  socket_.close();
  arm_backoff();
}

void FleetPublisher::handle_ack(const net::AckFrame& ack) {
  acks_received_.fetch_add(1, std::memory_order_relaxed);
  metrics_of().acks.inc();
  if (ack.timestamped()) {
    // The four NTP timestamps: our send stamp echoed back (t1), the
    // server's receive/transmit stamps (t2, t3), and now (t4).
    clock_align_.update(ack.echo_send_ns, ack.srv_rx_ns, ack.srv_tx_ns,
                        obs::monotonic_ns());
    clock_offset_ns_.store(clock_align_.offset_ns(),
                           std::memory_order_relaxed);
    clock_rtt_ns_.store(clock_align_.min_rtt_ns(), std::memory_order_relaxed);
    clock_samples_.store(clock_align_.samples(), std::memory_order_relaxed);
  }
  if (ack.nacked()) {
    // The server is closing this connection over a framing violation it
    // attributes to us; reconnect and retransmit — at-least-once makes the
    // crossover harmless.
    nacks_received_.fetch_add(1, std::memory_order_relaxed);
    on_connection_lost();
  }
  const std::uint64_t seen =
      acked_seq_observed_.load(std::memory_order_relaxed);
  if (ack.ack_seq > seen) {
    acked_seq_observed_.store(ack.ack_seq, std::memory_order_relaxed);
    const auto now = Clock::now();
    while (!unacked_.empty() && unacked_.front().seq <= ack.ack_seq) {
      const Batch& done = unacked_.front();
      frames_acked_.fetch_add(done.frames, std::memory_order_relaxed);
      batches_acked_.fetch_add(1, std::memory_order_relaxed);
      metrics_of().ack_rtt.observe(
          std::chrono::duration<double>(now - done.sent_at).count());
      unacked_.pop_front();
    }
    unacked_depth_.store(unacked_.size(), std::memory_order_relaxed);
    if (spill_) spill_->ack(ack.ack_seq);
  }
  if (ack.drained() && fin_inflight_) {
    drained_.store(true, std::memory_order_relaxed);
  }
}

bool FleetPublisher::poll_acks() {
  if (!socket_.valid()) return true;
  std::uint8_t chunk[512];
  for (;;) {
    const net::IoResult r = net::recv_some(socket_, chunk, sizeof(chunk));
    if (r.status == net::IoStatus::kWouldBlock) return true;
    if (r.status != net::IoStatus::kOk) return false;  // peer gone
    const net::AckStatus status = ack_parser_.consume(
        chunk, r.bytes, [this](const net::AckFrame& ack) {
          net::AckAction action;
          if (config_.hook != nullptr) action = config_.hook->on_ack(ack);
          if (action.delay_seconds > 0.0) {
            std::this_thread::sleep_for(
                to_duration(Second{action.delay_seconds}));
          }
          if (action.drop) {
            hook_acks_dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          handle_ack(ack);
        });
    if (status != net::AckStatus::kOk) return false;  // poisoned: reconnect
    if (!socket_.valid()) return true;  // a nack closed it mid-chunk
  }
}

bool FleetPublisher::send_batch(Batch& batch) {
  if (batch.bytes.empty() && batch.spilled && spill_) {
    if (!spill_->read(batch.seq, batch.bytes)) {
      // Compacted or unreadable: it must have been acked already; drop it.
      return true;
    }
  }
  // Fresh send stamp on every attempt (retransmits included), plus the
  // current clock-offset estimate for server-side re-basing.  Before the
  // hook, so chaos corruption of the header is not CRC-healed.
  const std::uint64_t send_ns = obs::monotonic_ns();
  // False means a v2 spill replay (no timestamp fields): it still goes out,
  // but its header carries no fresh send stamp, so the seal-to-wire latency
  // observation below would be fiction.
  const bool restamped = net::restamp_batch_send(
      batch.bytes, send_ns, clock_align_.offset_ns(), clock_align_.valid());
  if (restamped && !batch.sent_before && batch.seal_ns != 0 &&
      send_ns >= batch.seal_ns) {
    metrics_of().seal_to_wire.observe(
        static_cast<double>(send_ns - batch.seal_ns) * 1e-9);
  }
  net::BatchAction action;
  if (config_.hook != nullptr) {
    action = config_.hook->on_batch(batch.seq, batch.bytes);
  }
  if (action.stall_seconds > 0.0) {
    hook_stalls_.fetch_add(1, std::memory_order_relaxed);
    metrics_of().stalls.add(1);
    std::this_thread::sleep_for(to_duration(Second{action.stall_seconds}));
  }
  const std::size_t limit = std::min(action.truncate_to, batch.bytes.size());
  const bool truncated = limit < batch.bytes.size();
  // Paired trace span: the server records a "batch_rx" instant with the
  // same trace_id, which TraceMerge lines up on one timeline.
  const obs::ObsSpan span{"pub", "batch_send", metrics_of().send_seconds,
                          batch.trace_id};
  if (!net::send_all(socket_, batch.bytes.data(), limit)) {
    // Connection died mid-send: the batch stays queued for retransmit
    // after reconnect (the server discards whatever partial tail it saw).
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    on_connection_lost();
    return false;
  }
  last_send_ = Clock::now();
  if (truncated) {
    // Deliberate mid-batch cut: the server must treat the partial batch
    // as lost frames, so drop the connection and do NOT retransmit.  The
    // seq it consumed becomes an honest batch gap; a later cumulative ack
    // retires it from the spill log.
    hook_truncated_.fetch_add(1, std::memory_order_relaxed);
    socket_.close();
    arm_backoff();
    return true;  // batch disposed (by design)
  }
  if (action.duplicate) {
    // Chaos: the same fully-sent batch again, back to back.  The server's
    // dedup must swallow the copy; any frame double-count is a bug this
    // seam exists to catch.
    hook_duplicated_.fetch_add(1, std::memory_order_relaxed);
    if (!net::send_all(socket_, batch.bytes.data(), batch.bytes.size())) {
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      on_connection_lost();
      // The original send completed: fall through to bookkeeping.
    }
  }
  if (batch.sent_before) {
    retransmitted_batches_.fetch_add(1, std::memory_order_relaxed);
    retransmitted_frames_.fetch_add(batch.frames, std::memory_order_relaxed);
    metrics_of().retransmits.inc();
  } else {
    frames_sent_.fetch_add(batch.frames, std::memory_order_relaxed);
    batches_sent_.fetch_add(1, std::memory_order_relaxed);
    metrics_of().frames.add(batch.frames);
    metrics_of().batches.add(1);
  }
  bytes_sent_.fetch_add(batch.bytes.size(), std::memory_order_relaxed);
  metrics_of().bytes.add(batch.bytes.size());
  batch.sent_before = true;
  batch.sent_at = Clock::now();
  unacked_.push_back(std::move(batch));
  unacked_depth_.store(unacked_.size(), std::memory_order_relaxed);
  if (action.drop_connection) {
    hook_dropped_.fetch_add(1, std::memory_order_relaxed);
    socket_.close();
  }
  return true;
}

bool FleetPublisher::try_send_pending() {
  bool progressed = false;
  while (!pending_.empty()) {
    if (!ensure_connected()) return progressed;
    Batch batch = std::move(pending_.front());
    pending_.pop_front();
    if (!send_batch(batch)) {
      // Send failed: back to the head, retried after reconnect.
      pending_.push_front(std::move(batch));
      return progressed;
    }
    progressed = true;
  }
  return progressed;
}

void FleetPublisher::send_control(std::uint16_t flags, std::uint64_t seq) {
  if (!socket_.valid()) return;
  net::BatchMeta meta;
  meta.publisher_id = config_.publisher_id;
  meta.seq = seq;
  meta.flags = flags;
  const std::vector<std::uint8_t> wire = net::encode_batch({}, meta);
  if (!net::send_all(socket_, wire.data(), wire.size())) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    on_connection_lost();
    return;
  }
  last_send_ = Clock::now();
  bytes_sent_.fetch_add(wire.size(), std::memory_order_relaxed);
}

void FleetPublisher::heartbeat() {
  if (!socket_.valid()) return;
  send_control(net::kBatchFlagHeartbeat, 0);
  if (socket_.valid()) {
    heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
    metrics_of().heartbeats.inc();
  }
}

bool FleetPublisher::drain(Second deadline) {
  const Clock::time_point until = Clock::now() + to_duration(deadline);
  flush();
  while (Clock::now() < until) {
    if (!poll_acks()) on_connection_lost();
    try_send_pending();
    if (drained_.load(std::memory_order_relaxed)) break;
    // Connect for the FIN even when there was nothing to (re)send: a
    // resume-only run whose whole window was already acked still needs the
    // server's positive "drained" confirmation to exit clean.
    if (pending_.empty() && !fin_inflight_ && ensure_connected()) {
      // FIN carries the highest allocated data seq (not a fresh one):
      // "drained" means your cumulative ack reached it.  Idempotent, so a
      // reconnect simply resends it.
      send_control(net::kBatchFlagFin, next_seq_ - 1);
      if (socket_.valid()) {
        fin_inflight_ = true;
        fin_sent_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!drained_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  if (spill_) spill_->sync();
  return drained_.load(std::memory_order_relaxed);
}

void FleetPublisher::disconnect() {
  socket_.close();
  backoff_armed_ = false;
  backoff_ = config_.backoff_initial;
}

FleetPublisher::Stats FleetPublisher::stats() const {
  Stats s;
  s.frames_enqueued = frames_enqueued_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.connects = connects_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.send_failures = send_failures_.load(std::memory_order_relaxed);
  s.queue_dropped_batches =
      queue_dropped_batches_.load(std::memory_order_relaxed);
  s.queue_dropped_frames =
      queue_dropped_frames_.load(std::memory_order_relaxed);
  s.acks_received = acks_received_.load(std::memory_order_relaxed);
  s.frames_acked = frames_acked_.load(std::memory_order_relaxed);
  s.batches_acked = batches_acked_.load(std::memory_order_relaxed);
  s.retransmitted_batches =
      retransmitted_batches_.load(std::memory_order_relaxed);
  s.retransmitted_frames =
      retransmitted_frames_.load(std::memory_order_relaxed);
  s.nacks_received = nacks_received_.load(std::memory_order_relaxed);
  s.heartbeats_sent = heartbeats_sent_.load(std::memory_order_relaxed);
  s.fin_sent = fin_sent_.load(std::memory_order_relaxed);
  s.spilled_batches = spilled_batches_.load(std::memory_order_relaxed);
  s.resumed_batches = resumed_batches_.load(std::memory_order_relaxed);
  s.resumed_frames = resumed_frames_.load(std::memory_order_relaxed);
  s.unacked_batches = unacked_depth_.load(std::memory_order_relaxed);
  s.hook_stalls = hook_stalls_.load(std::memory_order_relaxed);
  s.hook_truncated_batches = hook_truncated_.load(std::memory_order_relaxed);
  s.hook_dropped_connections = hook_dropped_.load(std::memory_order_relaxed);
  s.hook_acks_dropped =
      hook_acks_dropped_.load(std::memory_order_relaxed);
  s.hook_duplicated_batches =
      hook_duplicated_.load(std::memory_order_relaxed);
  s.clock_offset_ns = clock_offset_ns_.load(std::memory_order_relaxed);
  s.clock_rtt_ns = clock_rtt_ns_.load(std::memory_order_relaxed);
  s.clock_samples = clock_samples_.load(std::memory_order_relaxed);
  s.connected_once = connected_once_.load(std::memory_order_relaxed);
  s.drained = drained_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tsvpt::ingest
