// Cross-shard merge of per-shard Aggregator summaries into one fleet-wide
// view, with a canonical byte serialization + CRC digest so "the sharded
// service computed the same thing as one big Aggregator" is a single
// integer comparison.
//
// Why the merge is exact and deterministic: the ingest server routes every
// frame of a stack to one shard (stable hash), and each shard's collector
// folds that stack's frames in arrival order — so per-stack RunningStats
// are produced by the identical sequence of Welford updates a single
// Aggregator would perform, bit for bit.  Cross-stack state (alert/health
// logs) arrives interleaved by thread timing in both the sharded and the
// single-process case, so the canonical form stable-sorts those logs by
// stack id: per-stack order (deterministic) is preserved, cross-stack
// interleaving (timing noise) is erased.
//
// Wall-clock-dependent fields (e2e latency samples, watchdog kicks) are
// merged for reporting but excluded from the canonical bytes.
//
// Sequence-gap accounting survives sharding — and even shard failover,
// where one stack's frames are split across two shards mid-run: each
// StackStats carries next_sequence (one past the highest sequence seen), so
// the merged missed count is recomputed as max(next_sequence) - frames
// instead of summing per-shard missed (which would double-count the gap a
// second shard perceives when it sees its first mid-stream frame).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/slo.hpp"
#include "ptsim/stats.hpp"
#include "telemetry/aggregator.hpp"

namespace tsvpt::ingest {

class FleetView {
 public:
  struct StackView {
    std::uint64_t frames = 0;
    std::uint64_t missed = 0;  // recomputed in finalize()
    std::uint64_t alerts = 0;
    std::uint64_t next_sequence = 0;
    Second last_sim_time{0.0};
    std::map<std::size_t, telemetry::Aggregator::DieStats> dies;
  };

  /// Fold one shard's results in.  Call once per shard, then finalize().
  /// For the single-process baseline, call once with the lone Aggregator's
  /// summary — the canonical bytes come out identical by construction.
  void add_shard(const telemetry::Aggregator::Summary& summary,
                 const std::vector<telemetry::Alert>& alert_log);

  /// Canonicalize: sort logs, recompute missed counts.  Idempotent.
  void finalize();

  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  [[nodiscard]] std::uint64_t decode_errors() const { return decode_errors_; }
  [[nodiscard]] std::uint64_t alerts() const { return alerts_; }
  [[nodiscard]] std::uint64_t missed() const { return missed_; }
  [[nodiscard]] std::uint64_t substituted_readings() const {
    return substituted_readings_;
  }
  [[nodiscard]] const std::map<telemetry::AlertKind, std::uint64_t>&
  alerts_by_kind() const {
    return alerts_by_kind_;
  }
  [[nodiscard]] const std::map<std::uint32_t, StackView>& stacks() const {
    return stacks_;
  }
  [[nodiscard]] const std::vector<telemetry::Alert>& alert_log() const {
    return alert_log_;
  }
  [[nodiscard]] const std::vector<telemetry::HealthEvent>& health_log() const {
    return health_log_;
  }
  /// Merged e2e latency samples — wall clock, excluded from the digest.
  [[nodiscard]] const Samples& latency() const { return latency_; }
  /// How many merged latency samples were re-based with a publisher clock
  /// offset (Aggregator::Summary::latency_aligned, summed over shards).
  [[nodiscard]] std::uint64_t latency_aligned() const {
    return latency_aligned_;
  }
  /// What clock the latency numbers are on: "aligned_clock" once any
  /// sample was re-based with a publisher offset (cross-process
  /// comparable), "local_clock" otherwise (capture and decode on the same
  /// monotonic clock, or no offset estimate yet).
  [[nodiscard]] const char* latency_source() const {
    return latency_aligned_ > 0 ? "aligned_clock" : "local_clock";
  }

  /// Replace the attached SLO tracker (default: default_slo_tracker()).
  void set_slo_tracker(obs::SloTracker tracker) {
    slo_ = std::move(tracker);
  }
  /// Serve default: a 99%-under-100ms latency SLO per pipeline stage.
  [[nodiscard]] static obs::SloTracker default_slo_tracker();
  /// Evaluate the attached tracker against the live metrics registry.
  [[nodiscard]] std::vector<obs::SloStatus> slo_status() const;

  /// Deterministic little-endian serialization of everything aggregated
  /// from frame *content* (doubles as IEEE-754 bit patterns).  Two views
  /// are equal iff their canonical bytes are equal.
  [[nodiscard]] std::vector<std::uint8_t> canonical_bytes() const;

  /// CRC-32 of canonical_bytes() — the one-integer equality check.
  [[nodiscard]] std::uint32_t digest() const;

 private:
  std::uint64_t frames_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t missed_ = 0;
  std::uint64_t substituted_readings_ = 0;
  std::map<telemetry::AlertKind, std::uint64_t> alerts_by_kind_;
  std::map<std::uint32_t, StackView> stacks_;
  std::vector<telemetry::Alert> alert_log_;
  std::vector<telemetry::HealthEvent> health_log_;
  Samples latency_;
  std::uint64_t latency_aligned_ = 0;
  obs::SloTracker slo_ = default_slo_tracker();
  bool finalized_ = false;
};

}  // namespace tsvpt::ingest
