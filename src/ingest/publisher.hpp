// Client side of the fleet telemetry service: FleetPublisher drains the
// sampler's lock-free rings into size/time-bounded batches and ships them
// over framed TCP (net/framing.hpp) with at-least-once delivery, surviving
// a flaky or absent server — and, with a spill directory, surviving its own
// SIGKILL.
//
// Delivery protocol (TSVB v2): every sealed data batch consumes a
// per-publisher sequence number (starting at 1).  Sent batches wait in an
// unacked window until the server's cumulative TSVA ack covers them; a
// reconnect retransmits the whole window in seq order before anything new,
// and the server's dedup (keyed on publisher id + seq) makes retransmits
// idempotent.  A nack poisons nothing: the publisher drops the connection
// and retransmits after reconnect.
//
// Backpressure has two modes:
//   - no spill_dir: bounded batch queue with drop-oldest overflow — the
//     same policy as the telemetry ring, applied one stage later.  Dropped
//     batches consumed seqs, so the server sees honest batch gaps and the
//     frames surface as sequence gaps downstream.
//   - spill_dir set: every sealed batch is appended to a crash-safe on-disk
//     spill queue (spill.hpp) *before* its first send, so memory overflow
//     evicts only the in-memory bytes (re-read from the log when the
//     batch's turn comes) and nothing is ever shed.  A publisher killed
//     mid-stream and reconstructed on the same spill_dir resumes from the
//     log: unacked batches are replayed in order, already-acked replays are
//     dedup'd server-side, and sequence allocation continues past the
//     persisted high-water mark.
//
// Reconnect is exponential backoff (initial * 2^n, capped) with
// deterministic seed-derived jitter, so a fleet of publishers does not
// stampede a restarted server in lockstep.  Idle connections send
// zero-frame heartbeat batches (threaded mode) so the server can tell an
// idle peer from a dead one.
//
// Drain is a handshake: flush everything, send a FIN batch naming the
// highest allocated seq, and wait (bounded) for the server's drained ack.
//
// Two driving modes share all of the batching/sending logic:
//   - start(rings)/stop(): a sender thread polls the rings — production.
//   - offer()/flush()/pump(): caller-driven, single-threaded — what the
//     deterministic chaos-replay tests and the benchmark use.
// The modes are exclusive; do not mix them on one instance.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ingest/spill.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "obs/clock_align.hpp"
#include "ptsim/rng.hpp"
#include "ptsim/units.hpp"
#include "telemetry/ring.hpp"

namespace tsvpt::ingest {

class FleetPublisher {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Stable identity for ack/dedup bookkeeping server-side.  0 derives a
    /// deterministic id from (host, port, spill_dir) — fine for tests, but
    /// a real fleet should assign distinct ids explicitly.
    std::uint64_t publisher_id = 0;
    /// A batch seals when it holds this many frames...
    std::size_t batch_max_frames = 64;
    /// ...or this many payload bytes, whichever comes first.
    std::size_t batch_max_bytes = 256 * 1024;
    /// An open batch also seals after this long, so a trickle of frames
    /// still reaches the server promptly.
    Second flush_interval{0.005};
    /// Bound on in-memory batches (pending + unacked).  Without a spill
    /// dir, overflow drops the oldest unsent batch; with one, overflow
    /// evicts batch bytes to the log instead (nothing is lost).
    std::size_t queue_max_batches = 64;
    Second backoff_initial{0.010};
    Second backoff_max{1.0};
    /// Deterministic reconnect jitter: each backoff is scaled into
    /// [1-jitter, 1] by a seed-derived draw.  0 disables (tests that count
    /// exact reconnect timing).
    double backoff_jitter = 0.5;
    /// Seed for the jitter stream; 0 derives it from publisher_id.
    std::uint64_t jitter_seed = 0;
    /// After stop() is requested, keep retrying queued batches (and wait
    /// for the drain handshake) for at most this long (threaded mode only).
    Second drain_deadline{2.0};
    /// Threaded mode: send a zero-frame heartbeat batch after this long
    /// with nothing else to send, so the server sees a live idle peer.
    /// 0 disables.
    Second heartbeat_interval{0.0};
    /// Non-empty: crash-safe spill queue directory (see spill.hpp).  The
    /// publisher resumes any unacked window found there at construction.
    std::string spill_dir;
    SpillQueue::Options spill;
    /// Chaos seam; may be null.  Called from the sending thread.
    net::TransportHook* hook = nullptr;
  };

  explicit FleetPublisher(Config config);
  ~FleetPublisher();

  FleetPublisher(const FleetPublisher&) = delete;
  FleetPublisher& operator=(const FleetPublisher&) = delete;

  // --- threaded mode ---

  /// Spawn the sender thread draining `rings` (must outlive stop()).
  void start(std::vector<telemetry::FrameRing*> rings);

  /// Drain rings and queued batches, run the FIN handshake (all bounded by
  /// drain_deadline), then join.
  void stop();

  // --- caller-driven mode ---

  /// Enqueue one encoded wire frame into the open batch (sealing it when
  /// full).  Does no socket IO.
  void offer(std::vector<std::uint8_t> wire);

  /// Seal the open batch regardless of size.
  void flush();

  /// Attempt to send every queued batch (connecting as needed, honouring
  /// backoff) and process any acks the server pushed back.  Returns true
  /// when the unsent queue was fully drained (the unacked window may still
  /// be waiting on acks).
  bool pump();

  /// Send the FIN batch and pump until the server reports drained or
  /// `deadline` passes.  Returns true when drained.
  bool drain(Second deadline);

  /// Send one zero-frame heartbeat batch now (connected publishers only;
  /// a no-op when there is no connection).
  void heartbeat();

  /// Drop the connection (next pump reconnects).  Backoff is reset: the
  /// caller asked for the drop, so it is not evidence the server is down.
  void disconnect();

  struct Stats {
    std::uint64_t frames_enqueued = 0;
    /// First-time sends only; retransmits are counted separately.
    std::uint64_t frames_sent = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t connects = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t send_failures = 0;
    /// Batches (and the frames inside them) shed by queue overflow
    /// (spill-less mode only — with a spill dir these stay zero).
    std::uint64_t queue_dropped_batches = 0;
    std::uint64_t queue_dropped_frames = 0;
    /// Delivery-guarantee bookkeeping.
    std::uint64_t acks_received = 0;
    std::uint64_t frames_acked = 0;
    std::uint64_t batches_acked = 0;
    std::uint64_t retransmitted_batches = 0;
    std::uint64_t retransmitted_frames = 0;
    std::uint64_t nacks_received = 0;
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t fin_sent = 0;
    /// Batches whose bytes were evicted to the spill log under memory
    /// pressure, and batches replayed from the log at construction.
    std::uint64_t spilled_batches = 0;
    std::uint64_t resumed_batches = 0;
    std::uint64_t resumed_frames = 0;
    /// Current depth of the unacked window (sent, not yet acked).
    std::uint64_t unacked_batches = 0;
    /// Chaos-hook effects actually applied.
    std::uint64_t hook_stalls = 0;
    std::uint64_t hook_truncated_batches = 0;
    std::uint64_t hook_dropped_connections = 0;
    std::uint64_t hook_acks_dropped = 0;
    std::uint64_t hook_duplicated_batches = 0;
    /// ClockAlign state for the current connection: estimated server clock
    /// minus publisher clock (ns), the RTT of the sample it came from, and
    /// how many round trips fed the window.  Zero until the first ack v2.
    std::int64_t clock_offset_ns = 0;
    std::int64_t clock_rtt_ns = 0;
    std::uint64_t clock_samples = 0;
    bool connected_once = false;
    bool drained = false;
  };
  /// Safe from any thread while the sender runs (relaxed counters).
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  [[nodiscard]] std::uint64_t publisher_id() const {
    return config_.publisher_id;
  }
  /// Highest batch seq the server has cumulatively acked.
  [[nodiscard]] std::uint64_t acked_seq() const {
    return acked_seq_observed_.load(std::memory_order_relaxed);
  }

 private:
  struct Batch {
    std::vector<std::uint8_t> bytes;
    std::size_t frames = 0;
    std::uint64_t seq = 0;
    std::uint16_t flags = 0;
    /// Trace-context id stamped into the v3 header at seal time.
    std::uint64_t trace_id = 0;
    /// Steady clock at seal, ns — seal_to_wire is measured from here on the
    /// first send (0 for batches resumed from a spill log).
    std::uint64_t seal_ns = 0;
    /// bytes were evicted; re-read from the spill log before sending.
    bool spilled = false;
    /// Already sent at least once (its next send is a retransmit).
    bool sent_before = false;
    std::chrono::steady_clock::time_point sent_at{};
  };

  void run(std::vector<telemetry::FrameRing*> rings);
  void seal_locked();
  void enforce_memory_bound();
  bool ensure_connected();
  /// Send queued batches until drained or blocked; true on progress.
  bool try_send_pending();
  bool send_batch(Batch& batch);
  void send_control(std::uint16_t flags, std::uint64_t seq);
  /// Drain any acks sitting in the socket; false when the connection died.
  bool poll_acks();
  void handle_ack(const net::AckFrame& ack);
  void on_connection_lost();
  void arm_backoff();

  Config config_;

  // Batching state — touched only by the driving thread (sender thread in
  // threaded mode, caller in manual mode).
  std::vector<std::vector<std::uint8_t>> open_frames_;
  std::size_t open_bytes_ = 0;
  bool open_deadline_armed_ = false;
  std::chrono::steady_clock::time_point open_deadline_;
  /// Sealed, not yet sent this connection (front = next to send).
  std::deque<Batch> pending_;
  /// Sent, awaiting ack (front = oldest seq).
  std::deque<Batch> unacked_;
  std::uint64_t next_seq_ = 1;
  std::optional<SpillQueue> spill_;
  net::AckParser ack_parser_;
  /// Per-connection NTP-style offset estimator fed by ack v2 timestamps
  /// (reset on reconnect — new socket, new queues).
  obs::ClockAlign clock_align_;
  bool fin_inflight_ = false;
  std::chrono::steady_clock::time_point last_send_;

  net::Socket socket_;
  bool backoff_armed_ = false;
  std::chrono::steady_clock::time_point next_attempt_;
  Second backoff_{0.0};
  Rng jitter_rng_{0};

  std::thread sender_;
  std::atomic<bool> stop_requested_{false};

  std::atomic<std::uint64_t> frames_enqueued_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> batches_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> queue_dropped_batches_{0};
  std::atomic<std::uint64_t> queue_dropped_frames_{0};
  std::atomic<std::uint64_t> acks_received_{0};
  std::atomic<std::uint64_t> frames_acked_{0};
  std::atomic<std::uint64_t> batches_acked_{0};
  std::atomic<std::uint64_t> retransmitted_batches_{0};
  std::atomic<std::uint64_t> retransmitted_frames_{0};
  std::atomic<std::uint64_t> nacks_received_{0};
  std::atomic<std::uint64_t> heartbeats_sent_{0};
  std::atomic<std::uint64_t> fin_sent_{0};
  std::atomic<std::uint64_t> spilled_batches_{0};
  std::atomic<std::uint64_t> resumed_batches_{0};
  std::atomic<std::uint64_t> resumed_frames_{0};
  std::atomic<std::uint64_t> unacked_depth_{0};
  std::atomic<std::uint64_t> hook_stalls_{0};
  std::atomic<std::uint64_t> hook_truncated_{0};
  std::atomic<std::uint64_t> hook_dropped_{0};
  std::atomic<std::uint64_t> hook_acks_dropped_{0};
  std::atomic<std::uint64_t> hook_duplicated_{0};
  std::atomic<std::uint64_t> acked_seq_observed_{0};
  std::atomic<std::int64_t> clock_offset_ns_{0};
  std::atomic<std::int64_t> clock_rtt_ns_{0};
  std::atomic<std::uint64_t> clock_samples_{0};
  std::atomic<bool> connected_once_{false};
  std::atomic<bool> drained_{false};
};

}  // namespace tsvpt::ingest
