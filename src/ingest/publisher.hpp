// Client side of the fleet telemetry service: FleetPublisher drains the
// sampler's lock-free rings into size/time-bounded batches and ships them
// over framed TCP (net/framing.hpp), surviving a flaky or absent server.
//
// Backpressure is a bounded batch queue with drop-oldest overflow — the
// same policy as the telemetry ring, applied one stage later: when the
// server (or the network) cannot keep up, the publisher sheds the *oldest*
// batches so what eventually arrives is the freshest picture of the fleet,
// and the server's sequence-gap accounting records exactly what was lost.
//
// Reconnect is exponential backoff (initial * 2^n, capped).  A batch that
// fails to send stays at the queue front and is retransmitted after
// reconnect, so a clean connection drop loses nothing; a batch the chaos
// hook truncates mid-send is gone by design (the server discards the
// partial tail) and shows up as a sequence gap downstream.
//
// Two driving modes share all of the batching/sending logic:
//   - start(rings)/stop(): a sender thread polls the rings — production.
//   - offer()/flush()/pump(): caller-driven, single-threaded — what the
//     deterministic chaos-replay tests and the benchmark use.
// The modes are exclusive; do not mix them on one instance.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "ptsim/units.hpp"
#include "telemetry/ring.hpp"

namespace tsvpt::ingest {

class FleetPublisher {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// A batch seals when it holds this many frames...
    std::size_t batch_max_frames = 64;
    /// ...or this many payload bytes, whichever comes first.
    std::size_t batch_max_bytes = 256 * 1024;
    /// An open batch also seals after this long, so a trickle of frames
    /// still reaches the server promptly.
    Second flush_interval{0.005};
    /// Bounded send queue (sealed batches); overflow drops the oldest.
    std::size_t queue_max_batches = 64;
    Second backoff_initial{0.010};
    Second backoff_max{1.0};
    /// After stop() is requested, keep retrying queued batches for at most
    /// this long before giving up (threaded mode only).
    Second drain_deadline{2.0};
    /// Chaos seam; may be null.  Called from the sending thread.
    net::TransportHook* hook = nullptr;
  };

  explicit FleetPublisher(Config config);
  ~FleetPublisher();

  FleetPublisher(const FleetPublisher&) = delete;
  FleetPublisher& operator=(const FleetPublisher&) = delete;

  // --- threaded mode ---

  /// Spawn the sender thread draining `rings` (must outlive stop()).
  void start(std::vector<telemetry::FrameRing*> rings);

  /// Drain rings and queued batches (bounded by drain_deadline), then join.
  void stop();

  // --- caller-driven mode ---

  /// Enqueue one encoded wire frame into the open batch (sealing it when
  /// full).  Does no socket IO.
  void offer(std::vector<std::uint8_t> wire);

  /// Seal the open batch regardless of size.
  void flush();

  /// Attempt to send every queued batch (connecting as needed, honouring
  /// backoff).  Returns true when the queue was fully drained.
  bool pump();

  /// Drop the connection (next pump reconnects).  Backoff is reset: the
  /// caller asked for the drop, so it is not evidence the server is down.
  void disconnect();

  struct Stats {
    std::uint64_t frames_enqueued = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t connects = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t send_failures = 0;
    /// Batches (and the frames inside them) shed by queue overflow.
    std::uint64_t queue_dropped_batches = 0;
    std::uint64_t queue_dropped_frames = 0;
    /// Chaos-hook effects actually applied.
    std::uint64_t hook_stalls = 0;
    std::uint64_t hook_truncated_batches = 0;
    std::uint64_t hook_dropped_connections = 0;
    bool connected_once = false;
  };
  /// Safe from any thread while the sender runs (relaxed counters).
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] bool connected() const { return socket_.valid(); }

 private:
  struct Batch {
    std::vector<std::uint8_t> bytes;
    std::size_t frames = 0;
    std::uint64_t index = 0;
  };

  void run(std::vector<telemetry::FrameRing*> rings);
  void seal_locked();
  bool ensure_connected();
  /// Send queued batches until drained or blocked; true on progress.
  bool try_send_pending();

  Config config_;

  // Batching state — touched only by the driving thread (sender thread in
  // threaded mode, caller in manual mode).
  std::vector<std::vector<std::uint8_t>> open_frames_;
  std::size_t open_bytes_ = 0;
  bool open_deadline_armed_ = false;
  std::chrono::steady_clock::time_point open_deadline_;
  std::deque<Batch> pending_;
  std::uint64_t next_batch_index_ = 0;

  net::Socket socket_;
  bool backoff_armed_ = false;
  std::chrono::steady_clock::time_point next_attempt_;
  Second backoff_{0.0};

  std::thread sender_;
  std::atomic<bool> stop_requested_{false};

  std::atomic<std::uint64_t> frames_enqueued_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> batches_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> queue_dropped_batches_{0};
  std::atomic<std::uint64_t> queue_dropped_frames_{0};
  std::atomic<std::uint64_t> hook_stalls_{0};
  std::atomic<std::uint64_t> hook_truncated_{0};
  std::atomic<std::uint64_t> hook_dropped_{0};
  std::atomic<bool> connected_once_{false};
};

}  // namespace tsvpt::ingest
