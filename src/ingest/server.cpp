#include "ingest/server.hpp"

#include <poll.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "telemetry/codec_util.hpp"
#include "telemetry/frame.hpp"

namespace tsvpt::ingest {

namespace {

constexpr int kPollTimeoutMs = 10;
constexpr std::size_t kRecvChunk = 64 * 1024;

struct ServerMetrics {
  obs::Counter connections = obs::counter("tsvpt_ingest_connections_total");
  obs::Counter batches = obs::counter("tsvpt_ingest_batches_total");
  obs::Counter frames = obs::counter("tsvpt_ingest_frames_total");
  obs::Counter bytes = obs::counter("tsvpt_ingest_bytes_total");
  obs::Counter ring_drops = obs::counter("tsvpt_ingest_ring_drops_total");
  obs::Counter protocol_errors =
      obs::counter("tsvpt_ingest_protocol_errors_total");
  obs::Counter acks = obs::counter("tsvpt_ingest_acks_total");
  obs::Counter duplicates = obs::counter("tsvpt_ingest_duplicates_total");
  obs::Counter heartbeats = obs::counter("tsvpt_ingest_heartbeats_total");
  obs::Counter reaped = obs::counter("tsvpt_ingest_reaped_total");
  obs::Counter http_requests =
      obs::counter("tsvpt_ingest_http_requests_total");
  obs::Histogram wire_to_shard = obs::stage_latency(obs::kStageWireToShard);
};

[[nodiscard]] ServerMetrics& metrics_of() {
  static ServerMetrics metrics;
  return metrics;
}

[[nodiscard]] std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

IngestServer::IngestServer(Config config) : config_(std::move(config)) {
  if (config_.shard_count == 0) config_.shard_count = 1;
  if (config_.shard_count > 64) {
    throw std::invalid_argument("ingest: shard_count is capped at 64");
  }
}

IngestServer::~IngestServer() { stop(); }

std::size_t IngestServer::shard_of(std::uint32_t stack_id,
                                   std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(splitmix64(stack_id) % shard_count);
}

void IngestServer::fail_shard(std::size_t shard) {
  if (shard >= shards_.size()) return;
  // mo: release pairs with live_shard_for's relaxed read being on the same
  // (IO) thread in steady state; release covers the cross-thread caller so
  // the failover decision is not reordered before whatever prompted it.
  failed_mask_.fetch_or(1ull << shard, std::memory_order_release);
}

std::size_t IngestServer::live_shard_for(std::uint32_t stack_id) const {
  const std::size_t count = shards_.size();
  const std::size_t home = shard_of(stack_id, count);
  // mo: acquire pairs with fail_shard's release (see there).
  const std::uint64_t failed = failed_mask_.load(std::memory_order_acquire);
  if (failed == 0) return home;
  for (std::size_t probe = 0; probe < count; ++probe) {
    const std::size_t candidate = (home + probe) % count;
    if ((failed & (1ull << candidate)) == 0) return candidate;
  }
  return home;  // everything failed: keep routing home, rings still absorb
}

void IngestServer::start() {
  // mo: acquire pairs with stop()/start()'s release stores (see running()).
  if (running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  listener_ = net::tcp_listen(config_.bind_host, config_.port);
  net::set_nonblocking(listener_, true);
  port_ = net::local_port(listener_);
  if (config_.http_enabled) {
    http_listener_ = net::tcp_listen(config_.bind_host, config_.http_port);
    net::set_nonblocking(http_listener_, true);
    http_port_ = net::local_port(http_listener_);
  }
  // A scrape must always expose the complete stage family, even before
  // traffic has reached every stage (stable schema for grep gates).
  obs::register_stage_histograms();

  if (!config_.store_dir.empty()) {
    store_ = std::make_unique<store::StoreWriter>(config_.store_dir);
  }

  shards_.clear();
  frames_per_shard_.clear();
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->ring = std::make_unique<telemetry::FrameRing>(
        config_.shard_ring_capacity);
    telemetry::Aggregator::Config agg = config_.aggregator;
    // Server-side shard rings always carry the attribution trailer.
    agg.shard_trailer = true;
    Shard* raw = shard.get();
    shard->aggregator = std::make_unique<telemetry::Aggregator>(
        std::move(agg), [raw](const telemetry::Alert& alert) {
          raw->alerts.push_back(alert);
        });
    shard->aggregator->start({shard->ring.get()});
    shards_.push_back(std::move(shard));
    frames_per_shard_.push_back(
        std::make_unique<std::atomic<std::uint64_t>>(0));
  }

  touch_activity();
  io_thread_ = std::thread([this] { run(); });
  // mo: release pairs with running()'s acquire load.
  running_.store(true, std::memory_order_release);
}

void IngestServer::stop() {
  if (!io_thread_.joinable()) return;
  // mo: release pairs with the IO loop's acquire load, ordering anything
  // the stopping thread did (e.g. fail_shard) before the final drain.
  stop_requested_.store(true, std::memory_order_release);
  io_thread_.join();
  for (auto& shard : shards_) shard->aggregator->stop();
  if (store_) store_->close();
  // mo: release pairs with running()'s acquire load: "not running" implies
  // the shard summaries are fully drained and safe to read.
  running_.store(false, std::memory_order_release);
}

void IngestServer::touch_activity() {
  last_activity_ns_.store(now_ns(), std::memory_order_relaxed);
}

Second IngestServer::idle_for() const {
  const std::int64_t last = last_activity_ns_.load(std::memory_order_relaxed);
  return Second{static_cast<double>(now_ns() - last) * 1e-9};
}

void IngestServer::route_frame(std::vector<std::uint8_t>&& wire) {
  const auto stack_id = telemetry::peek_stack_id(wire);
  if (!stack_id) {
    unroutable_frames_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (store_) {
    // Store sink decodes the bare frame — before the trailer goes on.
    const telemetry::DecodeResult decoded = telemetry::decode(wire);
    if (decoded.ok()) {
      store_->append(decoded.frame);
    } else {
      store_decode_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const std::size_t shard = live_shard_for(*stack_id);
  frames_total_.fetch_add(1, std::memory_order_relaxed);
  frames_per_shard_[shard]->fetch_add(1, std::memory_order_relaxed);
  metrics_of().frames.add(1);
  // Attribution trailer for the shard aggregator: when this frame entered
  // the shard queue, and the batch's publisher clock offset (sentinel when
  // the publisher had no estimate).
  {
    using telemetry::put_u64;
    const std::int64_t offset = cur_offset_valid_
                                    ? cur_offset_ns_
                                    : telemetry::kRingTrailerInvalidOffset;
    put_u64(wire, static_cast<std::uint64_t>(now_ns()));
    put_u64(wire, static_cast<std::uint64_t>(offset));
  }
  const std::size_t evicted =
      shards_[shard]->ring->push_overwrite(std::move(wire));
  if (evicted > 0) {
    ring_drops_.fetch_add(evicted, std::memory_order_relaxed);
    metrics_of().ring_drops.add(evicted);
  }
}

bool IngestServer::handle_batch_info(Connection& conn,
                                     const net::BatchInfo& info) {
  if (info.publisher_id != 0) conn.publisher_id = info.publisher_id;
  auto [it, inserted] = peers_.try_emplace(info.publisher_id);
  if (inserted && info.publisher_id != 0) {
    publishers_.fetch_add(1, std::memory_order_relaxed);
  }
  Peer& peer = it->second;
  conn.ack_pending = true;

  // Timestamped (v3 data) batch: capture the NTP echo pair for the next
  // ack, stage the publisher's clock offset for route_frame's trailer, and
  // attribute the wire leg when the offset lets us compare clocks.
  if (info.send_ns != 0) {
    const std::uint64_t rx = static_cast<std::uint64_t>(now_ns());
    conn.echo_send_ns = info.send_ns;
    conn.echo_rx_ns = rx;
    cur_offset_ns_ = info.offset_ns;
    cur_offset_valid_ = info.offset_valid();
    obs::instant("ingest", "batch_rx", info.trace_id);
    if (info.offset_valid()) {
      const std::int64_t wire_ns =
          static_cast<std::int64_t>(rx) -
          (static_cast<std::int64_t>(info.send_ns) + info.offset_ns);
      if (wire_ns >= 0) {
        metrics_of().wire_to_shard.observe(static_cast<double>(wire_ns) *
                                           1e-9);
      }
    }
  } else {
    // v2 replay or control batch: no send stamp, so no offset context.
    cur_offset_valid_ = false;
  }

  if (info.heartbeat()) {
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    metrics_of().heartbeats.add(1);
    return false;  // zero frames by construction; nothing to emit
  }
  if (info.fin()) {
    // FIN names the highest data seq this publisher ever allocated; it
    // consumes no sequence itself, so a resend after reconnect is a no-op.
    peer.has_fin = true;
    peer.fin_seq = info.seq;
    return false;
  }
  if (info.seq == 0) return true;  // unsequenced producer: no dedup possible
  if (info.seq <= peer.acked) {
    // Retransmit of something already ingested (the ack that retired it
    // raced the publisher's resend, or a crashed publisher replayed its
    // spill log past a stale marker).  Veto the frames; the cumulative ack
    // below tells the sender to move on.
    duplicate_batches_.fetch_add(1, std::memory_order_relaxed);
    duplicate_frames_.fetch_add(info.frame_count, std::memory_order_relaxed);
    metrics_of().duplicates.add(1);
    return false;
  }
  if (info.seq > peer.acked + 1) {
    // The publisher skipped seqs on purpose (drop-oldest overflow or a
    // deliberately-abandoned truncated batch).  Advance past the hole —
    // the frame loss is already visible downstream as sequence gaps.
    batch_gaps_.fetch_add(info.seq - peer.acked - 1,
                          std::memory_order_relaxed);
  }
  peer.acked = info.seq;
  return true;
}

void IngestServer::queue_ack(Connection& conn) {
  conn.ack_pending = false;
  const auto it = peers_.find(conn.publisher_id);
  if (it == peers_.end()) return;
  Peer& peer = it->second;
  net::AckFrame ack;
  ack.ack_seq = peer.acked;
  // NTP echo: t1 (publisher send) and t2 (our parse time) from the newest
  // timestamped batch, t3 stamped now — as close to the send as we get.
  ack.echo_send_ns = conn.echo_send_ns;
  ack.srv_rx_ns = conn.echo_rx_ns;
  ack.srv_tx_ns = static_cast<std::uint64_t>(now_ns());
  if (peer.has_fin && peer.acked >= peer.fin_seq) {
    ack.flags |= net::kAckFlagDrained;
    if (!peer.drain_counted) {
      peer.drain_counted = true;
      fin_drains_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  net::append_ack(conn.outbox, ack);
  acks_sent_.fetch_add(1, std::memory_order_relaxed);
  metrics_of().acks.add(1);
}

bool IngestServer::flush_outbox(Connection& conn) {
  while (!conn.outbox.empty()) {
    const net::IoResult r = net::send_some(conn.socket, conn.outbox.data(),
                                           conn.outbox.size());
    if (r.status == net::IoStatus::kOk) {
      conn.outbox.erase(conn.outbox.begin(),
                        conn.outbox.begin() +
                            static_cast<std::ptrdiff_t>(r.bytes));
      continue;
    }
    if (r.status == net::IoStatus::kWouldBlock) return true;  // POLLOUT waits
    return false;
  }
  return true;
}

// hot(lock): the shard event loop owns all of its state; every cross-thread
// handoff goes through the lock-free shard queue, so any mutex acquired here
// is a regression that can stall every connection on the shard.
void IngestServer::run() {
  // Scrape-port connections: parse one request, write one response, close.
  struct HttpConn {
    net::Socket socket;
    obs::HttpRequestParser parser;
    std::string response;
    std::size_t sent = 0;
  };
  std::vector<Connection> connections;
  std::vector<HttpConn> http_conns;
  std::vector<pollfd> fds;
  std::vector<std::uint8_t> chunk(kRecvChunk);
  const bool http = http_listener_.valid();
  const bool reap = config_.idle_conn_timeout.value() > 0.0;
  const auto reap_after = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.idle_conn_timeout.value()));

  const auto close_connection = [&](std::size_t i, bool protocol_error) {
    if (protocol_error) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      metrics_of().protocol_errors.add(1);
    } else if (connections[i].parser.buffered() > 0) {
      partial_disconnects_.fetch_add(1, std::memory_order_relaxed);
    }
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    connections.erase(connections.begin() +
                      static_cast<std::ptrdiff_t>(i));
    open_connections_.store(connections.size(), std::memory_order_relaxed);
  };

  for (;;) {
    // mo: acquire pairs with stop()'s release store.
    if (stop_requested_.load(std::memory_order_acquire)) break;

    fds.clear();
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    const std::size_t http_listener_slot = fds.size();
    if (http) fds.push_back(pollfd{http_listener_.fd(), POLLIN, 0});
    const std::size_t conn_base = fds.size();
    for (const Connection& conn : connections) {
      const short events =
          static_cast<short>(POLLIN | (conn.outbox.empty() ? 0 : POLLOUT));
      fds.push_back(pollfd{conn.socket.fd(), events, 0});
    }
    const std::size_t http_base = fds.size();
    for (const HttpConn& hc : http_conns) {
      const short events =
          static_cast<short>(hc.response.empty() ? POLLIN : POLLOUT);
      fds.push_back(pollfd{hc.socket.fd(), events, 0});
    }
    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), kPollTimeoutMs);
    // Connections this round's pollfds actually describe: the accept loops
    // below grow the vectors, and those new sockets have no pollfd until
    // the next iteration.
    const std::size_t polled = connections.size();
    const std::size_t http_polled = http_conns.size();

    if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
      for (;;) {
        net::Socket accepted = net::tcp_accept(listener_);
        if (!accepted.valid()) break;
        net::set_nonblocking(accepted, true);
        net::set_nodelay(accepted);
        Connection conn;
        conn.socket = std::move(accepted);
        conn.last_rx = std::chrono::steady_clock::now();
        connections.push_back(std::move(conn));
        connections_total_.fetch_add(1, std::memory_order_relaxed);
        metrics_of().connections.add(1);
        open_connections_.store(connections.size(),
                                std::memory_order_relaxed);
        touch_activity();
      }
    }

    // Reverse order so close_connection's erase does not shift the
    // indices of connections not yet visited this round.
    for (std::size_t i = polled; i-- > 0;) {
      const pollfd& pfd = fds[conn_base + i];
      Connection& conn = connections[i];

      if (reap && std::chrono::steady_clock::now() - conn.last_rx >
                      reap_after) {
        reaped_connections_.fetch_add(1, std::memory_order_relaxed);
        metrics_of().reaped.add(1);
        close_connection(i, false);
        continue;
      }
      if (ready <= 0) continue;

      if ((pfd.revents & POLLOUT) != 0 && !flush_outbox(conn)) {
        close_connection(i, false);
        continue;
      }
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool closed = false;
      bool errored = false;
      net::BatchStatus error_status = net::BatchStatus::kOk;
      for (;;) {
        const net::IoResult r =
            net::recv_some(conn.socket, chunk.data(), chunk.size());
        if (r.status == net::IoStatus::kOk) {
          touch_activity();
          conn.last_rx = std::chrono::steady_clock::now();
          bytes_total_.fetch_add(r.bytes, std::memory_order_relaxed);
          metrics_of().bytes.add(r.bytes);
          // Re-bound the veto seam every chunk: `conn` is a reference into
          // a vector that reallocates as connections come and go, so a
          // captured reference must never outlive this iteration.
          conn.parser.set_batch_handler(
              [this, &conn](const net::BatchInfo& info) {
                return handle_batch_info(conn, info);
              });
          const std::uint64_t before = conn.parser.batches();
          const net::BatchStatus status = conn.parser.consume(
              chunk.data(), r.bytes, [this](std::vector<std::uint8_t>&& f) {
                route_frame(std::move(f));
              });
          batches_total_.fetch_add(conn.parser.batches() - before,
                             std::memory_order_relaxed);
          metrics_of().batches.add(conn.parser.batches() - before);
          if (status != net::BatchStatus::kOk) {
            errored = true;
            error_status = status;
            break;
          }
          continue;
        }
        if (r.status == net::IoStatus::kWouldBlock) break;
        closed = true;  // kClosed or kError: either way the peer is gone
        break;
      }
      if (conn.ack_pending && !closed && !errored) queue_ack(conn);
      if (errored) {
        // Best-effort nack so a live-but-buggy publisher learns why it is
        // about to lose the connection; a full kernel buffer just skips it.
        net::AckFrame nack;
        nack.flags = net::kAckFlagNack;
        nack.nack = static_cast<std::uint32_t>(error_status);
        const auto peer_it = peers_.find(conn.publisher_id);
        if (peer_it != peers_.end()) nack.ack_seq = peer_it->second.acked;
        const std::vector<std::uint8_t> wire = net::encode_ack(nack);
        (void)net::send_some(conn.socket, wire.data(), wire.size());
        nacks_sent_.fetch_add(1, std::memory_order_relaxed);
        close_connection(i, true);
      } else if (closed) {
        close_connection(i, false);
      } else if (!flush_outbox(conn)) {
        close_connection(i, false);
      }
    }

    if (http && ready > 0 &&
        (fds[http_listener_slot].revents & POLLIN) != 0) {
      for (;;) {
        net::Socket accepted = net::tcp_accept(http_listener_);
        if (!accepted.valid()) break;
        net::set_nonblocking(accepted, true);
        HttpConn hc;
        hc.socket = std::move(accepted);
        http_conns.push_back(std::move(hc));
      }
    }

    // Reverse order for the same erase-stability reason as above.
    for (std::size_t i = http_polled; i-- > 0;) {
      const pollfd& pfd = fds[http_base + i];
      HttpConn& hc = http_conns[i];
      bool drop = false;
      if (ready > 0 && hc.response.empty() &&
          (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        for (;;) {
          const net::IoResult r =
              net::recv_some(hc.socket, chunk.data(), chunk.size());
          if (r.status == net::IoStatus::kOk) {
            const obs::HttpRequestParser::State state = hc.parser.feed(
                reinterpret_cast<const char*>(chunk.data()), r.bytes);
            if (state == obs::HttpRequestParser::State::kIncomplete) {
              continue;
            }
            if (state == obs::HttpRequestParser::State::kComplete) {
              hc.response =
                  http_respond(hc.parser.method(), hc.parser.path());
            } else {
              // Oversized or malformed: answer with the error and close.
              http_requests_.fetch_add(1, std::memory_order_relaxed);
              metrics_of().http_requests.add(1);
              hc.response = obs::http_response(
                  state == obs::HttpRequestParser::State::kTooLarge ? 431
                                                                    : 400,
                  "text/plain", "bad request\n");
            }
            break;
          }
          if (r.status == net::IoStatus::kWouldBlock) break;
          drop = true;  // peer gone before a full request arrived
          break;
        }
      }
      if (!drop && !hc.response.empty()) {
        while (hc.sent < hc.response.size()) {
          const net::IoResult r = net::send_some(
              hc.socket,
              reinterpret_cast<const std::uint8_t*>(hc.response.data()) +
                  hc.sent,
              hc.response.size() - hc.sent);
          if (r.status == net::IoStatus::kOk) {
            hc.sent += r.bytes;
            continue;
          }
          if (r.status != net::IoStatus::kWouldBlock) drop = true;
          break;  // kWouldBlock: POLLOUT resumes next round
        }
        if (hc.sent == hc.response.size()) drop = true;  // close-on-done
      }
      if (drop) {
        http_conns.erase(http_conns.begin() +
                         static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  // Connections close here; bytes still in flight are discarded, which is
  // the documented stop() contract (the CLI waits for idle first).
  connections.clear();
  http_conns.clear();
  open_connections_.store(0, std::memory_order_relaxed);
  listener_.close();
  http_listener_.close();
}

std::string IngestServer::http_respond(const std::string& method,
                                       const std::string& path) {
  http_requests_.fetch_add(1, std::memory_order_relaxed);
  metrics_of().http_requests.add(1);
  if (method != "GET") {
    return obs::http_response(405, "text/plain", "method not allowed\n");
  }
  if (path == "/metrics") {
    return obs::http_response(200,
                              "text/plain; version=0.0.4; charset=utf-8",
                              obs::metrics_prometheus());
  }
  if (path == "/healthz") {
    return obs::http_response(200, "application/json", healthz_json());
  }
  return obs::http_response(404, "text/plain", "not found\n");
}

std::string IngestServer::healthz_json() const {
  // IO thread: peers_ and the shard rings are safe to read here (rings via
  // their own internal synchronization, peers_ because we own it).
  std::ostringstream out;
  out << "{\"shards\": [";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (s != 0) out << ", ";
    const bool failed =
        (failed_mask_.load(std::memory_order_relaxed) & (1ull << s)) != 0;
    out << "{\"shard\": " << s << ", \"ring_depth\": "
        << shards_[s]->ring->size() << ", \"frames\": "
        << frames_per_shard_[s]->load(std::memory_order_relaxed)
        << ", \"failed\": " << (failed ? "true" : "false") << "}";
  }
  out << "], \"open_connections\": "
      << open_connections_.load(std::memory_order_relaxed)
      << ", \"peers\": [";
  bool first = true;
  for (const auto& [publisher_id, peer] : peers_) {
    if (publisher_id == 0) continue;  // unsequenced producers: no identity
    if (!first) out << ", ";
    first = false;
    const bool drained = peer.has_fin && peer.acked >= peer.fin_seq;
    out << "{\"publisher_id\": " << publisher_id << ", \"acked\": "
        << peer.acked << ", \"fin\": " << (peer.has_fin ? "true" : "false")
        << ", \"drained\": " << (drained ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

IngestServer::Stats IngestServer::stats() const {
  Stats s;
  s.connections = connections_total_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.partial_disconnects =
      partial_disconnects_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.batches = batches_total_.load(std::memory_order_relaxed);
  s.frames = frames_total_.load(std::memory_order_relaxed);
  s.bytes = bytes_total_.load(std::memory_order_relaxed);
  s.ring_drops = ring_drops_.load(std::memory_order_relaxed);
  s.unroutable_frames = unroutable_frames_.load(std::memory_order_relaxed);
  s.store_decode_errors =
      store_decode_errors_.load(std::memory_order_relaxed);
  s.acks_sent = acks_sent_.load(std::memory_order_relaxed);
  s.nacks_sent = nacks_sent_.load(std::memory_order_relaxed);
  s.duplicate_batches = duplicate_batches_.load(std::memory_order_relaxed);
  s.duplicate_frames = duplicate_frames_.load(std::memory_order_relaxed);
  s.heartbeats = heartbeats_.load(std::memory_order_relaxed);
  s.batch_gaps = batch_gaps_.load(std::memory_order_relaxed);
  s.fin_drains = fin_drains_.load(std::memory_order_relaxed);
  s.reaped_connections =
      reaped_connections_.load(std::memory_order_relaxed);
  s.http_requests = http_requests_.load(std::memory_order_relaxed);
  s.publishers = publishers_.load(std::memory_order_relaxed);
  s.open_connections = open_connections_.load(std::memory_order_relaxed);
  s.frames_per_shard.reserve(frames_per_shard_.size());
  for (const auto& counter : frames_per_shard_) {
    s.frames_per_shard.push_back(counter->load(std::memory_order_relaxed));
  }
  return s;
}

FleetView IngestServer::fleet_view() const {
  FleetView view;
  for (const auto& shard : shards_) {
    view.add_shard(shard->aggregator->summary(), shard->alerts);
  }
  view.finalize();
  return view;
}

}  // namespace tsvpt::ingest
