#include "ingest/spill.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "net/framing.hpp"
#include "obs/metrics.hpp"
#include "store/segment.hpp"
#include "telemetry/codec_util.hpp"

namespace tsvpt::ingest {

namespace {

constexpr const char* kLogName = "spill.log";
constexpr const char* kMarkerName = "spill.ack";

// Record header CRC covers seq + payload_len + frame_count.
constexpr std::size_t kRecordCrcCoverage = kSpillRecordHeaderSize - 4;
constexpr std::size_t kMarkerCrcCoverage = kSpillMarkerSize - 4;

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error{what + " " + path + ": " + std::strerror(errno)};
}

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("SpillQueue: write", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

[[nodiscard]] std::string log_path(const std::string& dir) {
  return (std::filesystem::path(dir) / kLogName).string();
}

[[nodiscard]] std::string marker_path(const std::string& dir) {
  return (std::filesystem::path(dir) / kMarkerName).string();
}

struct SpillMetrics {
  obs::Counter appends = obs::counter("tsvpt_spill_appends_total");
  obs::Counter bytes = obs::counter("tsvpt_spill_bytes_total");
  obs::Counter compactions = obs::counter("tsvpt_spill_compactions_total");
  obs::Gauge depth = obs::gauge("tsvpt_spill_depth_batches");
};

[[nodiscard]] SpillMetrics& metrics_of() {
  static SpillMetrics metrics;
  return metrics;
}

}  // namespace

SpillQueue::SpillQueue(std::string dir, Options options, int fd)
    : dir_(std::move(dir)), options_(options), fd_(fd) {}

SpillQueue::SpillQueue(SpillQueue&& other) noexcept
    : dir_(std::move(other.dir_)),
      options_(other.options_),
      fd_(other.fd_),
      log_bytes_(other.log_bytes_),
      index_(std::move(other.index_)),
      acked_seq_(other.acked_seq_),
      next_seq_(other.next_seq_),
      acks_since_persist_(other.acks_since_persist_),
      appends_since_sync_(other.appends_since_sync_),
      appended_(other.appended_),
      compactions_(other.compactions_),
      marker_dirty_(other.marker_dirty_) {
  other.fd_ = -1;
}

SpillQueue::~SpillQueue() {
  try {
    close();
  } catch (...) {
    // Destructor: swallow; close() is the throwing path for callers who care.
  }
}

SpillQueue SpillQueue::open(const std::string& dir, Options options,
                            RecoverInfo& info) {
  std::filesystem::create_directories(dir);
  const std::string path = log_path(dir);

  // Load the ack marker first: the scan filters dead records against it.
  std::uint64_t acked = 0;
  std::uint64_t next_seq = 1;
  {
    std::vector<std::uint8_t> m;
    if (store::read_file(marker_path(dir), m) &&
        m.size() == kSpillMarkerSize &&
        telemetry::get_u32(m.data()) == kSpillAckMagic &&
        telemetry::get_u16(m.data() + 4) == kSpillVersion &&
        telemetry::get_u32(m.data() + kMarkerCrcCoverage) ==
            telemetry::crc32(m.data(), kMarkerCrcCoverage)) {
      acked = telemetry::get_u64(m.data() + 8);
      next_seq = telemetry::get_u64(m.data() + 16);
      info.marker_found = true;
    }
  }

  std::vector<std::uint8_t> bytes;
  const bool existed = store::read_file(path, bytes);
  std::map<std::uint64_t, Record> index;
  std::uint64_t valid_bytes = kSpillHeaderSize;
  bool valid_header = false;
  std::uint64_t max_seq = 0;

  if (existed && bytes.size() >= kSpillHeaderSize &&
      telemetry::get_u32(bytes.data()) == kSpillMagic &&
      telemetry::get_u16(bytes.data() + 4) == kSpillVersion) {
    valid_header = true;
    std::size_t pos = kSpillHeaderSize;
    // Forward scan, segment-style: stop at the first torn or corrupt record
    // and everything before it is trustworthy.
    while (pos + kSpillRecordHeaderSize <= bytes.size()) {
      const std::uint8_t* head = bytes.data() + pos;
      if (telemetry::get_u32(head + kRecordCrcCoverage) !=
          telemetry::crc32(head, kRecordCrcCoverage)) {
        break;
      }
      const std::uint64_t seq = telemetry::get_u64(head);
      const std::uint32_t len = telemetry::get_u32(head + 8);
      const std::uint32_t frames = telemetry::get_u32(head + 12);
      if (len > net::kMaxBatchPayload + net::kBatchHeaderSize) break;
      const std::size_t record_end = pos + kSpillRecordHeaderSize + len + 4;
      if (record_end > bytes.size()) break;  // torn payload
      const std::uint8_t* payload = head + kSpillRecordHeaderSize;
      if (telemetry::get_u32(payload + len) != telemetry::crc32(payload, len)) {
        break;
      }
      max_seq = std::max(max_seq, seq);
      if (seq > acked) {
        index[seq] = Record{pos + kSpillRecordHeaderSize, len, frames};
      }
      pos = record_end;
    }
    valid_bytes = pos;
    info.tail_truncated = valid_bytes < bytes.size();
  }

  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) throw_errno("SpillQueue: open", path);

  if (!valid_header) {
    // Fresh (or unrecognizable) log: start it over with a clean header,
    // synced immediately so recovery never sees a header-less file.
    if (::ftruncate(fd, 0) != 0) {
      ::close(fd);
      throw_errno("SpillQueue: truncate", path);
    }
    std::vector<std::uint8_t> header;
    telemetry::put_u32(header, kSpillMagic);
    telemetry::put_u16(header, kSpillVersion);
    telemetry::put_u16(header, 0);
    try {
      write_all(fd, header.data(), header.size(), path);
    } catch (...) {
      ::close(fd);
      throw;
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      throw_errno("SpillQueue: fsync", path);
    }
    valid_bytes = kSpillHeaderSize;
    info.tail_truncated = existed && !bytes.empty();
  } else if (info.tail_truncated) {
    if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
      ::close(fd);
      throw_errno("SpillQueue: truncate torn tail", path);
    }
  }

  SpillQueue queue(dir, options, fd);
  queue.log_bytes_ = valid_bytes;
  queue.index_ = std::move(index);
  queue.acked_seq_ = acked;
  queue.next_seq_ = std::max(next_seq, max_seq + 1);

  info.acked_seq = queue.acked_seq_;
  info.next_seq = queue.next_seq_;
  info.unacked_seqs.reserve(queue.index_.size());
  for (const auto& [seq, rec] : queue.index_) info.unacked_seqs.push_back(seq);
  metrics_of().depth.set(static_cast<double>(queue.index_.size()));
  return queue;
}

void SpillQueue::append(std::uint64_t seq, std::uint32_t frame_count,
                        const std::vector<std::uint8_t>& batch_bytes) {
  if (fd_ < 0) throw std::runtime_error{"SpillQueue: append after close"};
  std::vector<std::uint8_t> record;
  record.reserve(kSpillRecordHeaderSize + batch_bytes.size() + 4);
  telemetry::put_u64(record, seq);
  telemetry::put_u32(record, static_cast<std::uint32_t>(batch_bytes.size()));
  telemetry::put_u32(record, frame_count);
  telemetry::put_u32(record, telemetry::crc32(record.data(),
                                              kRecordCrcCoverage));
  record.insert(record.end(), batch_bytes.begin(), batch_bytes.end());
  telemetry::put_u32(record,
                     telemetry::crc32(batch_bytes.data(), batch_bytes.size()));

  // One write() per record so a crash tears at most the final record.
  const std::string path = log_path(dir_);
  if (::lseek(fd_, static_cast<off_t>(log_bytes_), SEEK_SET) < 0) {
    throw_errno("SpillQueue: seek", path);
  }
  write_all(fd_, record.data(), record.size(), path);

  index_[seq] = Record{log_bytes_ + kSpillRecordHeaderSize,
                       static_cast<std::uint32_t>(batch_bytes.size()),
                       frame_count};
  log_bytes_ += record.size();
  if (seq >= next_seq_) {
    next_seq_ = seq + 1;
    marker_dirty_ = true;
  }
  appended_ += 1;
  metrics_of().appends.inc();
  metrics_of().bytes.add(record.size());
  metrics_of().depth.set(static_cast<double>(index_.size()));

  appends_since_sync_ += 1;
  if (options_.fsync_every_batches > 0 &&
      appends_since_sync_ >= options_.fsync_every_batches) {
    if (::fsync(fd_) != 0) throw_errno("SpillQueue: fsync", path);
    appends_since_sync_ = 0;
  }
}

bool SpillQueue::read(std::uint64_t seq, std::vector<std::uint8_t>& out) const {
  const auto it = index_.find(seq);
  if (it == index_.end() || fd_ < 0) return false;
  out.resize(it->second.length);
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n =
        ::pread(fd_, out.data() + got, out.size() - got,
                static_cast<off_t>(it->second.offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // truncated underneath us
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint32_t SpillQueue::frame_count_of(std::uint64_t seq) const {
  const auto it = index_.find(seq);
  return it == index_.end() ? 0 : it->second.frames;
}

void SpillQueue::ack(std::uint64_t acked_seq) {
  if (acked_seq <= acked_seq_) return;
  acked_seq_ = acked_seq;
  marker_dirty_ = true;
  index_.erase(index_.begin(), index_.upper_bound(acked_seq));
  metrics_of().depth.set(static_cast<double>(index_.size()));
  acks_since_persist_ += 1;
  if (options_.persist_marker_every > 0 &&
      acks_since_persist_ >= options_.persist_marker_every) {
    persist_marker();
  }
  maybe_compact();
}

void SpillQueue::note_next_seq(std::uint64_t next_seq) {
  if (next_seq > next_seq_) {
    next_seq_ = next_seq;
    marker_dirty_ = true;
  }
}

void SpillQueue::persist_marker() {
  if (!marker_dirty_) return;
  std::vector<std::uint8_t> m;
  m.reserve(kSpillMarkerSize);
  telemetry::put_u32(m, kSpillAckMagic);
  telemetry::put_u16(m, kSpillVersion);
  telemetry::put_u16(m, 0);
  telemetry::put_u64(m, acked_seq_);
  telemetry::put_u64(m, next_seq_);
  telemetry::put_u32(m, telemetry::crc32(m.data(), kMarkerCrcCoverage));
  store::replace_file_sync(marker_path(dir_), m);
  store::sync_dir(dir_);
  marker_dirty_ = false;
  acks_since_persist_ = 0;
}

void SpillQueue::maybe_compact() {
  if (!index_.empty() || fd_ < 0) return;
  if (log_bytes_ < kSpillHeaderSize + options_.compact_min_bytes) return;
  // The marker must be durable before the records it supersedes vanish.
  persist_marker();
  const std::string path = log_path(dir_);
  if (::ftruncate(fd_, static_cast<off_t>(kSpillHeaderSize)) != 0) {
    throw_errno("SpillQueue: compact truncate", path);
  }
  if (::fsync(fd_) != 0) throw_errno("SpillQueue: compact fsync", path);
  log_bytes_ = kSpillHeaderSize;
  appends_since_sync_ = 0;
  compactions_ += 1;
  metrics_of().compactions.inc();
}

void SpillQueue::sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    throw_errno("SpillQueue: fsync", log_path(dir_));
  }
  appends_since_sync_ = 0;
  persist_marker();
}

void SpillQueue::close() {
  if (fd_ < 0) return;
  sync();
  ::close(fd_);
  fd_ = -1;
}

}  // namespace tsvpt::ingest
