// Crash-safe on-disk spill queue for the publisher's unacked batches: a
// write-ahead log built on the store segment discipline (append-only
// records, batched fsync, forward-scan torn-tail recovery) plus a tiny
// atomically-replaced ack marker.
//
// Layout inside the spill directory:
//
//   spill.log    [magic u32 "TSVQ"] [version u16] [reserved u16]  then
//                records: [seq u64] [payload_len u32] [frame_count u32]
//                         [header_crc32 u32 over the first 16]
//                         [payload_len bytes: one encoded TSVB batch]
//                         [payload_crc32 u32]
//   spill.ack    [magic u32 "TSVM"] [version u16] [reserved u16]
//                [acked_seq u64] [next_seq u64] [crc32 u32]
//                (rewritten atomically via replace_file_sync)
//
// Every sealed batch is appended before its first send attempt, so the log
// is a superset of whatever the server received.  SIGKILL cannot lose
// page-cache writes (fsync only matters for power loss), so a killed
// publisher recovers every record it appended; a torn final record (torn
// header, short payload, or payload CRC mismatch) is truncated away and the
// batch it held was by definition never fully sealed on disk — the caller
// treats it as never enqueued.
//
// The marker is persisted lazily (every `persist_marker_every` acks and on
// sync/close), so after a crash it may understate acked_seq.  That is safe:
// resume replays some already-acked batches and the server's dedup drops
// them — at-least-once on the wire, exactly-once in the FleetView.  The
// marker's next_seq is a high-water mark for sequence allocation: a resumed
// publisher must never reuse a seq the server may already have acked, even
// if the corresponding log records were compacted away.
//
// Compaction: once every record in the log is acked, the log is truncated
// back to its header (the marker, already persisted, carries the state).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tsvpt::ingest {

inline constexpr std::uint32_t kSpillMagic = 0x51565354u;   // "TSVQ" LE
inline constexpr std::uint32_t kSpillAckMagic = 0x4D565354u;  // "TSVM" LE
inline constexpr std::uint16_t kSpillVersion = 1;
inline constexpr std::size_t kSpillHeaderSize = 8;
inline constexpr std::size_t kSpillRecordHeaderSize = 20;
inline constexpr std::size_t kSpillMarkerSize = 28;

class SpillQueue {
 public:
  struct Options {
    /// fsync the log every N appends; 0 = only on sync()/close().  SIGKILL
    /// survival does not need fsync at all (page cache persists); this is
    /// the power-loss knob, same as the historian's.
    std::size_t fsync_every_batches = 8;
    /// Rewrite the ack marker every N ack advances (plus on sync/close).
    std::uint64_t persist_marker_every = 64;
    /// Compact (truncate the log to its header) once everything is acked
    /// and the log holds at least this many bytes of dead records.
    std::uint64_t compact_min_bytes = 1u << 20;
  };

  /// What open() found on disk.
  struct RecoverInfo {
    /// Unacked batch records recovered, in seq order.
    std::vector<std::uint64_t> unacked_seqs;
    std::uint64_t acked_seq = 0;
    /// Next seq a resumed publisher may allocate (always past every seq the
    /// log or marker has ever seen).
    std::uint64_t next_seq = 1;
    bool tail_truncated = false;
    bool marker_found = false;
  };

  /// Open (creating if absent) the spill queue in `dir`.  Scans the log,
  /// truncates any torn tail, loads the ack marker, and reports the live
  /// window through `info`.  Throws std::runtime_error on I/O failure.
  static SpillQueue open(const std::string& dir, Options options,
                         RecoverInfo& info);

  SpillQueue(SpillQueue&& other) noexcept;
  SpillQueue& operator=(SpillQueue&&) = delete;
  SpillQueue(const SpillQueue&) = delete;
  SpillQueue& operator=(const SpillQueue&) = delete;
  ~SpillQueue();

  /// Append one sealed batch (`seq` strictly increasing).  Throws on I/O
  /// failure.  The batch becomes recoverable as soon as write() returns.
  void append(std::uint64_t seq, std::uint32_t frame_count,
              const std::vector<std::uint8_t>& batch_bytes);

  /// Read back the payload of record `seq` (false if unknown or compacted).
  [[nodiscard]] bool read(std::uint64_t seq,
                          std::vector<std::uint8_t>& out) const;

  [[nodiscard]] std::uint32_t frame_count_of(std::uint64_t seq) const;

  /// Advance the cumulative ack; persists the marker lazily and compacts
  /// the log when everything in it is dead.
  void ack(std::uint64_t acked_seq);

  /// Record a sequence-allocation high-water mark (persisted with the
  /// marker) so a resumed publisher never reuses a live seq.
  void note_next_seq(std::uint64_t next_seq);

  /// fsync the log and persist the marker now.
  void sync();

  /// sync() and close the log fd; further appends throw.  Idempotent.
  void close();

  [[nodiscard]] std::uint64_t acked_seq() const { return acked_seq_; }
  /// Batches appended but not yet acked (the durable window depth).
  [[nodiscard]] std::size_t depth() const { return index_.size(); }
  [[nodiscard]] std::uint64_t log_bytes() const { return log_bytes_; }
  [[nodiscard]] std::uint64_t appended() const { return appended_; }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  struct Record {
    std::uint64_t offset = 0;  // file offset of the payload
    std::uint32_t length = 0;  // payload bytes
    std::uint32_t frames = 0;
  };

  SpillQueue(std::string dir, Options options, int fd);

  void persist_marker();
  void maybe_compact();

  std::string dir_;
  Options options_;
  int fd_ = -1;
  std::uint64_t log_bytes_ = 0;
  /// Live (unacked) records still addressable in the log.
  std::map<std::uint64_t, Record> index_;
  std::uint64_t acked_seq_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t acks_since_persist_ = 0;
  std::size_t appends_since_sync_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t compactions_ = 0;
  bool marker_dirty_ = false;
};

}  // namespace tsvpt::ingest
