#include "ingest/fleet_view.hpp"

#include <algorithm>

#include "obs/stages.hpp"
#include "telemetry/codec_util.hpp"

namespace tsvpt::ingest {

void FleetView::add_shard(const telemetry::Aggregator::Summary& summary,
                          const std::vector<telemetry::Alert>& alert_log) {
  finalized_ = false;
  frames_ += summary.frames;
  decode_errors_ += summary.decode_errors;
  alerts_ += summary.alerts;
  substituted_readings_ += summary.substituted_readings;
  for (const auto& [kind, count] : summary.alerts_by_kind) {
    alerts_by_kind_[kind] += count;
  }
  for (const auto& [stack_id, stats] : summary.stacks) {
    StackView& view = stacks_[stack_id];
    view.frames += stats.frames;
    view.alerts += stats.alerts;
    view.next_sequence = std::max(view.next_sequence, stats.next_sequence);
    if (stats.last_sim_time.value() > view.last_sim_time.value()) {
      view.last_sim_time = stats.last_sim_time;
    }
    for (const auto& [die, die_stats] : stats.dies) {
      auto [it, inserted] = view.dies.try_emplace(die, die_stats);
      if (!inserted) {
        // Only reachable when a stack's frames were split across shards
        // (failover); the Welford merge is exact in counts/moments but not
        // guaranteed bit-identical to sequential folding.
        it->second.sensed_c.merge(die_stats.sensed_c);
        it->second.error_c.merge(die_stats.error_c);
        it->second.degraded_error_c.merge(die_stats.degraded_error_c);
      }
    }
  }
  alert_log_.insert(alert_log_.end(), alert_log.begin(), alert_log.end());
  health_log_.insert(health_log_.end(), summary.health_transitions.begin(),
                     summary.health_transitions.end());
  for (const double v : summary.latency.values()) latency_.add(v);
  latency_aligned_ += summary.latency_aligned;
}

void FleetView::finalize() {
  if (finalized_) return;
  // Stable sort: cross-stack interleaving (collector-thread timing) is
  // erased, per-stack emission order (deterministic) is preserved.
  std::stable_sort(alert_log_.begin(), alert_log_.end(),
                   [](const telemetry::Alert& a, const telemetry::Alert& b) {
                     return a.stack_id < b.stack_id;
                   });
  std::stable_sort(
      health_log_.begin(), health_log_.end(),
      [](const telemetry::HealthEvent& a, const telemetry::HealthEvent& b) {
        return a.stack_id < b.stack_id;
      });
  missed_ = 0;
  for (auto& [stack_id, view] : stacks_) {
    view.missed = view.next_sequence > view.frames
                      ? view.next_sequence - view.frames
                      : 0;
    missed_ += view.missed;
  }
  finalized_ = true;
}

std::vector<std::uint8_t> FleetView::canonical_bytes() const {
  using telemetry::put_f64;
  using telemetry::put_u32;
  using telemetry::put_u64;
  using telemetry::put_u8;

  std::vector<std::uint8_t> out;
  put_u64(out, frames_);
  put_u64(out, decode_errors_);
  put_u64(out, alerts_);
  put_u64(out, missed_);
  put_u64(out, substituted_readings_);

  put_u32(out, static_cast<std::uint32_t>(alerts_by_kind_.size()));
  for (const auto& [kind, count] : alerts_by_kind_) {
    put_u8(out, static_cast<std::uint8_t>(kind));
    put_u64(out, count);
  }

  const auto put_stats = [&out](const RunningStats& s) {
    put_u64(out, s.count());
    put_f64(out, s.count() > 0 ? s.mean() : 0.0);
    put_f64(out, s.count() > 0 ? s.variance() : 0.0);
    put_f64(out, s.count() > 0 ? s.min() : 0.0);
    put_f64(out, s.count() > 0 ? s.max() : 0.0);
  };

  put_u32(out, static_cast<std::uint32_t>(stacks_.size()));
  for (const auto& [stack_id, view] : stacks_) {
    put_u32(out, stack_id);
    put_u64(out, view.frames);
    put_u64(out, view.missed);
    put_u64(out, view.alerts);
    put_u64(out, view.next_sequence);
    put_f64(out, view.last_sim_time.value());
    put_u32(out, static_cast<std::uint32_t>(view.dies.size()));
    for (const auto& [die, die_stats] : view.dies) {
      put_u32(out, static_cast<std::uint32_t>(die));
      put_stats(die_stats.sensed_c);
      put_stats(die_stats.error_c);
      put_stats(die_stats.degraded_error_c);
    }
  }

  put_u32(out, static_cast<std::uint32_t>(alert_log_.size()));
  for (const auto& alert : alert_log_) {
    put_u8(out, static_cast<std::uint8_t>(alert.kind));
    put_u32(out, alert.stack_id);
    put_u32(out, static_cast<std::uint32_t>(alert.die));
    put_u32(out, static_cast<std::uint32_t>(alert.site_index));
    put_f64(out, alert.value);
    put_f64(out, alert.sim_time.value());
  }

  put_u32(out, static_cast<std::uint32_t>(health_log_.size()));
  for (const auto& event : health_log_) {
    put_u32(out, event.stack_id);
    put_u32(out, static_cast<std::uint32_t>(event.die));
    put_u32(out, static_cast<std::uint32_t>(event.site_index));
    put_u8(out, static_cast<std::uint8_t>(event.from));
    put_u8(out, static_cast<std::uint8_t>(event.to));
    put_f64(out, event.sim_time.value());
  }
  return out;
}

std::uint32_t FleetView::digest() const {
  const std::vector<std::uint8_t> bytes = canonical_bytes();
  return telemetry::crc32(bytes.data(), bytes.size());
}

obs::SloTracker FleetView::default_slo_tracker() {
  // 100 ms per stage at 99% is generous for a healthy pipeline (loopback
  // legs run in microseconds) — burning this budget means a stage is
  // genuinely backed up, not just jittering.
  obs::SloTracker tracker;
  for (const char* stage : obs::all_stages()) {
    tracker.add(obs::SloTracker::stage_latency_slo(stage, 0.1, 0.99));
  }
  return tracker;
}

std::vector<obs::SloStatus> FleetView::slo_status() const {
  return slo_.evaluate(obs::Registry::instance().snapshot());
}

}  // namespace tsvpt::ingest
