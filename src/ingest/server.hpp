// Multi-shard telemetry ingest service.  One poll()-driven IO thread
// accepts publisher connections, feeds each connection's bytes through an
// incremental BatchParser, and routes every inner wire frame — by a stable
// hash of its stack id, peeked without a full decode — into one of N shard
// rings.  Each shard is a full Aggregator pipeline (the same collector the
// single-process fleet path uses) draining its ring on its own thread, so
// the scale-out layer reuses the alerting/stats machinery verbatim.
//
// Delivery protocol (server half): every validated TSVB v2 batch advances a
// per-publisher cumulative position keyed on the batch header's publisher
// id — a peer table that outlives individual connections, so a publisher
// that reconnects (or is killed and restarted against its spill queue) and
// retransmits its unacked window has the already-ingested copies vetoed
// before any frame is emitted (dedup makes at-least-once delivery look
// exactly-once downstream).  After each consumed chunk the server pushes a
// TSVA cumulative ack back on the same connection; a framing violation gets
// a best-effort nack before the close.  Zero-frame heartbeat batches
// refresh liveness without touching sequencing, and a FIN batch naming the
// publisher's highest seq turns into a drained ack once the cumulative
// position covers it — the graceful-drain handshake.
//
// Partitioning invariant: shard_of() depends only on (stack_id,
// shard_count), so every frame of a stack lands on the same shard and that
// shard's per-stack statistics are bit-identical to a single-process run —
// the property FleetView's digest comparison checks end to end.  fail_shard
// reroutes a failed shard's stacks to the next live shard (linear probe);
// the merge stays exact in counts because sequence accounting travels with
// the frames (StackStats::next_sequence).
//
// Backpressure at this stage is the shard ring's drop-oldest policy: a slow
// shard sheds its own oldest frames without stalling the IO thread or the
// other shards, and the loss is visible as sequence gaps.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ingest/fleet_view.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "ptsim/units.hpp"
#include "store/store.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/ring.hpp"

namespace tsvpt::ingest {

class IngestServer {
 public:
  struct Config {
    std::string bind_host = "127.0.0.1";
    /// 0 = ephemeral; read the bound port back with port().
    std::uint16_t port = 0;
    std::size_t shard_count = 1;
    /// Capacity of each shard's drop-oldest frame ring.
    std::size_t shard_ring_capacity = 4096;
    /// Reap a connection that has been silent this long (publishers send
    /// heartbeats to stay alive when idle).  0 disables.
    Second idle_conn_timeout{0.0};
    /// Template for every shard's Aggregator (alert thresholds etc.).  Each
    /// shard records its alerts internally for the cross-shard merge.
    telemetry::Aggregator::Config aggregator;
    /// Non-empty: persist every decodable frame to this historian directory
    /// (the server-side --store sink).
    std::string store_dir;
    /// Serve `GET /metrics` (Prometheus text) and `GET /healthz` (JSON) on
    /// a side port from the same poll loop.  Scrapes share the IO thread,
    /// so a slow scraper can add at most one response write per poll round.
    bool http_enabled = false;
    /// 0 = ephemeral; read back with http_port().
    std::uint16_t http_port = 0;
  };

  explicit IngestServer(Config config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Bind the listener (throws on failure), start the shard aggregators and
  /// the IO thread.  port() is valid once this returns.
  void start();

  /// Stop accepting, close connections, drain the shard rings, close the
  /// store.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    // mo: acquire pairs with the stop()/start() release stores so a caller
    // seeing "stopped" also sees the drained shard summaries.
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Bound scrape port (0 when http_enabled is false).
  [[nodiscard]] std::uint16_t http_port() const { return http_port_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Stable stack -> shard map (splitmix64 finalizer mod shard_count):
  /// deterministic across runs, processes and platforms.
  [[nodiscard]] static std::size_t shard_of(std::uint32_t stack_id,
                                            std::size_t shard_count);

  /// Mark a shard failed: frames hashing to it reroute to the next live
  /// shard (linear probe).  Its aggregator keeps whatever it already
  /// ingested — the cross-shard merge folds both halves of a split stack.
  void fail_shard(std::size_t shard);

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t disconnects = 0;
    /// Peers that died mid-batch (discarded tail; not a protocol error).
    std::uint64_t partial_disconnects = 0;
    /// Connections dropped for framing violations (bad magic/CRC/bounds).
    std::uint64_t protocol_errors = 0;
    std::uint64_t batches = 0;
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    /// Frames shed by shard rings (slow consumer, drop-oldest).
    std::uint64_t ring_drops = 0;
    /// Inner frames too short to even peek a stack id from.
    std::uint64_t unroutable_frames = 0;
    /// Store-sink decodes that failed (frame still counted + routed).
    std::uint64_t store_decode_errors = 0;
    /// Delivery-protocol bookkeeping.
    std::uint64_t acks_sent = 0;
    std::uint64_t nacks_sent = 0;
    /// Retransmitted batches vetoed by per-publisher dedup (and the frames
    /// inside them, which were never emitted downstream).
    std::uint64_t duplicate_batches = 0;
    std::uint64_t duplicate_frames = 0;
    std::uint64_t heartbeats = 0;
    /// Sequence numbers skipped between accepted batches (publisher-side
    /// deliberate loss, e.g. drop-oldest overflow or a truncated send).
    std::uint64_t batch_gaps = 0;
    /// FIN handshakes completed (drained ack emitted).
    std::uint64_t fin_drains = 0;
    /// Connections closed by the idle timeout.
    std::uint64_t reaped_connections = 0;
    /// HTTP requests answered on the scrape port (any path or status).
    std::uint64_t http_requests = 0;
    /// Distinct publisher ids ever seen.
    std::uint64_t publishers = 0;
    std::size_t open_connections = 0;
    std::vector<std::uint64_t> frames_per_shard;
  };
  /// Safe from any thread while the server runs (relaxed counters).
  [[nodiscard]] Stats stats() const;

  /// Seconds since the server last accepted bytes or a connection (or since
  /// start).  What the CLI's --idle-exit-s watches.
  [[nodiscard]] Second idle_for() const;

  /// True once any publisher has connected.
  [[nodiscard]] bool ever_connected() const {
    return connections_total_.load(std::memory_order_relaxed) > 0;
  }

  /// Merge every shard's summary + alert log into one finalized FleetView.
  /// Call after stop().
  [[nodiscard]] FleetView fleet_view() const;

  /// Per-shard summaries (valid after stop()), for reporting.
  [[nodiscard]] const telemetry::Aggregator& shard_aggregator(
      std::size_t shard) const {
    return *shards_[shard]->aggregator;
  }

 private:
  struct Shard {
    std::unique_ptr<telemetry::FrameRing> ring;
    std::unique_ptr<telemetry::Aggregator> aggregator;
    /// Filled by the shard's collector thread via the alert callback;
    /// read after stop().
    std::vector<telemetry::Alert> alerts;
  };

  struct Connection {
    net::Socket socket;
    net::BatchParser parser;
    /// Publisher id from the last sequenced/control batch (0 = none yet).
    std::uint64_t publisher_id = 0;
    /// Ack bytes not yet accepted by the kernel (flushed opportunistically,
    /// then via POLLOUT).
    std::vector<std::uint8_t> outbox;
    /// An ack is owed after the current consume chunk.
    bool ack_pending = false;
    std::chrono::steady_clock::time_point last_rx;
    /// Echo material for ack v2: the send stamp of the newest timestamped
    /// batch on this connection, and the server clock when it was parsed.
    std::uint64_t echo_send_ns = 0;
    std::uint64_t echo_rx_ns = 0;
  };

  /// Per-publisher delivery state; outlives connections (IO thread only).
  struct Peer {
    std::uint64_t acked = 0;
    std::uint64_t fin_seq = 0;
    bool has_fin = false;
    bool drain_counted = false;
  };

  void run();
  void route_frame(std::vector<std::uint8_t>&& wire);
  /// Body + status for one scrape-port request (IO thread: peers_ and shard
  /// rings are safe to read here).
  [[nodiscard]] std::string http_respond(const std::string& method,
                                         const std::string& path);
  [[nodiscard]] std::string healthz_json() const;
  [[nodiscard]] std::size_t live_shard_for(std::uint32_t stack_id) const;
  void touch_activity();
  /// BatchParser veto seam: dedup/heartbeat/FIN handling.  True = emit the
  /// batch's frames downstream.
  [[nodiscard]] bool handle_batch_info(Connection& conn,
                                       const net::BatchInfo& info);
  /// Append the owed cumulative ack for conn's publisher to its outbox.
  void queue_ack(Connection& conn);
  /// Push outbox bytes to the kernel; false when the connection died.
  [[nodiscard]] bool flush_outbox(Connection& conn);

  Config config_;
  net::Socket listener_;
  std::uint16_t port_ = 0;
  net::Socket http_listener_;
  std::uint16_t http_port_ = 0;
  /// Current batch's clock-offset context (IO thread only): set by
  /// handle_batch_info, consumed by route_frame for the ring trailer.
  std::int64_t cur_offset_ns_ = 0;
  bool cur_offset_valid_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<store::StoreWriter> store_;
  std::thread io_thread_;
  std::map<std::uint64_t, Peer> peers_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  /// Bit i set = shard i failed (bounds shard_count to 64).
  std::atomic<std::uint64_t> failed_mask_{0};
  std::atomic<std::int64_t> last_activity_ns_{0};

  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> partial_disconnects_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> batches_total_{0};
  std::atomic<std::uint64_t> frames_total_{0};
  std::atomic<std::uint64_t> bytes_total_{0};
  std::atomic<std::uint64_t> ring_drops_{0};
  std::atomic<std::uint64_t> unroutable_frames_{0};
  std::atomic<std::uint64_t> store_decode_errors_{0};
  std::atomic<std::uint64_t> acks_sent_{0};
  std::atomic<std::uint64_t> nacks_sent_{0};
  std::atomic<std::uint64_t> duplicate_batches_{0};
  std::atomic<std::uint64_t> duplicate_frames_{0};
  std::atomic<std::uint64_t> heartbeats_{0};
  std::atomic<std::uint64_t> batch_gaps_{0};
  std::atomic<std::uint64_t> fin_drains_{0};
  std::atomic<std::uint64_t> reaped_connections_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> publishers_{0};
  std::atomic<std::size_t> open_connections_{0};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> frames_per_shard_;
};

}  // namespace tsvpt::ingest
