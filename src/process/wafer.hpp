// Wafer-level systematic variation.
//
// Die-to-die variation is not white across a wafer: implant dose and etch
// gradients give every wafer a smooth systematic fingerprint — classically
// a radial "bowl" plus a linear tilt — with a much smaller random per-die
// residual on top.  3D integrators care because stacking partners are
// picked from wafer maps; the A7 bench shows the PT sensor reconstructing
// this map at power-on, for free, from already-packaged parts.
#pragma once

#include <cstdint>
#include <vector>

#include "device/mosfet.hpp"
#include "device/tech.hpp"
#include "process/geometry.hpp"
#include "ptsim/rng.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::process {

struct WaferParams {
  /// Usable wafer radius (300 mm wafer with edge exclusion).
  Meter radius{145e-3};
  /// Die step on the reticle grid.
  Meter die_pitch_x{5e-3};
  Meter die_pitch_y{5e-3};
  /// Radial bowl amplitude: dVt at the wafer edge relative to the center.
  Volt bowl_nmos{9e-3};
  Volt bowl_pmos{7e-3};
  /// Linear tilt amplitude across the full diameter (direction randomized
  /// per wafer).
  Volt tilt_nmos{5e-3};
  Volt tilt_pmos{4e-3};
  /// Random per-die residual sigma (the part that is truly die-to-die).
  Volt sigma_residual{5e-3};
  /// Wafer-to-wafer jitter of bowl/tilt amplitudes (relative).
  double lot_spread = 0.2;
};

/// One wafer's realized systematic map plus per-die residuals.
class WaferModel {
 public:
  WaferModel(WaferParams params, std::uint64_t wafer_seed);

  [[nodiscard]] const WaferParams& params() const { return params_; }

  /// Die centers on the reticle grid that fit inside the usable radius,
  /// coordinates relative to the wafer center.
  [[nodiscard]] const std::vector<Point>& die_sites() const { return sites_; }
  [[nodiscard]] std::size_t die_count() const { return sites_.size(); }

  /// Systematic component only (bowl + tilt) at an arbitrary position.
  [[nodiscard]] device::VtDelta systematic_at(Point position) const;

  /// Full die-to-die offset of one die site: systematic + that die's
  /// residual draw (deterministic per wafer seed).
  [[nodiscard]] device::VtDelta die_offset(std::size_t site_index) const;

  /// Distance of a site from the wafer center.
  [[nodiscard]] double site_radius(std::size_t site_index) const;

 private:
  WaferParams params_;
  std::vector<Point> sites_;
  std::vector<device::VtDelta> residuals_;
  double bowl_scale_ = 1.0;
  double tilt_scale_ = 1.0;
  double tilt_direction_ = 0.0;  // radians
};

}  // namespace tsvpt::process
