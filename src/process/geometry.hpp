// Planar geometry shared by the process-variation and thermal modules.
#pragma once

#include <cmath>

namespace tsvpt::process {

/// A point on a die, in meters from the die's lower-left corner.
struct Point {
  double x = 0.0;
  double y = 0.0;

  [[nodiscard]] double distance_to(Point other) const {
    const double dx = x - other.x;
    const double dy = y - other.y;
    return std::sqrt(dx * dx + dy * dy);
  }

  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

}  // namespace tsvpt::process
