#include "process/tsv_stress.hpp"

#include <algorithm>
#include <stdexcept>

namespace tsvpt::process {

TsvStressField::TsvStressField(std::vector<Point> tsv_centers,
                               TsvStressParams params,
                               double die_thinning_factor)
    : centers_(std::move(tsv_centers)), params_(params),
      thinning_factor_(die_thinning_factor) {
  if (params_.via_radius.value() <= 0.0) {
    throw std::invalid_argument{"TsvStressField: via radius <= 0"};
  }
  if (thinning_factor_ < 0.0) {
    throw std::invalid_argument{"TsvStressField: thinning factor < 0"};
  }
}

device::VtDelta TsvStressField::shift_at(Point p) const {
  double n_shift = 0.0;
  double p_shift = 0.0;
  const double r_via = params_.via_radius.value();
  const double cutoff = params_.cutoff_radius.value();
  for (const Point& c : centers_) {
    const double r = std::max(p.distance_to(c), r_via);
    if (r > cutoff) continue;
    const double decay = (r_via / r) * (r_via / r);
    n_shift += params_.nmos_edge_shift.value() * decay;
    p_shift += params_.pmos_edge_shift.value() * decay;
  }
  return {Volt{n_shift * thinning_factor_}, Volt{p_shift * thinning_factor_}};
}

std::vector<Point> TsvStressField::grid_layout(Meter die_width,
                                               Meter die_height,
                                               std::size_t columns,
                                               std::size_t rows) {
  if (columns == 0 || rows == 0) {
    throw std::invalid_argument{"grid_layout: zero rows/columns"};
  }
  std::vector<Point> centers;
  centers.reserve(columns * rows);
  for (std::size_t i = 0; i < columns; ++i) {
    for (std::size_t j = 0; j < rows; ++j) {
      // Cell-centered placement keeps the grid symmetric inside the die.
      centers.push_back(Point{
          die_width.value() * (static_cast<double>(i) + 0.5) /
              static_cast<double>(columns),
          die_height.value() * (static_cast<double>(j) + 0.5) /
              static_cast<double>(rows)});
    }
  }
  return centers;
}

}  // namespace tsvpt::process
