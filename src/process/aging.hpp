// Bias-temperature-instability (BTI) aging: threshold voltages drift upward
// over a device's lifetime, faster when hot and biased.  NBTI (PMOS) is the
// dominant mechanism in this node class, PBTI (NMOS) a weaker sibling.
//
// Model: the standard log-like power-law fit used in reliability practice,
//
//   dVt(t) = A * exp(-Ea/kT_stress) * duty^beta * (t / t0)^n,
//
// with n ~ 0.16-0.2 and an activation energy Ea ~ 0.1 eV over the
// operating range.  Magnitudes are calibrated to published 65 nm data:
// ~20-30 mV of NBTI shift after 10 years at 105 degC full duty.
//
// Why it matters here: a sensor self-calibrated at t=0 slowly goes stale as
// the die (and the sensor's own oscillators) age — the A5 bench quantifies
// the drift-induced temperature error and the recalibration interval that
// contains it.  Because the paper's calibration is free (no tester), the
// right policy is simply "recalibrate often"; that argument is the bench's
// punchline.
#pragma once

#include "device/mosfet.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::process {

struct AgingParams {
  /// Prefactor of the PMOS (NBTI) shift at infinite temperature, volts.
  /// Calibrated for ~21 mV after 10 years at 85 degC, full duty.
  double nbti_prefactor = 0.019;
  /// Prefactor of the NMOS (PBTI) shift — roughly 40 % of NBTI here.
  double pbti_prefactor = 0.008;
  /// Activation energy, eV.
  double activation_ev = 0.10;
  /// Time exponent n.
  double time_exponent = 0.17;
  /// Reference time t0 (seconds); 10-year shifts quoted against this.
  double reference_seconds = 1.0;
  /// Duty-cycle exponent beta (fraction of lifetime spent stressed).
  double duty_exponent = 0.5;
};

/// Stress history summarized as (effective stress temperature, duty cycle).
struct StressCondition {
  Kelvin temperature{358.15};  // 85 degC typical stress
  /// Fraction of time under bias, in [0, 1].
  double duty = 1.0;
};

/// Deterministic BTI shift model.  Returns *positive* |Vt| increases for
/// both device types (BTI always weakens the device).
class AgingModel {
 public:
  AgingModel() = default;
  explicit AgingModel(AgingParams params);

  [[nodiscard]] const AgingParams& params() const { return params_; }

  /// |Vt| shift of one device type after `age` under `stress`.
  [[nodiscard]] Volt shift(device::TransistorKind kind, Second age,
                           StressCondition stress) const;

  /// Both device types at once, as the VtDelta to add to a die's variation.
  [[nodiscard]] device::VtDelta shift(Second age, StressCondition stress)
      const;

  /// Convenience: years -> seconds.
  [[nodiscard]] static Second years(double y) {
    return Second{y * 365.25 * 24.0 * 3600.0};
  }

 private:
  AgingParams params_;
};

}  // namespace tsvpt::process
