// Per-die threshold-voltage variation model: die-to-die shift + spatially
// correlated within-die field + deterministic TSV-stress contribution.
//
// This is the statistical environment the paper's sensor must survive: each
// stacked die lands at a different (ΔVtn, ΔVtp) point, and the sensor's job
// is to *measure* that point and keep reporting accurate temperature anyway.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "device/mosfet.hpp"
#include "device/tech.hpp"
#include "process/spatial_field.hpp"
#include "process/tsv_stress.hpp"
#include "ptsim/rng.hpp"

namespace tsvpt::process {

/// One die's realized variation, evaluated at the model's query points
/// (typically the sensor locations on that die).
struct DieVariation {
  /// Die-to-die component: shifts every device of a type identically.
  device::VtDelta d2d;
  /// Within-die component per query point.
  std::vector<device::VtDelta> wid;
  /// TSV-stress component per query point (deterministic given layout).
  std::vector<device::VtDelta> stress;

  /// Total deviation applying to devices at query point `i`.
  [[nodiscard]] device::VtDelta at(std::size_t i) const {
    return d2d + wid.at(i) + stress.at(i);
  }
  [[nodiscard]] std::size_t point_count() const { return wid.size(); }
};

/// Generates DieVariation realizations for a fixed set of on-die locations.
class VariationModel {
 public:
  VariationModel(const device::Technology& tech, std::vector<Point> points);

  /// Attach a TSV layout whose stress field biases every realization.
  void set_tsv_stress(TsvStressField field);

  /// Scale factors for ablations (1.0 = technology card values).
  void scale_d2d_sigma(double factor) { d2d_scale_ = factor; }
  void scale_wid_sigma(double factor);

  [[nodiscard]] std::size_t point_count() const { return points_.size(); }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// Draw a statistical die.
  [[nodiscard]] DieVariation sample_die(Rng& rng) const;

  /// Deterministic corner die (corner shift as D2D, zero WID, stress kept).
  [[nodiscard]] DieVariation corner_die(device::Corner corner) const;

 private:
  [[nodiscard]] std::vector<device::VtDelta> stress_at_points() const;

  // Stored by value: the model must stay valid when callers construct it
  // from a temporary card (e.g. Technology::tsmc65_like()).
  device::Technology tech_;
  std::vector<Point> points_;
  // Separate, independent fields for the two device types: NMOS and PMOS
  // variation are dominated by their own implant steps and are largely
  // uncorrelated.
  std::optional<SpatialField> wid_nmos_;
  std::optional<SpatialField> wid_pmos_;
  std::optional<TsvStressField> tsv_stress_;
  double d2d_scale_ = 1.0;
};

}  // namespace tsvpt::process
