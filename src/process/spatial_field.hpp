// Spatially correlated Gaussian random field sampled at a fixed set of die
// locations.  Within-die Vt variation is not white: nearby devices match
// better than distant ones.  We use the standard exponential-decay
// correlation model rho(d) = exp(-d / L) and draw correlated samples through
// the Cholesky factor of the covariance matrix.
#pragma once

#include <vector>

#include "calib/matrix.hpp"
#include "process/geometry.hpp"
#include "ptsim/rng.hpp"

namespace tsvpt::process {

class SpatialField {
 public:
  /// `sigma` is the marginal standard deviation at every point;
  /// `correlation_length` is L in rho(d) = exp(-d/L), in meters.
  SpatialField(std::vector<Point> points, double sigma,
               double correlation_length);

  [[nodiscard]] std::size_t point_count() const { return points_.size(); }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] double sigma() const { return sigma_; }

  /// One correlated realization: a vector aligned with `points()`.
  [[nodiscard]] std::vector<double> sample(Rng& rng) const;

  /// Model correlation between two of the field's points.
  [[nodiscard]] double correlation_between(std::size_t i, std::size_t j) const;

 private:
  std::vector<Point> points_;
  double sigma_;
  double correlation_length_;
  calib::Matrix cholesky_;  // lower factor of the covariance
};

}  // namespace tsvpt::process
