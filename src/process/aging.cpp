#include "process/aging.hpp"

#include <cmath>
#include <stdexcept>

namespace tsvpt::process {

AgingModel::AgingModel(AgingParams params) : params_(params) {
  if (params_.time_exponent <= 0.0 || params_.reference_seconds <= 0.0) {
    throw std::invalid_argument{"AgingModel: non-positive time parameters"};
  }
  if (params_.nbti_prefactor < 0.0 || params_.pbti_prefactor < 0.0) {
    throw std::invalid_argument{"AgingModel: negative prefactor"};
  }
}

Volt AgingModel::shift(device::TransistorKind kind, Second age,
                       StressCondition stress) const {
  if (age.value() < 0.0) throw std::invalid_argument{"AgingModel: age < 0"};
  if (stress.duty < 0.0 || stress.duty > 1.0) {
    throw std::invalid_argument{"AgingModel: duty outside [0, 1]"};
  }
  if (age.value() == 0.0 || stress.duty == 0.0) return Volt{0.0};
  const double prefactor = kind == device::TransistorKind::kPmos
                               ? params_.nbti_prefactor
                               : params_.pbti_prefactor;
  const double arrhenius =
      std::exp(-params_.activation_ev /
               (kBoltzmannOverQ * stress.temperature.value()));
  const double duty = std::pow(stress.duty, params_.duty_exponent);
  const double time_term =
      std::pow(age.value() / params_.reference_seconds,
               params_.time_exponent);
  return Volt{prefactor * arrhenius * duty * time_term};
}

device::VtDelta AgingModel::shift(Second age, StressCondition stress) const {
  return {shift(device::TransistorKind::kNmos, age, stress),
          shift(device::TransistorKind::kPmos, age, stress)};
}

}  // namespace tsvpt::process
