// Monte-Carlo experiment driver: deterministic per-trial RNG streams so that
// any single trial can be reproduced in isolation (trial k always sees the
// same randomness regardless of how many trials run or in what order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "ptsim/rng.hpp"

namespace tsvpt::process {

class MonteCarlo {
 public:
  MonteCarlo(std::uint64_t seed, std::size_t trials)
      : seed_(seed), trials_(trials) {}

  [[nodiscard]] std::size_t trials() const { return trials_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Invoke `fn(trial_index, rng)` for every trial with a decorrelated RNG.
  void run(const std::function<void(std::size_t, Rng&)>& fn) const {
    for (std::size_t t = 0; t < trials_; ++t) {
      Rng rng{derive_seed(seed_, t)};
      fn(t, rng);
    }
  }

  /// RNG for one specific trial (for debugging a single failing die).
  [[nodiscard]] Rng rng_for_trial(std::size_t trial) const {
    return Rng{derive_seed(seed_, trial)};
  }

 private:
  std::uint64_t seed_;
  std::size_t trials_;
};

}  // namespace tsvpt::process
