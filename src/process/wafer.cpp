#include "process/wafer.hpp"

#include <cmath>
#include <stdexcept>

namespace tsvpt::process {

WaferModel::WaferModel(WaferParams params, std::uint64_t wafer_seed)
    : params_(params) {
  if (params_.radius.value() <= 0.0 || params_.die_pitch_x.value() <= 0.0 ||
      params_.die_pitch_y.value() <= 0.0) {
    throw std::invalid_argument{"WaferModel: non-positive geometry"};
  }
  Rng rng{wafer_seed};
  bowl_scale_ = 1.0 + params_.lot_spread * rng.gaussian();
  tilt_scale_ = 1.0 + params_.lot_spread * rng.gaussian();
  tilt_direction_ = rng.uniform(0.0, 2.0 * 3.14159265358979);

  // Reticle grid covering the wafer; keep sites whose center fits inside
  // the usable radius.
  const double r = params_.radius.value();
  const double px = params_.die_pitch_x.value();
  const double py = params_.die_pitch_y.value();
  const auto nx = static_cast<long>(std::floor(r / px));
  const auto ny = static_cast<long>(std::floor(r / py));
  for (long iy = -ny; iy <= ny; ++iy) {
    for (long ix = -nx; ix <= nx; ++ix) {
      const Point p{static_cast<double>(ix) * px,
                    static_cast<double>(iy) * py};
      if (std::sqrt(p.x * p.x + p.y * p.y) <= r) sites_.push_back(p);
    }
  }
  if (sites_.empty()) throw std::invalid_argument{"WaferModel: no sites"};

  residuals_.reserve(sites_.size());
  const double sigma = params_.sigma_residual.value();
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    Rng die_rng{derive_seed(wafer_seed, i + 1)};
    residuals_.push_back({Volt{die_rng.gaussian(0.0, sigma)},
                          Volt{die_rng.gaussian(0.0, sigma)}});
  }
}

device::VtDelta WaferModel::systematic_at(Point position) const {
  const double r = params_.radius.value();
  const double rho2 = (position.x * position.x + position.y * position.y) /
                      (r * r);
  const double along_tilt =
      (position.x * std::cos(tilt_direction_) +
       position.y * std::sin(tilt_direction_)) /
      r;
  const double bowl = bowl_scale_ * rho2;
  const double tilt = tilt_scale_ * along_tilt;
  return {Volt{params_.bowl_nmos.value() * bowl +
               params_.tilt_nmos.value() * tilt},
          Volt{params_.bowl_pmos.value() * bowl +
               params_.tilt_pmos.value() * tilt}};
}

device::VtDelta WaferModel::die_offset(std::size_t site_index) const {
  if (site_index >= sites_.size()) {
    throw std::out_of_range{"WaferModel::die_offset"};
  }
  return systematic_at(sites_[site_index]) + residuals_[site_index];
}

double WaferModel::site_radius(std::size_t site_index) const {
  if (site_index >= sites_.size()) {
    throw std::out_of_range{"WaferModel::site_radius"};
  }
  const Point& p = sites_[site_index];
  return std::sqrt(p.x * p.x + p.y * p.y);
}

}  // namespace tsvpt::process
