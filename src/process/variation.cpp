#include "process/variation.hpp"

#include <stdexcept>

namespace tsvpt::process {

VariationModel::VariationModel(const device::Technology& tech,
                               std::vector<Point> points)
    : tech_(tech), points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument{"VariationModel: no points"};
  const double sigma = tech.sigma_vt_wid.value();
  const double length = tech.wid_correlation_length.value();
  wid_nmos_.emplace(points_, sigma, length);
  wid_pmos_.emplace(points_, sigma, length);
}

void VariationModel::set_tsv_stress(TsvStressField field) {
  tsv_stress_ = std::move(field);
}

void VariationModel::scale_wid_sigma(double factor) {
  if (factor < 0.0) throw std::invalid_argument{"scale_wid_sigma < 0"};
  const double sigma = tech_.sigma_vt_wid.value() * factor;
  const double length = tech_.wid_correlation_length.value();
  wid_nmos_.emplace(points_, sigma, length);
  wid_pmos_.emplace(points_, sigma, length);
}

std::vector<device::VtDelta> VariationModel::stress_at_points() const {
  std::vector<device::VtDelta> stress(points_.size());
  if (tsv_stress_) {
    for (std::size_t i = 0; i < points_.size(); ++i) {
      stress[i] = tsv_stress_->shift_at(points_[i]);
    }
  }
  return stress;
}

DieVariation VariationModel::sample_die(Rng& rng) const {
  DieVariation die;
  const double sigma_d2d = tech_.sigma_vt_d2d.value() * d2d_scale_;
  die.d2d.nmos = Volt{rng.gaussian(0.0, sigma_d2d)};
  die.d2d.pmos = Volt{rng.gaussian(0.0, sigma_d2d)};

  const std::vector<double> n_field = wid_nmos_->sample(rng);
  const std::vector<double> p_field = wid_pmos_->sample(rng);
  die.wid.resize(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    die.wid[i] = {Volt{n_field[i]}, Volt{p_field[i]}};
  }
  die.stress = stress_at_points();
  return die;
}

DieVariation VariationModel::corner_die(device::Corner corner) const {
  DieVariation die;
  const device::CornerShift shift = tech_.corner_shift(corner);
  die.d2d = {shift.nmos, shift.pmos};
  die.wid.assign(points_.size(), device::VtDelta{});
  die.stress = stress_at_points();
  return die;
}

}  // namespace tsvpt::process
