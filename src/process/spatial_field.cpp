#include "process/spatial_field.hpp"

#include <cmath>
#include <stdexcept>

#include "calib/linalg.hpp"

namespace tsvpt::process {

SpatialField::SpatialField(std::vector<Point> points, double sigma,
                           double correlation_length)
    : points_(std::move(points)), sigma_(sigma),
      correlation_length_(correlation_length) {
  if (points_.empty()) throw std::invalid_argument{"SpatialField: no points"};
  if (sigma_ < 0.0) throw std::invalid_argument{"SpatialField: sigma < 0"};
  if (correlation_length_ <= 0.0) {
    throw std::invalid_argument{"SpatialField: correlation length <= 0"};
  }
  const std::size_t n = points_.size();
  calib::Matrix cov{n, n};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double d = points_[i].distance_to(points_[j]);
      const double c = sigma_ * sigma_ * std::exp(-d / correlation_length_);
      cov(i, j) = c;
      cov(j, i) = c;
    }
  }
  // Coincident points make the covariance singular; cholesky() adds jitter,
  // and for sigma == 0 we skip factorization entirely.
  if (sigma_ > 0.0) cholesky_ = calib::cholesky(cov, 1e-4);
}

std::vector<double> SpatialField::sample(Rng& rng) const {
  const std::size_t n = points_.size();
  std::vector<double> out(n, 0.0);
  if (sigma_ == 0.0) return out;
  std::vector<double> z(n);
  for (double& v : z) v = rng.gaussian();
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j <= i; ++j) acc += cholesky_(i, j) * z[j];
    out[i] = acc;
  }
  return out;
}

double SpatialField::correlation_between(std::size_t i, std::size_t j) const {
  if (i >= points_.size() || j >= points_.size()) {
    throw std::out_of_range{"SpatialField::correlation_between"};
  }
  const double d = points_[i].distance_to(points_[j]);
  return std::exp(-d / correlation_length_);
}

}  // namespace tsvpt::process
