// TSV-induced mechanical-stress Vt shift.
//
// Copper TSVs expand more than silicon when the stack heats during bonding
// and operation (CTE 17 vs 2.6 ppm/K); the resulting radial stress field
// shifts carrier mobility and threshold voltage of nearby devices — this is
// the "thermal stress and Vt scatter" challenge the paper's abstract opens
// with.  Published 65 nm measurements put the shift at up to ~10-20 mV at
// the keep-out-zone edge, decaying roughly with the inverse square of
// distance, with *opposite sign* for NMOS vs PMOS (piezoresistive
// coefficients of electrons and holes differ in sign along <100>).
//
// Model: dVt(r) = amplitude * (r_via / r)^2 for r >= r_via (clamped at the
// via edge), summed over all TSVs near the point, and scaled by a per-die
// thinning factor (thinner dies in a stack see more stress).
#pragma once

#include <vector>

#include "device/mosfet.hpp"
#include "process/geometry.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::process {

struct TsvStressParams {
  /// Via radius (stress reference radius), meters.
  Meter via_radius{2.5e-6};
  /// Vt shift magnitude at the via edge for each device type.  Signs differ:
  /// tensile radial stress raises NMOS |Vt| and lowers PMOS |Vt| here.
  Volt nmos_edge_shift{+10e-3};
  Volt pmos_edge_shift{-7e-3};
  /// Keep-out radius beyond which the shift is truncated to zero (standard
  /// design-rule abstraction; the tail is negligible anyway).
  Meter cutoff_radius{25e-6};
};

/// Positions of the TSVs on one die plus the stress model.
class TsvStressField {
 public:
  TsvStressField() = default;
  TsvStressField(std::vector<Point> tsv_centers, TsvStressParams params,
                 double die_thinning_factor = 1.0);

  [[nodiscard]] const std::vector<Point>& tsv_centers() const {
    return centers_;
  }
  [[nodiscard]] const TsvStressParams& params() const { return params_; }

  /// Total stress-induced Vt shift at a die location.
  [[nodiscard]] device::VtDelta shift_at(Point p) const;

  /// Convenience: a uniform grid of TSVs covering a die of the given size.
  [[nodiscard]] static std::vector<Point> grid_layout(Meter die_width,
                                                      Meter die_height,
                                                      std::size_t columns,
                                                      std::size_t rows);

 private:
  std::vector<Point> centers_;
  TsvStressParams params_;
  double thinning_factor_ = 1.0;
};

}  // namespace tsvpt::process
