#include "obs/stages.hpp"

namespace tsvpt::obs {

const std::array<const char*, 5>& all_stages() {
  static const std::array<const char*, 5> stages = {
      kStageCaptureToRing, kStageRingToSeal, kStageSealToWire,
      kStageWireToShard, kStageShardToIngest};
  return stages;
}

Histogram stage_latency(const char* stage) {
  return histogram(kStageLatencyMetric, "stage", stage);
}

void register_stage_histograms() {
  for (const char* stage : all_stages()) {
    (void)stage_latency(stage);
  }
}

}  // namespace tsvpt::obs
