// Self-observability: flight-recorder tracing.
//
// A bounded, lock-free, drop-oldest ring of trace events that is always
// recording (cheap enough to leave on) and exportable on demand as Chrome
// trace-event JSON (`chrome://tracing` / Perfetto "load trace").  The CLI
// dumps it at exit — which covers the alert/failed-run case, since the dump
// happens whether or not the run was clean — and tests snapshot it live.
//
// Writers reserve a slot with one relaxed fetch_add on the global ticket
// and then publish through a per-cell seqlock: the cell's ticket goes
// odd-while-writing / even-when-done, and snapshot() accepts a cell only
// when it reads the same even ticket before and after copying the payload.
// Every payload field is a relaxed atomic, so concurrent snapshots are
// data-race-free (TSan-clean) and a torn cell is simply discarded.  When
// the ring laps, old events are overwritten in place: dropped() is exactly
// max(0, recorded() - capacity()).
//
// Event name/category strings are NOT copied — pass string literals (or
// other pointers that outlive the recorder).  Span arg carries one u64 of
// context (stack id, site index, byte count…), rendered into the JSON.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace tsvpt::obs {

struct TraceEvent {
  const char* category = nullptr;  // layer: "sampler", "aggregator", …
  const char* name = nullptr;      // operation: "scan", "fsync", …
  std::uint64_t start_ns = 0;      // steady-clock
  std::uint64_t dur_ns = 0;        // 0 for instants
  std::uint64_t arg = 0;
  std::uint32_t tid = 0;           // small per-thread id (not the OS tid)
  char phase = 'X';                // 'X' complete span, 'i' instant
};

/// Nanoseconds on the same steady clock the telemetry pipeline stamps
/// frames with.
[[nodiscard]] std::uint64_t monotonic_ns();

/// Small dense id of the calling thread (first call assigns the next id).
[[nodiscard]] std::uint32_t current_thread_id();

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Recording kill switch — record() becomes one relaxed load when off.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Resize the ring (rounded up to a power of two).  NOT safe concurrently
  /// with writers — call at startup or between runs, like clear().
  void set_capacity(std::size_t min_capacity);
  [[nodiscard]] std::size_t capacity() const { return cells_.size(); }

  void record(const TraceEvent& event);
  void record_complete(const char* category, const char* name,
                       std::uint64_t start_ns, std::uint64_t dur_ns,
                       std::uint64_t arg = 0);
  void record_instant(const char* category, const char* name,
                      std::uint64_t arg = 0);

  /// Events currently resident, oldest first.  Safe while writers run:
  /// cells mid-write (or lapped during the copy) are skipped.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Total events ever recorded / overwritten by lapping (drop-oldest).
  [[nodiscard]] std::uint64_t recorded() const {
    return ticket_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > cells_.size() ? n - cells_.size() : 0;
  }

  /// Forget everything (tests / between bench reps).  NOT safe concurrently
  /// with writers.
  void clear();

 private:
  FlightRecorder();

  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  struct Cell {
    /// 2*ticket+1 while the payload is being written, 2*ticket once
    /// published; kNever before first use.
    std::atomic<std::uint64_t> state{kNever};
    std::atomic<const char*> category{nullptr};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint32_t> tid{0};
    std::atomic<char> phase{'X'};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> ticket_{0};
  std::atomic<bool> enabled_{true};
};

/// RAII trace span: stamps the clock at construction and records a complete
/// event (and optionally feeds the duration into a histogram — one clock
/// pair serves both) at destruction.  When both the recorder and metrics
/// are off, cost is two relaxed loads and no clock read.
class ObsSpan {
 public:
  ObsSpan(const char* category, const char* name, std::uint64_t arg = 0)
      : ObsSpan(category, name, Histogram{}, arg) {}

  ObsSpan(const char* category, const char* name, Histogram seconds,
          std::uint64_t arg = 0)
      : category_(category), name_(name), seconds_(seconds), arg_(arg) {
    const bool tracing = FlightRecorder::instance().enabled();
    const bool timing = seconds_.valid() && detail::metrics_enabled();
    active_ = tracing || timing;
    tracing_ = tracing;
    if (active_) start_ns_ = monotonic_ns();
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  ~ObsSpan() {
    if (!active_) return;
    const std::uint64_t dur = monotonic_ns() - start_ns_;
    if (tracing_) {
      FlightRecorder::instance().record_complete(category_, name_, start_ns_,
                                                 dur, arg_);
    }
    if (seconds_.valid()) {
      seconds_.observe(static_cast<double>(dur) * 1e-9);
    }
  }

 private:
  const char* category_;
  const char* name_;
  Histogram seconds_;
  std::uint64_t arg_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
  bool tracing_ = false;
};

/// One-line instant event (alert fired, fault injected, state transition).
inline void instant(const char* category, const char* name,
                    std::uint64_t arg = 0) {
  FlightRecorder& recorder = FlightRecorder::instance();
  if (recorder.enabled()) recorder.record_instant(category, name, arg);
}

/// Chrome trace-event JSON ({"traceEvents": [...]}) from a snapshot.
/// Timestamps are microseconds rebased to the earliest event so doubles
/// keep sub-microsecond precision.
[[nodiscard]] std::string to_chrome_trace(
    const std::vector<TraceEvent>& events);

/// instance().snapshot() + format, the one-call export the CLI uses.
[[nodiscard]] std::string trace_chrome_json();

/// Convenience: flip metrics and tracing together (the "observability off"
/// baseline bench_a17 compares against).
void set_enabled(bool enabled);
[[nodiscard]] bool enabled();

}  // namespace tsvpt::obs
