// SLO evaluation over registry snapshots.
//
// An SloSpec declares an objective against metrics that already exist:
//
//   latency       "99% of <histogram> samples under <threshold> seconds" —
//                 bad fraction comes from fraction_above() on the
//                 histogram's merged buckets (bucket-width resolution)
//   availability  "<good>/<total> counter ratio >= objective" — e.g.
//                 delivered batches over offered batches
//
// Both reduce to the standard error-budget burn rate:
//
//   burn = bad_fraction / (1 - objective)
//
// burn < 1 means the service meets the objective with budget to spare;
// burn > 1 means the budget is being spent faster than it accrues, and the
// tracker flags the SLO as alerting.  Evaluation is pull-based and pure —
// feed it any Snapshot (live registry, test fixture) and get statuses back.
// FleetView attaches a tracker to surface alerts in the serve report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace tsvpt::obs {

struct SloSpec {
  enum class Kind : std::uint8_t { kLatency, kAvailability };

  std::string name;  // report key, e.g. "ingest_wire_latency"
  Kind kind = Kind::kLatency;
  /// Objective as a fraction of good events (0.99 → 1% error budget).
  double objective = 0.99;

  // -- kLatency --
  std::string metric;  // histogram family, e.g. tsvpt_stage_latency_seconds
  std::string label;   // pre-rendered (`stage="wire_to_shard"`), may be empty
  double threshold_seconds = 0.0;

  // -- kAvailability --
  std::string good_counter;
  std::string total_counter;
};

struct SloStatus {
  std::string name;
  double objective = 0.0;
  double bad_fraction = 0.0;
  double burn_rate = 0.0;
  std::uint64_t samples = 0;  // histogram count / total counter value
  bool alerting = false;      // burn_rate > 1 with at least one sample
};

class SloTracker {
 public:
  void add(SloSpec spec) { specs_.push_back(std::move(spec)); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  /// Evaluate every spec against one snapshot.  Specs whose metrics are
  /// absent evaluate to zero samples (never alerting).
  [[nodiscard]] std::vector<SloStatus> evaluate(
      const Snapshot& snapshot) const;

  /// Convenience: stage-latency SLO for one pipeline stage.
  [[nodiscard]] static SloSpec stage_latency_slo(const std::string& stage,
                                                double threshold_seconds,
                                                double objective);

 private:
  std::vector<SloSpec> specs_;
};

/// JSON array of statuses, stable field order — embedded in the FleetView
/// serve report.
[[nodiscard]] std::string to_json(const std::vector<SloStatus>& statuses);

}  // namespace tsvpt::obs
