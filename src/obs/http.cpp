#include "obs/http.hpp"

#include <sstream>

namespace tsvpt::obs {

HttpRequestParser::State HttpRequestParser::feed(const char* data,
                                                 std::size_t len) {
  if (state_ != State::kIncomplete) return state_;
  buffer_.append(data, len);
  if (buffer_.find("\r\n\r\n") != std::string::npos) {
    finish_headers();
  } else if (buffer_.size() > kMaxHttpRequestBytes) {
    state_ = State::kTooLarge;
  }
  return state_;
}

void HttpRequestParser::finish_headers() {
  // Request line: METHOD SP PATH SP HTTP/1.x
  const std::size_t eol = buffer_.find("\r\n");
  const std::string line = buffer_.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) {
    state_ = State::kMalformed;
    return;
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) {
    state_ = State::kMalformed;
    return;
  }
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    state_ = State::kMalformed;
    return;
  }
  method_ = line.substr(0, sp1);
  path_ = line.substr(sp1 + 1, sp2 - sp1 - 1);
  state_ = State::kComplete;
}

void HttpRequestParser::reset() {
  buffer_.clear();
  method_.clear();
  path_.clear();
  state_ = State::kIncomplete;
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body) {
  const char* reason = "OK";
  switch (status) {
    case 200: reason = "OK"; break;
    case 400: reason = "Bad Request"; break;
    case 404: reason = "Not Found"; break;
    case 405: reason = "Method Not Allowed"; break;
    case 413: reason = "Payload Too Large"; break;
    case 431: reason = "Request Header Fields Too Large"; break;
    default: reason = "Error"; break;
  }
  std::ostringstream out;
  out << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace tsvpt::obs
