#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace tsvpt::obs {

namespace detail {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_next_shard{0};
}  // namespace

bool metrics_enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::size_t thread_shard() {
  thread_local const std::size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

std::size_t bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative and NaN all land here
  int exp = 0;
  (void)std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  const int octave = exp - 1;     // floor(log2(value))
  if (octave > kHistMaxExp) return kHistBuckets - 1;
  if (octave < kHistMinExp) return 1;  // clamp into the first log bucket
  const double mantissa = std::ldexp(value, -octave);  // [1, 2)
  int sub = static_cast<int>((mantissa - 1.0) * kHistSub);
  sub = std::clamp(sub, 0, kHistSub - 1);
  return 1 +
         static_cast<std::size_t>(octave - kHistMinExp) * kHistSub +
         static_cast<std::size_t>(sub);
}

double bucket_mid(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kHistBuckets - 1) return std::ldexp(1.0, kHistMaxExp + 1);
  const std::size_t linear = index - 1;
  const int octave = kHistMinExp + static_cast<int>(linear / kHistSub);
  const int sub = static_cast<int>(linear % kHistSub);
  return std::ldexp(1.0 + (static_cast<double>(sub) + 0.5) / kHistSub,
                    octave);
}

}  // namespace detail

void Histogram::observe(double value) const {
  if (metric_ == nullptr || !detail::metrics_enabled()) return;
  detail::HistogramShard& shard =
      metric_->shards[detail::thread_shard()];
  shard.counts[detail::bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  const double clamped = (std::isfinite(value) && value > 0.0) ? value : 0.0;
  shard.sum.fetch_add(clamped, std::memory_order_relaxed);
  // Relaxed CAS-max on the bit pattern; nonnegative doubles order like
  // their bit patterns.
  std::uint64_t bits = 0;
  std::memcpy(&bits, &clamped, sizeof bits);
  std::uint64_t seen = shard.max_bits.load(std::memory_order_relaxed);
  while (bits > seen && !shard.max_bits.compare_exchange_weak(
                            seen, bits, std::memory_order_relaxed)) {
  }
}

std::uint64_t Counter::value() const {
  if (metric_ == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& cell : metric_->cells) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Gauge::value() const {
  if (metric_ == nullptr) return 0.0;
  return metric_->value.load(std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<detail::CounterMetric>> counters;
  std::map<std::string, std::unique_ptr<detail::GaugeMetric>> gauges;
  std::map<std::string, std::unique_ptr<detail::HistogramMetric>> histograms;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter Registry::counter(const std::string& name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    auto metric = std::make_unique<detail::CounterMetric>();
    metric->name = name;
    it = i.counters.emplace(name, std::move(metric)).first;
  }
  return Counter{it->second.get()};
}

Gauge Registry::gauge(const std::string& name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    auto metric = std::make_unique<detail::GaugeMetric>();
    metric->name = name;
    it = i.gauges.emplace(name, std::move(metric)).first;
  }
  return Gauge{it->second.get()};
}

Histogram Registry::histogram(const std::string& name,
                              const std::string& label) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  const std::string key = label.empty() ? name : name + "{" + label + "}";
  auto it = i.histograms.find(key);
  if (it == i.histograms.end()) {
    auto metric = std::make_unique<detail::HistogramMetric>();
    metric->name = name;
    metric->label = label;
    metric->shards = std::vector<detail::HistogramShard>(kShards);
    it = i.histograms.emplace(key, std::move(metric)).first;
  }
  return Histogram{it->second.get()};
}

namespace {

/// Quantile from merged bucket counts: the representative value of the
/// bucket holding the rank, clamped to the exact max so a quantile never
/// exceeds an observed sample.
double bucket_quantile(const std::uint64_t* counts, std::uint64_t total,
                       double q, double exact_max) {
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < detail::kHistBuckets; ++b) {
    cumulative += counts[b];
    if (cumulative >= rank) {
      if (b == 0) return 0.0;
      // The overflow bucket is unbounded, so its midpoint is meaningless;
      // the exact max is the best point estimate there.
      if (b == detail::kHistBuckets - 1) return exact_max;
      return std::min(detail::bucket_mid(b), exact_max);
    }
  }
  return exact_max;
}

}  // namespace

Snapshot Registry::snapshot() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  Snapshot out;
  out.counters.reserve(i.counters.size());
  for (const auto& [name, metric] : i.counters) {
    std::uint64_t total = 0;
    for (const auto& cell : metric->cells) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    out.counters.emplace_back(name, total);
  }
  out.gauges.reserve(i.gauges.size());
  for (const auto& [name, metric] : i.gauges) {
    out.gauges.emplace_back(name,
                            metric->value.load(std::memory_order_relaxed));
  }
  out.histograms.reserve(i.histograms.size());
  for (const auto& [key, metric] : i.histograms) {
    HistogramSnapshot h;
    h.name = metric->name;
    h.label = metric->label;
    std::uint64_t merged[detail::kHistBuckets] = {};
    std::uint64_t max_bits = 0;
    for (const auto& shard : metric->shards) {
      for (std::size_t b = 0; b < detail::kHistBuckets; ++b) {
        merged[b] += shard.counts[b].load(std::memory_order_relaxed);
      }
      h.sum += shard.sum.load(std::memory_order_relaxed);
      max_bits = std::max(max_bits,
                          shard.max_bits.load(std::memory_order_relaxed));
    }
    for (const std::uint64_t c : merged) h.count += c;
    for (std::size_t b = 0; b < detail::kHistBuckets; ++b) {
      if (merged[b] != 0) {
        h.buckets.emplace_back(detail::bucket_mid(b), merged[b]);
      }
    }
    std::memcpy(&h.max, &max_bits, sizeof h.max);
    h.p50 = bucket_quantile(merged, h.count, 0.50, h.max);
    h.p90 = bucket_quantile(merged, h.count, 0.90, h.max);
    h.p99 = bucket_quantile(merged, h.count, 0.99, h.max);
    out.histograms.push_back(std::move(h));
  }
  return out;
}

void Registry::set_enabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Registry::enabled() const {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void Registry::reset_values() {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock{i.mutex};
  for (const auto& [name, metric] : i.counters) {
    for (auto& cell : metric->cells) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& [name, metric] : i.gauges) {
    metric->value.store(0.0, std::memory_order_relaxed);
  }
  for (const auto& [name, metric] : i.histograms) {
    for (auto& shard : metric->shards) {
      for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
      shard.sum.store(0.0, std::memory_order_relaxed);
      shard.max_bits.store(0, std::memory_order_relaxed);
    }
  }
}

Counter counter(const std::string& name) {
  return Registry::instance().counter(name);
}
Gauge gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}
Histogram histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}
Histogram histogram(const std::string& name, const std::string& label_key,
                    const std::string& label_value) {
  return Registry::instance().histogram(
      name, label_key + "=\"" + label_value + "\"");
}

double fraction_above(const HistogramSnapshot& h, double threshold) {
  if (h.count == 0) return 0.0;
  std::uint64_t bad = 0;
  for (const auto& [mid, count] : h.buckets) {
    if (mid > threshold) bad += count;
  }
  return static_cast<double>(bad) / static_cast<double>(h.count);
}
void set_metrics_enabled(bool enabled) {
  Registry::instance().set_enabled(enabled);
}
bool metrics_enabled() { return Registry::instance().enabled(); }

namespace {

/// Finite, locale-independent number rendering for both exposition formats
/// (JSON forbids inf/nan; prometheus parsers choke on locale commas).
std::string render(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// JSON string escape for histogram keys — labels carry embedded quotes
/// (`name{stage="x"}`); metric names themselves never need escaping.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_prometheus(const Snapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << "# TYPE " << name << " counter\n"
        << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "# TYPE " << name << " gauge\n"
        << name << ' ' << render(value) << '\n';
  }
  // Labelled members of one family sort adjacently (`name{...}` keys share
  // the `name` prefix), so emitting `# TYPE` on each name change yields
  // exactly one header per family.
  std::string last_family;
  for (const auto& h : snapshot.histograms) {
    // Label prefix inside braces: `stage="x",` before `quantile=...`, or the
    // whole label set `{stage="x"}` on _sum/_count/_max.
    const std::string lq =
        h.label.empty() ? std::string{} : h.label + ",";
    const std::string lb =
        h.label.empty() ? std::string{} : "{" + h.label + "}";
    if (h.name != last_family) {
      out << "# TYPE " << h.name << " summary\n";
    }
    out << h.name << "{" << lq << "quantile=\"0.5\"} " << render(h.p50) << '\n'
        << h.name << "{" << lq << "quantile=\"0.9\"} " << render(h.p90) << '\n'
        << h.name << "{" << lq << "quantile=\"0.99\"} " << render(h.p99)
        << '\n'
        << h.name << "_sum" << lb << ' ' << render(h.sum) << '\n'
        << h.name << "_count" << lb << ' ' << h.count << '\n';
    if (h.name != last_family) {
      out << "# TYPE " << h.name << "_max gauge\n";
    }
    out << h.name << "_max" << lb << ' ' << render(h.max) << '\n';
    last_family = h.name;
  }
  return out.str();
}

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    \"" << snapshot.counters[i].first
        << "\": " << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    \"" << snapshot.gauges[i].first
        << "\": " << render(snapshot.gauges[i].second);
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out << (i == 0 ? "" : ",") << "\n    \"" << json_escape(h.key())
        << "\": {\"count\": " << h.count << ", \"sum\": " << render(h.sum)
        << ", \"max\": " << render(h.max) << ", \"p50\": " << render(h.p50)
        << ", \"p90\": " << render(h.p90) << ", \"p99\": " << render(h.p99)
        << "}";
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string metrics_prometheus() {
  return to_prometheus(Registry::instance().snapshot());
}

std::string metrics_json() {
  return to_json(Registry::instance().snapshot());
}

}  // namespace tsvpt::obs
