// Per-stage latency attribution for the distributed ingest path.
//
// The e2e latency A18 reports (capture → aggregator ingest) decomposes into
// five hops, each observed where the data exists and all exported under one
// labelled histogram family so a scrape sees the full waterfall:
//
//   tsvpt_stage_latency_seconds{stage="capture_to_ring"}   sampler: frame
//       encoded + pushed into the lock-free ring (publisher process)
//   tsvpt_stage_latency_seconds{stage="ring_to_seal"}      publisher: frames
//       waiting in an open batch until it seals (publisher process)
//   tsvpt_stage_latency_seconds{stage="seal_to_wire"}      publisher: sealed
//       batch queued until its first socket write (publisher process)
//   tsvpt_stage_latency_seconds{stage="wire_to_shard"}     server: socket
//       transit, batch send stamp → server parse, clock-aligned (server)
//   tsvpt_stage_latency_seconds{stage="shard_to_ingest"}   frame sitting in
//       a shard ring until the aggregator drains it (server process)
//
// Cross-clock hops (wire_to_shard and the re-based e2e) are only meaningful
// with a ClockAlign offset estimate; producers observe them only when the
// batch carries kBatchFlagOffsetValid.
#pragma once

#include <array>
#include <string>

#include "obs/metrics.hpp"

namespace tsvpt::obs {

/// The one exposition family every stage lands in.
inline constexpr const char* kStageLatencyMetric =
    "tsvpt_stage_latency_seconds";

inline constexpr const char* kStageCaptureToRing = "capture_to_ring";
inline constexpr const char* kStageRingToSeal = "ring_to_seal";
inline constexpr const char* kStageSealToWire = "seal_to_wire";
inline constexpr const char* kStageWireToShard = "wire_to_shard";
inline constexpr const char* kStageShardToIngest = "shard_to_ingest";

/// Pipeline order — the waterfall rows, capture first.
[[nodiscard]] const std::array<const char*, 5>& all_stages();

/// Handle for one stage's histogram (cache in a static local like any other
/// metric handle).
[[nodiscard]] Histogram stage_latency(const char* stage);

/// Force-create all five stage histograms so a scrape always exposes the
/// complete family even before traffic reaches every stage (the server calls
/// this at start()).
void register_stage_histograms();

}  // namespace tsvpt::obs
