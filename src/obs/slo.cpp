#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/stages.hpp"

namespace tsvpt::obs {

namespace {

std::uint64_t counter_value(const Snapshot& snapshot,
                            const std::string& name) {
  for (const auto& [n, v] : snapshot.counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* find_histogram(const Snapshot& snapshot,
                                        const std::string& name,
                                        const std::string& label) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name && h.label == label) return &h;
  }
  return nullptr;
}

std::string render(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::vector<SloStatus> SloTracker::evaluate(const Snapshot& snapshot) const {
  std::vector<SloStatus> out;
  out.reserve(specs_.size());
  for (const SloSpec& spec : specs_) {
    SloStatus status;
    status.name = spec.name;
    status.objective = spec.objective;
    if (spec.kind == SloSpec::Kind::kLatency) {
      if (const HistogramSnapshot* h =
              find_histogram(snapshot, spec.metric, spec.label)) {
        status.samples = h->count;
        status.bad_fraction = fraction_above(*h, spec.threshold_seconds);
      }
    } else {
      const std::uint64_t total =
          counter_value(snapshot, spec.total_counter);
      const std::uint64_t good =
          std::min(counter_value(snapshot, spec.good_counter), total);
      status.samples = total;
      if (total > 0) {
        status.bad_fraction = 1.0 - static_cast<double>(good) /
                                        static_cast<double>(total);
      }
    }
    const double budget = 1.0 - spec.objective;
    status.burn_rate =
        budget > 0.0 ? status.bad_fraction / budget
                     : (status.bad_fraction > 0.0 ? 1e9 : 0.0);
    status.alerting = status.samples > 0 && status.burn_rate > 1.0;
    out.push_back(std::move(status));
  }
  return out;
}

SloSpec SloTracker::stage_latency_slo(const std::string& stage,
                                      double threshold_seconds,
                                      double objective) {
  SloSpec spec;
  spec.name = "stage_" + stage;
  spec.kind = SloSpec::Kind::kLatency;
  spec.metric = kStageLatencyMetric;
  spec.label = "stage=\"" + stage + "\"";
  spec.threshold_seconds = threshold_seconds;
  spec.objective = objective;
  return spec;
}

std::string to_json(const std::vector<SloStatus>& statuses) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    const SloStatus& s = statuses[i];
    out << (i == 0 ? "" : ", ") << "{\"name\": \"" << s.name
        << "\", \"objective\": " << render(s.objective)
        << ", \"bad_fraction\": " << render(s.bad_fraction)
        << ", \"burn_rate\": " << render(s.burn_rate)
        << ", \"samples\": " << s.samples
        << ", \"alerting\": " << (s.alerting ? "true" : "false") << "}";
  }
  out << ']';
  return out.str();
}

}  // namespace tsvpt::obs
