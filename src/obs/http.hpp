// Minimal HTTP/1.0 plumbing for the live scrape endpoint.
//
// Just enough protocol for `GET /metrics` from curl/Prometheus/tsvpt_cli:
// an incremental request parser (bytes arrive in arbitrary chunks from a
// nonblocking socket) and a response builder.  One request per connection,
// close after response — no keep-alive, no chunking, no bodies on requests.
//
// Deliberately dependency-free (obs sits at the bottom of the layering DAG,
// under net) so both the ingest server and tests can use it without a
// socket in sight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tsvpt::obs {

/// Requests larger than this are rejected outright (a GET for /metrics fits
/// in a couple hundred bytes; anything bigger is garbage or abuse).
inline constexpr std::size_t kMaxHttpRequestBytes = 8192;

/// Incremental request-line + header parser.  Feed bytes as they arrive;
/// kComplete after the blank line ends the header block.
class HttpRequestParser {
 public:
  enum class State : std::uint8_t {
    kIncomplete,  // need more bytes
    kComplete,    // method/path parsed, header block terminated
    kTooLarge,    // exceeded kMaxHttpRequestBytes before completing
    kMalformed,   // request line was not `METHOD SP PATH SP HTTP/1.x`
  };

  /// Consume a chunk.  Returns the state after this chunk; once terminal
  /// (anything but kIncomplete) further feeds are no-ops.
  State feed(const char* data, std::size_t len);

  [[nodiscard]] State state() const { return state_; }
  /// Valid when kComplete.
  [[nodiscard]] const std::string& method() const { return method_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  void reset();

 private:
  void finish_headers();

  std::string buffer_;
  std::string method_;
  std::string path_;
  State state_ = State::kIncomplete;
};

/// Serialize one response: status line, minimal headers (Content-Type,
/// Content-Length, Connection: close), blank line, body.
/// `status` e.g. 200/404/400; reason text derived from the code.
[[nodiscard]] std::string http_response(int status,
                                        const std::string& content_type,
                                        const std::string& body);

}  // namespace tsvpt::obs
