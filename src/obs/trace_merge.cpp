#include "obs/trace_merge.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tsvpt::obs {

namespace {

/// Extract the bracketed traceEvents array body (between `[` and its
/// matching `]`), or empty on malformed input.  Depth tracking honours JSON
/// strings so braces in event names can't derail it.
std::string events_body(const std::string& doc) {
  const std::size_t key = doc.find("\"traceEvents\"");
  if (key == std::string::npos) return {};
  const std::size_t open = doc.find('[', key);
  if (open == std::string::npos) return {};
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = open; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      --depth;
      if (depth == 0) return doc.substr(open + 1, i - open - 1);
    }
  }
  return {};
}

/// Split an array body into top-level `{...}` object strings.
std::vector<std::string> split_objects(const std::string& body) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) out.push_back(body.substr(start, i - start + 1));
    }
  }
  return out;
}

/// Replace the numeric value of `"key": <number>` in one event object.
/// Returns false (object untouched) when the key is absent.
bool rewrite_number(std::string& obj, const char* key,
                    const std::string& replacement) {
  const std::string needle = std::string{"\""} + key + "\":";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t num = pos + needle.size();
  while (num < obj.size() && obj[num] == ' ') ++num;
  std::size_t end = num;
  while (end < obj.size() &&
         (std::isdigit(static_cast<unsigned char>(obj[end])) != 0 ||
          obj[end] == '-' || obj[end] == '+' || obj[end] == '.' ||
          obj[end] == 'e' || obj[end] == 'E')) {
    ++end;
  }
  if (end == num) return false;
  obj.replace(num, end - num, replacement);
  return true;
}

/// Current `ts` value of one event object (0.0 if absent/garbled).
double read_ts(const std::string& obj) {
  const std::size_t pos = obj.find("\"ts\":");
  if (pos == std::string::npos) return 0.0;
  return std::strtod(obj.c_str() + pos + 5, nullptr);
}

std::string render_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

}  // namespace

void TraceMerge::add(std::string json, std::int64_t offset_ns,
                     std::string label) {
  inputs_.push_back(Input{std::move(json), offset_ns, std::move(label)});
}

TraceMerge::Result TraceMerge::merge() const {
  Result result;
  result.events_per_input.assign(inputs_.size(), 0);
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const Input& input = inputs_[i];
    const int pid = static_cast<int>(i) + 1;
    const std::string pid_str = std::to_string(pid);
    if (!input.label.empty()) {
      // Chrome metadata event naming this pid lane.
      out << (first ? "\n" : ",\n")
          << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
          << ", \"tid\": 0, \"args\": {\"name\": \"" << input.label << "\"}}";
      first = false;
    }
    const double offset_us =
        static_cast<double>(input.offset_ns) / 1000.0;
    for (std::string obj : split_objects(events_body(input.json))) {
      rewrite_number(obj, "pid", pid_str);
      const double ts = read_ts(obj);
      rewrite_number(obj, "ts", render_us(ts + offset_us));
      out << (first ? "\n" : ",\n") << obj;
      first = false;
      ++result.events_per_input[i];
      ++result.total_events;
    }
  }
  out << "\n]}\n";
  result.json = out.str();
  return result;
}

}  // namespace tsvpt::obs
