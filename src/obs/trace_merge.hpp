// Cross-process trace stitching.
//
// Each process in a fleet run dumps its own flight recorder as Chrome trace
// JSON (obs::to_chrome_trace) with its own steady clock and pid lane 1.
// TraceMerge combines N such dumps into one timeline:
//
//   * per-input clock offset (from ClockAlign) added to every `ts`, mapping
//     all events onto one reference clock,
//   * each input assigned a distinct `pid` lane (1..N in add order) so
//     chrome://tracing / Perfetto renders processes as separate tracks,
//   * optional per-input process_name metadata so the lanes are labelled.
//
// The merger rewrites only `pid` and `ts` per event — name/cat/ph/tid/dur/
// args pass through byte-for-byte — so a merged trace reconciles 1:1 with
// its inputs' span counts (bench_a21 gates exactly that).  Inputs are
// strings, not files; the CLI wires file IO around it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tsvpt::obs {

class TraceMerge {
 public:
  /// Queue one Chrome-trace JSON document.  `offset_ns` maps this process's
  /// clock onto the reference clock (reference process passes 0); `label`,
  /// when non-empty, becomes the lane's process_name metadata.
  void add(std::string json, std::int64_t offset_ns, std::string label = {});

  struct Result {
    std::string json;  // merged Chrome-trace document
    std::size_t total_events = 0;
    /// Events recovered per input, add order — compare against per-process
    /// dumps for reconciliation.
    std::vector<std::size_t> events_per_input;
  };

  /// Merge everything queued so far.  Inputs that fail to parse contribute
  /// zero events (visible in events_per_input) rather than aborting.
  [[nodiscard]] Result merge() const;

  [[nodiscard]] std::size_t inputs() const { return inputs_.size(); }

 private:
  struct Input {
    std::string json;
    std::int64_t offset_ns = 0;
    std::string label;
  };
  std::vector<Input> inputs_;
};

}  // namespace tsvpt::obs
