#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace tsvpt::obs {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t current_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::FlightRecorder() {
  set_capacity(std::size_t{1} << 15);  // 32k events, ~2.5 MB resident
}

void FlightRecorder::set_capacity(std::size_t min_capacity) {
  std::size_t cap = 2;
  while (cap < min_capacity) cap <<= 1;
  cells_ = std::vector<Cell>(cap);
  mask_ = cap - 1;
  ticket_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::clear() {
  for (auto& cell : cells_) {
    cell.state.store(kNever, std::memory_order_relaxed);
  }
  ticket_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::record(const TraceEvent& event) {
  if (!enabled()) return;
  const std::uint64_t t = ticket_.fetch_add(1, std::memory_order_relaxed);
  Cell& cell = cells_[t & mask_];
  cell.state.store(2 * t + 1, std::memory_order_relaxed);
  // mo: release fence orders the odd-state store before the payload stores;
  // pairs with snapshot()'s acquire fence for torn-cell detection.
  std::atomic_thread_fence(std::memory_order_release);
  cell.category.store(event.category, std::memory_order_relaxed);
  cell.name.store(event.name, std::memory_order_relaxed);
  cell.start_ns.store(event.start_ns, std::memory_order_relaxed);
  cell.dur_ns.store(event.dur_ns, std::memory_order_relaxed);
  cell.arg.store(event.arg, std::memory_order_relaxed);
  cell.tid.store(event.tid, std::memory_order_relaxed);
  cell.phase.store(event.phase, std::memory_order_relaxed);
  // mo: release publishes the payload; pairs with snapshot()'s first acquire
  // state load (s1).
  cell.state.store(2 * t, std::memory_order_release);
}

void FlightRecorder::record_complete(const char* category, const char* name,
                                     std::uint64_t start_ns,
                                     std::uint64_t dur_ns,
                                     std::uint64_t arg) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.arg = arg;
  event.tid = current_thread_id();
  event.phase = 'X';
  record(event);
}

void FlightRecorder::record_instant(const char* category, const char* name,
                                    std::uint64_t arg) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.start_ns = monotonic_ns();
  event.dur_ns = 0;
  event.arg = arg;
  event.tid = current_thread_id();
  event.phase = 'i';
  record(event);
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  // mo: acquire pairs with record()'s release state store via the ticket:
  // cells at tickets below `end` are at least claimed, usually published.
  const std::uint64_t end = ticket_.load(std::memory_order_acquire);
  const std::uint64_t cap = cells_.size();
  const std::uint64_t begin = end > cap ? end - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t t = begin; t < end; ++t) {
    const Cell& cell = cells_[t & mask_];
    // mo: acquire pairs with record()'s release state store, making the
    // payload visible when s1 reads as published (even).
    const std::uint64_t s1 = cell.state.load(std::memory_order_acquire);
    if (s1 != 2 * t) continue;  // mid-write, lapped, or never published
    TraceEvent event;
    event.category = cell.category.load(std::memory_order_relaxed);
    event.name = cell.name.load(std::memory_order_relaxed);
    event.start_ns = cell.start_ns.load(std::memory_order_relaxed);
    event.dur_ns = cell.dur_ns.load(std::memory_order_relaxed);
    event.arg = cell.arg.load(std::memory_order_relaxed);
    event.tid = cell.tid.load(std::memory_order_relaxed);
    event.phase = cell.phase.load(std::memory_order_relaxed);
    // mo: acquire fence orders the payload loads before the state re-check;
    // pairs with record()'s release fence.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (cell.state.load(std::memory_order_relaxed) != s1) continue;  // torn
    out.push_back(event);
  }
  return out;
}

namespace {

/// Names and categories are call-site string literals, but a hostile or
/// future caller must never be able to break the JSON.
void append_escaped(std::string& out, const char* s) {
  if (s == nullptr) {
    out += "null";
    return;
  }
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const TraceEvent& e : events) t0 = std::min(t0, e.start_ns);
  if (events.empty()) t0 = 0;

  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[128];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "{\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"cat\": \"";
    append_escaped(out, e.category);
    out += "\", \"ph\": \"";
    out += e.phase;
    out += '"';
    if (e.phase == 'i') out += ", \"s\": \"t\"";
    std::snprintf(buf, sizeof buf, ", \"pid\": 1, \"tid\": %u, \"ts\": %.3f",
                  e.tid, static_cast<double>(e.start_ns - t0) * 1e-3);
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof buf, ", \"dur\": %.3f",
                    static_cast<double>(e.dur_ns) * 1e-3);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, ", \"args\": {\"arg\": %llu}}",
                  static_cast<unsigned long long>(e.arg));
    out += buf;
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

std::string trace_chrome_json() {
  return to_chrome_trace(FlightRecorder::instance().snapshot());
}

void set_enabled(bool enabled) {
  set_metrics_enabled(enabled);
  FlightRecorder::instance().set_enabled(enabled);
}

bool enabled() {
  return metrics_enabled() || FlightRecorder::instance().enabled();
}

}  // namespace tsvpt::obs
