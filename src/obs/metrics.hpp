// Self-observability: process-wide metrics registry.
//
// The pipeline being monitored (sampler workers, collector, store writer)
// is itself a concurrent hot path, so the registry is built to the same
// relaxed-atomic discipline as the telemetry ring: a hot-path increment is
// exactly one uncontended relaxed atomic op on a per-thread shard, and all
// cross-thread merging happens at snapshot time.
//
//   Counter   — monotonically increasing u64, sharded: each thread lands on
//               cells[thread_shard] and snapshot() sums the shards.
//   Gauge     — last-write-wins double (set) with atomic add; gauges are
//               low-rate (occupancy, config echoes), so a single slot.
//   Histogram — HDR-style log-bucketed distribution over nonnegative
//               values: 8 sub-buckets per power of two from 2^-30 to 2^12
//               (sub-nanosecond to ~hour when recording seconds), plus a
//               zero bucket and an overflow bucket.  Relative quantile
//               error is bounded by the bucket width (1/8 of an octave,
//               ~= 12.5%).  Buckets are sharded like counters; sum and an
//               exact max ride along per shard.
//
// Registration (`obs::counter("name")`) takes a mutex and returns a cheap
// copyable handle; instrumented call sites cache the handle in a static
// local so steady state never touches the lock.  Handles stay valid for
// the process lifetime — reset_values() (tests) zeroes data but never
// deregisters.
//
// The whole layer is always compiled and cheap when idle: set_enabled(false)
// turns every hot-path op into one relaxed bool load (bench_a17 gates the
// enabled cost at <5% of fleet sampler throughput).
//
// Naming conventions (enforced by review, exported verbatim):
//   tsvpt_<layer>_<what>_total   counters (sampler, agg, store, sensor, …)
//   tsvpt_<layer>_<what>_seconds / _bytes   histograms, unit-suffixed
//   tsvpt_<layer>_<what>         gauges
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tsvpt::obs {

/// Threads hash onto this many independent slots per metric (power of two).
inline constexpr std::size_t kShards = 8;

namespace detail {

// -- histogram bucket geometry -----------------------------------------
inline constexpr int kHistMinExp = -30;  // 2^-30 ~= 0.93e-9
inline constexpr int kHistMaxExp = 12;   // 2^12  = 4096
inline constexpr int kHistSubBits = 3;
inline constexpr int kHistSub = 1 << kHistSubBits;  // 8 sub-buckets/octave
/// [0] zero-or-negative, [1 .. N] log buckets, [N+1] overflow.
inline constexpr std::size_t kHistBuckets =
    static_cast<std::size_t>(kHistMaxExp - kHistMinExp + 1) * kHistSub + 2;

/// Bucket for a sample (total order, clamping at both ends).
[[nodiscard]] std::size_t bucket_index(double value);
/// Representative value reported for quantiles landing in a bucket.
[[nodiscard]] double bucket_mid(std::size_t index);

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterMetric {
  std::string name;
  CounterCell cells[kShards];
};

struct GaugeMetric {
  std::string name;
  std::atomic<double> value{0.0};
};

struct alignas(64) HistogramShard {
  std::atomic<std::uint64_t> counts[kHistBuckets];
  std::atomic<double> sum{0.0};
  /// Bit pattern of the largest sample seen (values are nonnegative, so
  /// the IEEE-754 bit patterns order like the doubles).
  std::atomic<std::uint64_t> max_bits{0};
};

struct HistogramMetric {
  std::string name;
  /// Optional single Prometheus label, pre-rendered (`stage="seal_to_wire"`).
  /// Empty for the common unlabelled case.
  std::string label;
  std::vector<HistogramShard> shards;  // kShards entries
};

/// This thread's shard slot (assigned round-robin on first use).
[[nodiscard]] std::size_t thread_shard();

/// The global kill switch, hot-path form (relaxed load).
[[nodiscard]] bool metrics_enabled();

}  // namespace detail

class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n) const {
    if (metric_ == nullptr || !detail::metrics_enabled()) return;
    metric_->cells[detail::thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() const { add(1); }

  /// Merged value (racy while writers run; exact at quiescence).
  [[nodiscard]] std::uint64_t value() const;

 private:
  friend class Registry;
  explicit Counter(detail::CounterMetric* metric) : metric_(metric) {}
  detail::CounterMetric* metric_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;

  void set(double v) const {
    if (metric_ == nullptr || !detail::metrics_enabled()) return;
    metric_->value.store(v, std::memory_order_relaxed);
  }
  void add(double v) const {
    if (metric_ == nullptr || !detail::metrics_enabled()) return;
    metric_->value.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const;

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeMetric* metric) : metric_(metric) {}
  detail::GaugeMetric* metric_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;

  void observe(double value) const;

  [[nodiscard]] bool valid() const { return metric_ != nullptr; }

 private:
  friend class Registry;
  friend class ObsSpan;
  explicit Histogram(detail::HistogramMetric* metric) : metric_(metric) {}
  detail::HistogramMetric* metric_ = nullptr;
};

/// RAII seconds timer into a histogram — no trace event, just the metric
/// (use ObsSpan from trace.hpp when the operation should also appear in the
/// flight recorder).  Skips the clock entirely when metrics are disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram seconds)
      : seconds_(seconds),
        active_(seconds.valid() && detail::metrics_enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (!active_) return;
    seconds_.observe(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count());
  }

 private:
  Histogram seconds_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

struct HistogramSnapshot {
  std::string name;
  /// Pre-rendered label (`stage="seal_to_wire"`), empty when unlabelled.
  std::string label;
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Non-empty merged buckets as (representative value, count) — what the
  /// SLO evaluator folds into bad-sample fractions.  The zero bucket's
  /// representative is 0.
  std::vector<std::pair<double, std::uint64_t>> buckets;

  /// `name{label}` when labelled, else `name` — the registry key and the
  /// identity exposition formats render.
  [[nodiscard]] std::string key() const {
    return label.empty() ? name : name + "{" + label + "}";
  }
};

/// Fraction of this histogram's samples whose bucket representative exceeds
/// `threshold` (0 when empty).  Resolution is the bucket width (~12.5%).
[[nodiscard]] double fraction_above(const HistogramSnapshot& h,
                                    double threshold);

/// Everything the registry knows at one instant, shards merged, sorted by
/// name.  The exposition formats below render this — they never touch the
/// live registry themselves.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class Registry {
 public:
  static Registry& instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name (mutex-guarded; cache the handle).  The
  /// histogram's optional `label` must be pre-rendered (`key="value"`);
  /// (name, label) pairs are distinct metrics sharing one exposition family.
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  [[nodiscard]] Histogram histogram(const std::string& name,
                                    const std::string& label = {});

  [[nodiscard]] Snapshot snapshot() const;

  /// Kill switch for every hot-path op (counters, gauges, histograms).
  /// Handles stay usable either way.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Zero every metric's data without invalidating any handle (tests and
  /// the overhead bench isolate runs with this).
  void reset_values();

 private:
  Registry() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

// -- convenience free functions (the forms call sites actually use) ------
[[nodiscard]] Counter counter(const std::string& name);
[[nodiscard]] Gauge gauge(const std::string& name);
[[nodiscard]] Histogram histogram(const std::string& name);
/// Labelled histogram: one label key/value pair, rendered into every sample
/// of the family (`name{key="value",quantile="..."}`).
[[nodiscard]] Histogram histogram(const std::string& name,
                                  const std::string& label_key,
                                  const std::string& label_value);
void set_metrics_enabled(bool enabled);
[[nodiscard]] bool metrics_enabled();

/// Prometheus exposition text: counters as `counter`, gauges as `gauge`,
/// histograms as `summary` (quantile-labelled samples + _sum/_count) with a
/// companion `<name>_max` gauge.
[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot);
/// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}};
/// numbers are always finite (empty histograms export zeros).
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// snapshot() + format, the one-call exports the CLI uses.
[[nodiscard]] std::string metrics_prometheus();
[[nodiscard]] std::string metrics_json();

}  // namespace tsvpt::obs
