#include "obs/clock_align.hpp"

namespace tsvpt::obs {

void ClockAlign::update(std::uint64_t t1, std::uint64_t t2, std::uint64_t t3,
                        std::uint64_t t4) {
  const auto d21 = static_cast<std::int64_t>(t2 - t1);
  const auto d43 = static_cast<std::int64_t>(t4 - t3);
  const auto d41 = static_cast<std::int64_t>(t4 - t1);
  const auto d32 = static_cast<std::int64_t>(t3 - t2);
  const std::int64_t rtt = d41 - d32;
  if (rtt <= 0) return;
  Sample s;
  s.offset_ns = (d21 - d43) / 2;
  s.rtt_ns = rtt;
  window_[next_] = s;
  next_ = (next_ + 1) % kWindow;
  if (size_ < kWindow) ++size_;
  ++count_;
  recompute();
}

void ClockAlign::reset() {
  size_ = 0;
  next_ = 0;
  count_ = 0;
  best_offset_ns_ = 0;
  best_rtt_ns_ = 0;
}

void ClockAlign::recompute() {
  std::int64_t best_rtt = 0;
  std::int64_t best_offset = 0;
  for (int i = 0; i < size_; ++i) {
    if (best_rtt == 0 || window_[i].rtt_ns < best_rtt) {
      best_rtt = window_[i].rtt_ns;
      best_offset = window_[i].offset_ns;
    }
  }
  best_rtt_ns_ = best_rtt;
  best_offset_ns_ = best_offset;
}

}  // namespace tsvpt::obs
