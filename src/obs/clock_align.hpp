// NTP-style clock alignment over the batch/ack round trip.
//
// Publisher and server each read their own CLOCK_MONOTONIC; to stitch their
// traces (and attribute cross-process latency) we need the offset between
// the two clocks.  Every acked batch yields the four classic timestamps:
//
//   t1  publisher stamps the batch header at send     (send_ns, v3 header)
//   t2  server stamps the batch on parse              (srv_rx_ns, v2 ack)
//   t3  server stamps the ack when it builds it       (srv_tx_ns, v2 ack)
//   t4  publisher stamps the ack on receipt           (local clock)
//
//   offset = ((t2 - t1) - (t4 - t3)) / 2      server_clock - publisher_clock
//   rtt    = (t4 - t1) - (t3 - t2)            pure wire+queue time
//
// The offset estimate is exact when the two wire legs are symmetric; queue
// asymmetry shows up as error bounded by rtt/2.  So we keep a sliding
// window of recent samples and report the offset from the minimum-RTT
// sample — the exchange least polluted by queueing.  Per connection, reset
// on reconnect (a new connection means new socket queues).
//
// On one Linux box CLOCK_MONOTONIC is system-wide, so loopback offsets are
// ~0; bench_a21 gates |offset| <= 2 ms on exactly that property.
#pragma once

#include <cstdint>

namespace tsvpt::obs {

class ClockAlign {
 public:
  /// Sliding window length: offset tracks the min-RTT sample among the last
  /// kWindow exchanges, so a transient queue spike ages out.
  static constexpr int kWindow = 16;

  /// Feed one completed round trip (nanosecond timestamps; t1/t4 publisher
  /// clock, t2/t3 server clock).  Samples with non-positive RTT (clock
  /// weirdness, duplicated acks) are dropped.
  void update(std::uint64_t t1, std::uint64_t t2, std::uint64_t t3,
              std::uint64_t t4);

  /// Drop all samples (call on reconnect).
  void reset();

  [[nodiscard]] bool valid() const { return count_ > 0; }
  /// server_clock - publisher_clock, ns (0 until valid()).
  [[nodiscard]] std::int64_t offset_ns() const { return best_offset_ns_; }
  /// RTT of the sample the offset came from, ns.
  [[nodiscard]] std::int64_t min_rtt_ns() const { return best_rtt_ns_; }
  /// Total accepted samples since the last reset.
  [[nodiscard]] std::uint64_t samples() const { return count_; }

 private:
  struct Sample {
    std::int64_t offset_ns = 0;
    std::int64_t rtt_ns = 0;
  };

  void recompute();

  Sample window_[kWindow] = {};
  int size_ = 0;        // valid entries in window_
  int next_ = 0;        // ring write cursor
  std::uint64_t count_ = 0;
  std::int64_t best_offset_ns_ = 0;
  std::int64_t best_rtt_ns_ = 0;
};

}  // namespace tsvpt::obs
