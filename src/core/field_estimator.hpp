// Software companion of the sensor network: reconstruct a die's full
// temperature field from the handful of sensed points.  Inverse-distance
// weighting (Shepard interpolation) — the standard cheap choice for on-line
// thermal estimation — with exactness at the sensor sites.
#pragma once

#include <cstddef>
#include <vector>

#include "core/stack_monitor.hpp"
#include "ptsim/units.hpp"
#include "thermal/network.hpp"

namespace tsvpt::core {

class FieldEstimator {
 public:
  struct Config {
    /// Inverse-distance exponent (2 = classic Shepard).
    double power = 2.0;
    /// Readings flagged degraded are excluded when true.
    bool skip_degraded = true;
  };

  FieldEstimator() = default;
  explicit FieldEstimator(Config config) : config_(config) {}

  /// Estimate the temperature at one location on `die` from the sample's
  /// readings on that die.  Throws if the sample has no usable reading
  /// there.
  [[nodiscard]] Celsius estimate_at(
      const std::vector<StackMonitor::SiteReading>& sample, std::size_t die,
      process::Point location) const;

  /// Reconstruct the whole per-cell field of `die` (Celsius, row-major
  /// iy * nx + ix, matching the thermal network's grid).
  [[nodiscard]] std::vector<double> reconstruct(
      const thermal::ThermalNetwork& network, std::size_t die,
      const std::vector<StackMonitor::SiteReading>& sample) const;

  /// Convenience: worst absolute reconstruction error vs the network's
  /// current true state on that die.
  [[nodiscard]] double max_error(
      const thermal::ThermalNetwork& network, std::size_t die,
      const std::vector<StackMonitor::SiteReading>& sample) const;

 private:
  Config config_{};
};

}  // namespace tsvpt::core
