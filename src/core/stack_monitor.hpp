// Multi-die sensor network: one or more PT-sensor macros per die of a TSV
// stack, sampled against the thermal simulator's ground truth.  This is the
// system-level deliverable of the paper — intra-die process/temperature
// monitoring for 3D-ICs.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/supply.hpp"
#include "core/pt_sensor.hpp"
#include "process/geometry.hpp"
#include "thermal/network.hpp"

namespace tsvpt::core {

/// Where a sensor macro sits and what it locally experiences.
struct SensorSite {
  std::size_t die = 0;
  process::Point location;
  /// True local threshold deviation (from the process model).
  device::VtDelta vt_delta;
  /// Local rail (droop grows with die index in a realistic TSV PDN).
  circuit::SupplyRail supply;
};

class StackMonitor {
 public:
  /// `network` must outlive the monitor.  Each site gets its own PtSensor
  /// instance with an independent seed (independent mismatch draws).
  StackMonitor(thermal::ThermalNetwork* network, PtSensor::Config sensor_config,
               std::vector<SensorSite> sites, std::uint64_t seed);

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] const SensorSite& site(std::size_t i) const {
    return sites_.at(i);
  }
  [[nodiscard]] PtSensor& sensor(std::size_t i) { return sensors_.at(i); }

  /// Run the full self-calibration conversion at every site against the
  /// network's *current* temperature field (power-on calibration).
  void calibrate_all(Rng* noise);

  struct SiteReading {
    std::size_t site_index = 0;
    std::size_t die = 0;
    process::Point location;
    Celsius sensed{0.0};
    Celsius truth{0.0};
    Joule energy{0.0};
    bool degraded = false;
    /// core::HealthState of the site as judged by the HealthSupervisor
    /// (0 = healthy; raw byte so this header stays supervisor-agnostic).
    std::uint8_t health = 0;

    [[nodiscard]] double error() const {
      return sensed.value() - truth.value();
    }
  };

  /// One tracking conversion per site against the current thermal state.
  [[nodiscard]] std::vector<SiteReading> sample_all(Rng* noise);

  /// One tracking conversion of a single site (used by serialized/TDM
  /// readout, where sites are visited one at a time as the stack evolves).
  [[nodiscard]] SiteReading sample_site(std::size_t site_index, Rng* noise);

  /// Ground-truth temperature at a site without running a conversion (used
  /// by the health supervisor's degraded-mode accounting for sites whose
  /// conversion is skipped while quarantined).
  [[nodiscard]] Celsius truth_at(std::size_t site_index) const;

  /// Replace a site's supply rail (fault injection: droop excursions are a
  /// supply-network event, not a sensor event, so they are injected at the
  /// site rather than inside the sensor model).
  void set_site_supply(std::size_t site_index, circuit::SupplyRail supply);

  /// Hottest *sensed* temperature on a die from the given sample.
  [[nodiscard]] static Celsius max_sensed(
      const std::vector<SiteReading>& sample, std::size_t die);

  struct ProcessReport {
    std::size_t site_index = 0;
    std::size_t die = 0;
    process::Point location;
    Volt dvtn_hat{0.0};
    Volt dvtp_hat{0.0};
    Volt dvtn_true{0.0};
    Volt dvtp_true{0.0};
  };

  /// Latched process estimates vs ground truth (requires calibrate_all).
  [[nodiscard]] std::vector<ProcessReport> process_map() const;

  /// Helper: a uniform grid of candidate sites on every die of a stack.
  [[nodiscard]] static std::vector<SensorSite> uniform_sites(
      const thermal::StackConfig& config, std::size_t columns,
      std::size_t rows);

 private:
  [[nodiscard]] DieEnvironment environment_at(std::size_t i) const;

  thermal::ThermalNetwork* network_;
  std::vector<SensorSite> sites_;
  std::vector<PtSensor> sensors_;
};

}  // namespace tsvpt::core
