// Fleet-level fault detection: a sensor that dies or sticks cannot always
// tell you so (a stuck oscillator still produces a confident-looking
// temperature).  But sensors share a die: the temperature field is smooth,
// so each reading can be cross-checked against the leave-one-out spatial
// estimate from its neighbours.  Suspects are excluded greedily (worst
// violator first) so a single stuck sensor cannot contaminate its
// neighbours' estimates into false positives.
//
// Known limitation (pinned by tests): a hotspot concentrated on exactly one
// sensor is spatially indistinguishable from that sensor sticking high, and
// is flagged.  Disambiguation is temporal — real hotspots grow on thermal
// time constants, faults jump between consecutive scans.  The caller that
// owns the scan history and performs that disambiguation is
// core::HealthSupervisor, which quarantines a single-scan jump immediately
// but lets a multi-scan thermal ramp (the whole neighbourhood moving) pass
// (pinned by HealthSupervisorTest.SingleScanJumpQuarantinedHotspotRampIsNot).
#pragma once

#include <string>
#include <vector>

#include "core/field_estimator.hpp"
#include "core/stack_monitor.hpp"

namespace tsvpt::core {

class FaultDetector {
 public:
  struct Config {
    /// A reading deviating more than this from its neighbours' estimate is
    /// suspect.  Set comfortably above sensor accuracy + real gradients.
    Celsius threshold{8.0};
    /// IDW exponent for the leave-one-out estimate.
    double idw_power = 2.0;
  };

  struct Verdict {
    std::size_t site_index = 0;
    bool suspect = false;
    /// Deviation from the leave-one-out estimate (0 when not computable).
    Celsius deviation{0.0};
    std::string reason;  // empty when healthy
  };

  FaultDetector() = default;
  explicit FaultDetector(Config config) : config_(config) {}

  /// Analyze one scan.  Verdicts are aligned with the sample's order.
  [[nodiscard]] std::vector<Verdict> analyze(
      const std::vector<StackMonitor::SiteReading>& sample) const;

  /// Indices of suspect sites in the sample.
  [[nodiscard]] std::vector<std::size_t> suspects(
      const std::vector<StackMonitor::SiteReading>& sample) const;

 private:
  Config config_{};
};

/// Temporal disambiguation between faults and real thermal events: feed it
/// consecutive scans; a site whose reading jumps faster than physics allows
/// — while its same-die neighbours barely move — is a fault, not a hotspot
/// (silicon heats every nearby sensor together; electronics break alone).
class JumpDetector {
 public:
  struct Config {
    /// A site moving more than this between scans is a candidate jump.
    Celsius jump_threshold{6.0};
    /// ...unless its die's other sites moved more than this too (a real
    /// transient moves the neighbourhood).
    Celsius neighbour_allowance{3.0};
  };

  JumpDetector() = default;
  explicit JumpDetector(Config config) : config_(config) {}

  /// Feed the next scan (sites must keep the same order between scans).
  /// Returns the site indices that jumped alone.  The first scan primes the
  /// history and returns nothing.
  [[nodiscard]] std::vector<std::size_t> feed(
      const std::vector<StackMonitor::SiteReading>& scan);

  void reset() { previous_.clear(); }

 private:
  Config config_{};
  std::vector<StackMonitor::SiteReading> previous_;
};

}  // namespace tsvpt::core
