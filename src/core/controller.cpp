#include "core/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsvpt::core {

SensorController::SensorController(Config config, std::uint64_t instance_seed)
    : config_(std::move(config)), sensor_(config_.sensor, instance_seed) {
  if (config_.clock.value() <= 0.0) {
    throw std::invalid_argument{"SensorController: clock <= 0"};
  }
}

std::uint64_t SensorController::window_cycles() const {
  const double window = config_.sensor.counter.window.value();
  return static_cast<std::uint64_t>(
      std::ceil(window * config_.clock.value()));
}

std::uint64_t SensorController::calibrate_latency_cycles() const {
  // Three sequential oscillator windows plus the digital pipeline.
  return 3 * window_cycles() + kSolverCycles;
}

std::uint64_t SensorController::convert_latency_cycles() const {
  return window_cycles() + kSolverCycles;
}

void SensorController::write_command(Command command) {
  if (busy()) return;  // dropped, like a NAKed bus write
  status_ &= static_cast<std::uint16_t>(~kDone);
  switch (command) {
    case Command::kNop:
      break;
    case Command::kCalibrate:
      active_ = command;
      remaining_cycles_ = calibrate_latency_cycles();
      status_ |= kBusy;
      break;
    case Command::kConvert:
      active_ = command;
      // An unsolicited CONVERT before any CALIBRATE triggers the sensor's
      // power-on auto-calibration, which costs the full latency.
      remaining_cycles_ = sensor_.is_calibrated()
                              ? convert_latency_cycles()
                              : calibrate_latency_cycles();
      status_ |= kBusy;
      break;
    case Command::kSoftReset:
      sensor_.clear_calibration();
      status_ = 0;
      temp_reg_ = dvtn_reg_ = dvtp_reg_ = vdd_reg_ = energy_reg_ = 0;
      active_ = Command::kNop;
      break;
  }
}

std::uint16_t SensorController::read_register(Register reg) const {
  switch (reg) {
    case Register::kStatus:
      return status_;
    case Register::kTemp:
      return temp_reg_;
    case Register::kDvtn:
      return dvtn_reg_;
    case Register::kDvtp:
      return dvtp_reg_;
    case Register::kVdd:
      return vdd_reg_;
    case Register::kEnergy:
      return energy_reg_;
  }
  throw std::invalid_argument{"SensorController: unknown register"};
}

std::uint16_t SensorController::encode_signed(double value, double lsb) {
  const double code = std::round(value / lsb);
  const double clamped = std::clamp(code, -32768.0, 32767.0);
  return static_cast<std::uint16_t>(
      static_cast<std::int16_t>(clamped));
}

double SensorController::decode_temp(std::uint16_t code) {
  return static_cast<std::int16_t>(code) * kTempLsb;
}

double SensorController::decode_vt(std::uint16_t code) {
  return static_cast<std::int16_t>(code) * kVtLsbVolts;
}

double SensorController::decode_vdd(std::uint16_t code) {
  return code * kVddLsb;
}

void SensorController::complete(const DieEnvironment& env, Rng* noise) {
  bool degraded = false;
  if (active_ == Command::kCalibrate || !sensor_.is_calibrated()) {
    const PtSensor::ProcessEstimate est = sensor_.self_calibrate(env, noise);
    degraded = !est.converged;
    temp_reg_ = encode_signed(to_celsius(est.temperature).value(), kTempLsb);
    dvtn_reg_ = encode_signed(est.dvtn.value(), kVtLsbVolts);
    dvtp_reg_ = encode_signed(est.dvtp.value(), kVtLsbVolts);
    vdd_reg_ = static_cast<std::uint16_t>(std::clamp(
        std::round(est.vdd.value() / kVddLsb), 0.0, 65535.0));
    energy_reg_ = static_cast<std::uint16_t>(
        std::min(std::round(est.energy.value() * 1e12), 65535.0));
    status_ |= kCalibrated;
  } else {
    const TemperatureReading reading = sensor_.read(env, noise);
    degraded = reading.degraded;
    temp_reg_ = encode_signed(reading.temperature.value(), kTempLsb);
    energy_reg_ = static_cast<std::uint16_t>(
        std::min(std::round(reading.energy.value() * 1e12), 65535.0));
  }
  status_ = static_cast<std::uint16_t>(
      (status_ & ~kBusy & ~kDegraded) | kDone |
      (degraded ? kDegraded : 0));
  active_ = Command::kNop;
}

void SensorController::tick(const DieEnvironment& env, Rng* noise,
                            std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) {
    ++cycle_count_;
    if (remaining_cycles_ > 0) {
      if (--remaining_cycles_ == 0) complete(env, noise);
    }
  }
}

Second SensorController::elapsed() const {
  return Second{static_cast<double>(cycle_count_) / config_.clock.value()};
}

}  // namespace tsvpt::core
