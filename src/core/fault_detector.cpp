#include "core/fault_detector.hpp"

#include <cmath>
#include <optional>

namespace tsvpt::core {

std::vector<FaultDetector::Verdict> FaultDetector::analyze(
    const std::vector<StackMonitor::SiteReading>& sample) const {
  std::vector<Verdict> verdicts(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    verdicts[i].site_index = sample[i].site_index;
    if (sample[i].degraded) {
      verdicts[i].suspect = true;
      verdicts[i].reason = "self-reported degraded";
    }
  }

  FieldEstimator::Config est_cfg;
  est_cfg.power = config_.idw_power;
  est_cfg.skip_degraded = true;
  const FieldEstimator estimator{est_cfg};

  // Leave-one-out deviation of site i against the current healthy set.  A
  // stuck sensor contaminates its neighbours' estimates, so suspects are
  // excluded greedily — worst violator first — until the set is consistent.
  auto deviation_of = [&](std::size_t i) -> std::optional<double> {
    std::vector<StackMonitor::SiteReading> reference;
    reference.reserve(sample.size());
    for (std::size_t j = 0; j < sample.size(); ++j) {
      if (j == i || verdicts[j].suspect) continue;
      if (sample[j].die != sample[i].die) continue;
      reference.push_back(sample[j]);
    }
    if (reference.empty()) return std::nullopt;  // cannot cross-check
    try {
      const double estimate =
          estimator
              .estimate_at(reference, sample[i].die, sample[i].location)
              .value();
      return sample[i].sensed.value() - estimate;
    } catch (const std::runtime_error&) {
      return std::nullopt;
    }
  };

  for (std::size_t round = 0; round < sample.size(); ++round) {
    double worst = config_.threshold.value();
    std::ptrdiff_t worst_index = -1;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      if (verdicts[i].suspect) continue;
      const auto deviation = deviation_of(i);
      if (!deviation) continue;
      verdicts[i].deviation = Celsius{*deviation};
      if (std::abs(*deviation) > worst) {
        worst = std::abs(*deviation);
        worst_index = static_cast<std::ptrdiff_t>(i);
      }
    }
    if (worst_index < 0) break;
    verdicts[worst_index].suspect = true;
    verdicts[worst_index].reason = "spatially inconsistent with neighbours";
  }

  // Final deviations for the healthy sites, against the cleaned set.
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (verdicts[i].suspect) continue;
    if (const auto deviation = deviation_of(i)) {
      verdicts[i].deviation = Celsius{*deviation};
    }
  }
  return verdicts;
}

std::vector<std::size_t> FaultDetector::suspects(
    const std::vector<StackMonitor::SiteReading>& sample) const {
  std::vector<std::size_t> out;
  for (const Verdict& verdict : analyze(sample)) {
    if (verdict.suspect) out.push_back(verdict.site_index);
  }
  return out;
}

std::vector<std::size_t> JumpDetector::feed(
    const std::vector<StackMonitor::SiteReading>& scan) {
  std::vector<std::size_t> jumped;
  if (previous_.size() == scan.size()) {
    for (std::size_t i = 0; i < scan.size(); ++i) {
      const double own_move =
          std::abs(scan[i].sensed.value() - previous_[i].sensed.value());
      if (own_move <= config_.jump_threshold.value()) continue;
      // How much did the rest of this die move?
      double neighbour_move = 0.0;
      std::size_t neighbours = 0;
      for (std::size_t j = 0; j < scan.size(); ++j) {
        if (j == i || scan[j].die != scan[i].die) continue;
        neighbour_move += std::abs(scan[j].sensed.value() -
                                   previous_[j].sensed.value());
        ++neighbours;
      }
      if (neighbours == 0) continue;  // lone sensor: cannot disambiguate
      neighbour_move /= static_cast<double>(neighbours);
      if (neighbour_move < config_.neighbour_allowance.value()) {
        jumped.push_back(scan[i].site_index);
      }
    }
  }
  previous_ = scan;
  return jumped;
}

}  // namespace tsvpt::core
