#include "core/field_estimator.hpp"

#include <cmath>
#include <stdexcept>

namespace tsvpt::core {

Celsius FieldEstimator::estimate_at(
    const std::vector<StackMonitor::SiteReading>& sample, std::size_t die,
    process::Point location) const {
  double weight_sum = 0.0;
  double acc = 0.0;
  for (const StackMonitor::SiteReading& reading : sample) {
    if (reading.die != die) continue;
    if (config_.skip_degraded && reading.degraded) continue;
    const double d = location.distance_to(reading.location);
    if (d < 1e-9) return reading.sensed;  // on a sensor: exact
    const double w = 1.0 / std::pow(d, config_.power);
    weight_sum += w;
    acc += w * reading.sensed.value();
  }
  if (weight_sum == 0.0) {
    throw std::runtime_error{"FieldEstimator: no usable readings on die"};
  }
  return Celsius{acc / weight_sum};
}

std::vector<double> FieldEstimator::reconstruct(
    const thermal::ThermalNetwork& network, std::size_t die,
    const std::vector<StackMonitor::SiteReading>& sample) const {
  const thermal::DieGeometry& geom = network.config().dies.at(die);
  const double cell_w = geom.width.value() / static_cast<double>(geom.nx);
  const double cell_h = geom.height.value() / static_cast<double>(geom.ny);
  std::vector<double> field(geom.nx * geom.ny, 0.0);
  for (std::size_t iy = 0; iy < geom.ny; ++iy) {
    for (std::size_t ix = 0; ix < geom.nx; ++ix) {
      const process::Point center{(static_cast<double>(ix) + 0.5) * cell_w,
                                  (static_cast<double>(iy) + 0.5) * cell_h};
      field[iy * geom.nx + ix] = estimate_at(sample, die, center).value();
    }
  }
  return field;
}

double FieldEstimator::max_error(
    const thermal::ThermalNetwork& network, std::size_t die,
    const std::vector<StackMonitor::SiteReading>& sample) const {
  const thermal::DieGeometry& geom = network.config().dies.at(die);
  const std::vector<double> estimated = reconstruct(network, die, sample);
  double worst = 0.0;
  for (std::size_t iy = 0; iy < geom.ny; ++iy) {
    for (std::size_t ix = 0; ix < geom.nx; ++ix) {
      const double truth =
          to_celsius(network.temperature_at(die, ix, iy)).value();
      worst = std::max(worst,
                       std::abs(estimated[iy * geom.nx + ix] - truth));
    }
  }
  return worst;
}

}  // namespace tsvpt::core
