// Digital front door of the sensor macro: the register map and command FSM
// a SoC integrator actually talks to.  Wraps PtSensor behind a bus-clocked
// interface with fixed-point result registers, busy/valid handshaking and
// realistic conversion latency (count windows + solver cycles), so firmware
// and RTL testbenches can be developed against the model.
//
// Register map (16-bit registers):
//   CMD     (w): 0 NOP / 1 CALIBRATE / 2 CONVERT / 3 SOFT_RESET
//   STATUS  (r): bit0 BUSY, bit1 CALIBRATED, bit2 DEGRADED, bit3 DONE
//                (DONE latches on completion, clears on next command)
//   TEMP    (r): two's-complement, 1/16 degC per LSB
//   DVTN    (r): two's-complement, 1/20 mV (50 uV) per LSB
//   DVTP    (r): two's-complement, 50 uV per LSB
//   VDD     (r): unsigned, 1/4096 V per LSB (compensated mode; else the
//                configured model VDD)
//   ENERGY  (r): unsigned, pJ of the last conversion (saturating)
#pragma once

#include <cstdint>

#include "core/pt_sensor.hpp"

namespace tsvpt::core {

enum class Register : std::uint8_t {
  kStatus = 0,
  kTemp = 1,
  kDvtn = 2,
  kDvtp = 3,
  kVdd = 4,
  kEnergy = 5,
};

class SensorController {
 public:
  enum class Command : std::uint8_t {
    kNop = 0,
    kCalibrate = 1,
    kConvert = 2,
    kSoftReset = 3,
  };

  // STATUS bits.
  static constexpr std::uint16_t kBusy = 1u << 0;
  static constexpr std::uint16_t kCalibrated = 1u << 1;
  static constexpr std::uint16_t kDegraded = 1u << 2;
  static constexpr std::uint16_t kDone = 1u << 3;

  // Fixed-point scales.
  static constexpr double kTempLsb = 1.0 / 16.0;     // degC
  static constexpr double kVtLsbVolts = 50e-6;       // 50 uV
  static constexpr double kVddLsb = 1.0 / 4096.0;    // V
  /// Digital pipeline overhead per conversion, in bus cycles (bias settle,
  /// FSM, Newton/1-D solve on the embedded datapath).
  static constexpr std::uint64_t kSolverCycles = 96;

  struct Config {
    PtSensor::Config sensor;
    /// The bus/control clock the FSM runs on.
    Hertz clock{25e6};
  };

  SensorController(Config config, std::uint64_t instance_seed);

  [[nodiscard]] const Config& config() const { return config_; }

  /// Issue a command.  Commands while BUSY are ignored (real macros NAK or
  /// drop; we drop and keep the current operation).
  void write_command(Command command);

  /// Read one register.  Result registers hold the *last completed*
  /// conversion while a new one is in flight.
  [[nodiscard]] std::uint16_t read_register(Register reg) const;

  /// Advance the macro by `cycles` bus cycles in the given environment.
  /// The physical conversion is sampled at completion time.
  void tick(const DieEnvironment& env, Rng* noise, std::uint64_t cycles = 1);

  [[nodiscard]] bool busy() const { return remaining_cycles_ > 0; }
  /// Total simulated time elapsed on this controller.
  [[nodiscard]] Second elapsed() const;
  /// Conversion latency in cycles for each command type.
  [[nodiscard]] std::uint64_t calibrate_latency_cycles() const;
  [[nodiscard]] std::uint64_t convert_latency_cycles() const;

  // Decoding helpers for host-side software (and tests).
  [[nodiscard]] static double decode_temp(std::uint16_t code);
  [[nodiscard]] static double decode_vt(std::uint16_t code);
  [[nodiscard]] static double decode_vdd(std::uint16_t code);

 private:
  [[nodiscard]] std::uint64_t window_cycles() const;
  void complete(const DieEnvironment& env, Rng* noise);
  static std::uint16_t encode_signed(double value, double lsb);

  Config config_;
  PtSensor sensor_;
  std::uint64_t cycle_count_ = 0;
  std::uint64_t remaining_cycles_ = 0;
  Command active_ = Command::kNop;
  std::uint16_t status_ = 0;
  std::uint16_t temp_reg_ = 0;
  std::uint16_t dvtn_reg_ = 0;
  std::uint16_t dvtp_reg_ = 0;
  std::uint16_t vdd_reg_ = 0;
  std::uint16_t energy_reg_ = 0;
};

}  // namespace tsvpt::core
