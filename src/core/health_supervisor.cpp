#include "core/health_supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tsvpt::core {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kProbation: return "probation";
    case HealthState::kDead: return "dead";
  }
  return "unknown";
}

HealthSupervisor::HealthSupervisor(Config config) : config_(config) {
  detector_ = FaultDetector{config_.fault};
  FieldEstimator::Config est_cfg;
  est_cfg.power = config_.fault.idw_power;
  est_cfg.skip_degraded = true;
  estimator_ = FieldEstimator{est_cfg};
}

bool HealthSupervisor::wants_sample(std::size_t site_index) const {
  if (site_index >= sites_.size()) return true;  // first scan sizes the set
  const Site& site = sites_[site_index];
  switch (site.state) {
    case HealthState::kHealthy:
    case HealthState::kSuspect:
    case HealthState::kProbation:
      return true;
    case HealthState::kQuarantined:
      return scan_ >= site.next_probe_scan;  // probe scans only
    case HealthState::kDead:
      return false;
  }
  return true;
}

HealthState HealthSupervisor::state(std::size_t site_index) const {
  return sites_.at(site_index).state;
}

std::size_t HealthSupervisor::quarantined_count() const {
  std::size_t n = 0;
  for (const Site& s : sites_) {
    if (s.state == HealthState::kQuarantined ||
        s.state == HealthState::kDead) {
      ++n;
    }
  }
  return n;
}

bool HealthSupervisor::all_healthy() const {
  return std::all_of(sites_.begin(), sites_.end(), [](const Site& s) {
    return s.state == HealthState::kHealthy;
  });
}

void HealthSupervisor::reset() {
  sites_.clear();
  prev_served_.clear();
  prev_substituted_.clear();
  primed_ = false;
  scan_ = 0;
}

void HealthSupervisor::transition(std::size_t i, HealthState to,
                                  std::uint64_t scan, std::string reason,
                                  ScanResult* result) {
  Site& site = sites_[i];
  Transition t;
  t.site_index = i;
  t.from = site.state;
  t.to = to;
  t.scan = scan;
  t.reason = std::move(reason);
  result->transitions.push_back(std::move(t));
  // Health edges are rare (a handful per fault), so each one is both
  // counted and dropped into the flight recorder as an instant event named
  // after the destination state (to_string returns literals).
  static const obs::Counter transitions_total =
      obs::counter("tsvpt_health_transitions_total");
  transitions_total.inc();
  obs::instant("health", to_string(to), i);
  site.state = to;
  site.clean_streak = 0;
  site.degraded_streak = 0;
  site.spatial_streak = 0;
}

void HealthSupervisor::enter_quarantine(std::size_t i, std::uint64_t scan,
                                        std::string reason,
                                        ScanResult* result) {
  Site& site = sites_[i];
  // First entry starts at the initial backoff; a relapse keeps the
  // escalated backoff it had already earned.
  if (site.backoff == 0) site.backoff = config_.probe_backoff_initial;
  site.next_probe_scan = scan + 1 + site.backoff;
  transition(i, HealthState::kQuarantined, scan, std::move(reason), result);
}

HealthSupervisor::ScanResult HealthSupervisor::observe(
    const std::vector<StackMonitor::SiteReading>& raw) {
  return observe(raw, std::vector<bool>(raw.size(), true));
}

HealthSupervisor::ScanResult HealthSupervisor::observe(
    const std::vector<StackMonitor::SiteReading>& raw,
    const std::vector<bool>& sampled) {
  if (raw.size() != sampled.size()) {
    throw std::invalid_argument{"HealthSupervisor: mask size mismatch"};
  }
  if (sites_.empty()) {
    sites_.resize(raw.size());
    prev_served_.assign(raw.size(), 0.0);
    prev_substituted_.assign(raw.size(), false);
  } else if (raw.size() != sites_.size()) {
    throw std::invalid_argument{"HealthSupervisor: scan size changed"};
  }
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (raw[i].site_index != i) {
      throw std::invalid_argument{
          "HealthSupervisor: readings must be in site order"};
    }
  }

  const std::uint64_t scan = scan_++;
  ScanResult result;
  result.readings = raw;

  const auto is_active = [&](std::size_t i) {
    const HealthState s = sites_[i].state;
    return s == HealthState::kHealthy || s == HealthState::kSuspect ||
           s == HealthState::kProbation;
  };

  // Substitute a quarantined/dead site from the active sites' readings;
  // returns false when the die has no usable reference (lone sensor).
  const auto substitute = [&](std::size_t i) {
    StackMonitor::SiteReading& r = result.readings[i];
    r.degraded = true;
    std::vector<StackMonitor::SiteReading> refs;
    refs.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || !is_active(j)) continue;
      refs.push_back(result.readings[j]);
    }
    try {
      r.sensed = estimator_.estimate_at(refs, r.die, r.location);
      return true;
    } catch (const std::runtime_error&) {
      if (sites_[i].has_last_served) r.sensed = Celsius{sites_[i].last_served_c};
      return false;
    }
  };

  // Pass A: serve substitutes for already-quarantined/dead sites, and keep
  // the healthy estimate around for probe evaluation.  Their raw readings
  // (stale placeholders or untrusted probes) never enter the analysis set.
  std::vector<double> estimate(n, 0.0);
  std::vector<bool> has_estimate(n, false);
  std::vector<bool> substituted(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (is_active(i)) continue;
    has_estimate[i] = substitute(i);
    estimate[i] = result.readings[i].sensed.value();
    substituted[i] = true;
    result.substituted += 1;
  }

  // Pass B: evidence on the serving set.
  const std::vector<FaultDetector::Verdict> verdicts =
      detector_.analyze(result.readings);

  // Temporal disambiguation against what was actually served last scan: a
  // site moving faster than physics allows while its active same-die
  // neighbours barely move is electronics breaking, not silicon heating.
  std::vector<bool> jumped(n, false);
  if (primed_) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_active(i) || !sampled[i] || prev_substituted_[i]) continue;
      const double own_move =
          std::abs(result.readings[i].sensed.value() - prev_served_[i]);
      if (own_move <= config_.jump.jump_threshold.value()) continue;
      double neighbour_move = 0.0;
      std::size_t neighbours = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || !is_active(j)) continue;
        if (result.readings[j].die != result.readings[i].die) continue;
        neighbour_move +=
            std::abs(result.readings[j].sensed.value() - prev_served_[j]);
        ++neighbours;
      }
      if (neighbours == 0) continue;  // lone sensor: cannot disambiguate
      neighbour_move /= static_cast<double>(neighbours);
      jumped[i] = neighbour_move < config_.jump.neighbour_allowance.value();
    }
  }

  // Pass C: the per-site state machine.
  for (std::size_t i = 0; i < n; ++i) {
    Site& site = sites_[i];
    const bool degraded_evt = sampled[i] && raw[i].degraded;
    const bool spatial_evt = is_active(i) && verdicts[i].suspect &&
                             !result.readings[i].degraded;
    switch (site.state) {
      case HealthState::kHealthy:
      case HealthState::kSuspect: {
        if (jumped[i]) {
          enter_quarantine(i, scan, "temporal jump isolated from neighbours",
                           &result);
          break;
        }
        if (degraded_evt) {
          site.degraded_streak += 1;
          site.spatial_streak = spatial_evt ? site.spatial_streak + 1 : 0;
          site.clean_streak = 0;
          if (site.degraded_streak >= config_.degraded_quarantine_scans) {
            enter_quarantine(i, scan, "persistently degraded conversions",
                             &result);
          } else if (site.state == HealthState::kHealthy) {
            const std::size_t streak = site.degraded_streak;
            transition(i, HealthState::kSuspect, scan, "degraded conversion",
                       &result);
            site.degraded_streak = streak;
          }
        } else if (spatial_evt) {
          site.spatial_streak += 1;
          site.degraded_streak = 0;
          site.clean_streak = 0;
          if (site.spatial_streak >= config_.spatial_quarantine_scans) {
            enter_quarantine(i, scan, "sustained spatial inconsistency",
                             &result);
          } else if (site.state == HealthState::kHealthy) {
            const std::size_t streak = site.spatial_streak;
            transition(i, HealthState::kSuspect, scan,
                       "spatially inconsistent with neighbours", &result);
            site.spatial_streak = streak;
          }
        } else {
          site.degraded_streak = 0;
          site.spatial_streak = 0;
          if (site.state == HealthState::kSuspect) {
            site.clean_streak += 1;
            if (site.clean_streak >= config_.suspect_clear_scans) {
              transition(i, HealthState::kHealthy, scan, "suspicion cleared",
                         &result);
            }
          }
        }
        break;
      }
      case HealthState::kQuarantined: {
        if (scan < site.next_probe_scan || !sampled[i]) break;
        // Probe: the raw conversion judged directly against the healthy
        // neighbours' estimate (the site itself stays out of the field).
        const bool consistent =
            !has_estimate[i] ||
            std::abs(raw[i].sensed.value() - estimate[i]) <=
                config_.fault.threshold.value();
        if (!raw[i].degraded && consistent) {
          transition(i, HealthState::kProbation, scan,
                     "probe consistent; recalibrating", &result);
          result.recalibrate.push_back(i);
        } else {
          site.probe_attempts += 1;
          if (site.probe_attempts >= config_.max_probe_attempts) {
            transition(i, HealthState::kDead, scan,
                       "probe attempts exhausted", &result);
          } else {
            site.backoff = std::min(
                static_cast<std::uint64_t>(
                    static_cast<double>(site.backoff) *
                    config_.probe_backoff_factor),
                config_.probe_backoff_max);
            site.backoff = std::max<std::uint64_t>(site.backoff, 1);
            site.next_probe_scan = scan + 1 + site.backoff;
          }
        }
        break;
      }
      case HealthState::kProbation: {
        if (jumped[i] || degraded_evt || spatial_evt) {
          enter_quarantine(i, scan, "relapse during probation", &result);
        } else {
          site.clean_streak += 1;
          if (site.clean_streak >= config_.probation_scans) {
            transition(i, HealthState::kHealthy, scan, "probation complete",
                       &result);
            site.probe_attempts = 0;
            site.backoff = 0;
          }
        }
        break;
      }
      case HealthState::kDead:
        break;
    }
  }

  // Pass D: a site quarantined *this* scan must not ship the value that
  // incriminated it — substitute it now that the healthy set is settled.
  for (std::size_t i = 0; i < n; ++i) {
    const HealthState s = sites_[i].state;
    if ((s == HealthState::kQuarantined || s == HealthState::kDead) &&
        !substituted[i]) {
      (void)substitute(i);
      result.substituted += 1;
    }
  }

  // Pass E: stamp health, remember what was served.
  for (std::size_t i = 0; i < n; ++i) {
    result.readings[i].health = static_cast<std::uint8_t>(sites_[i].state);
    sites_[i].last_served_c = result.readings[i].sensed.value();
    sites_[i].has_last_served = true;
    prev_served_[i] = result.readings[i].sensed.value();
    prev_substituted_[i] = result.readings[i].degraded;
  }
  primed_ = true;
  return result;
}

}  // namespace tsvpt::core
