// The physical condition a sensor macro experiences: the ground truth the
// simulation knows and the sensor must estimate.
#pragma once

#include "circuit/supply.hpp"
#include "device/mosfet.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::core {

struct DieEnvironment {
  /// True junction temperature at the macro.
  Kelvin temperature{300.0};
  /// True threshold deviation at the macro (D2D + WID + TSV stress).
  device::VtDelta vt_delta;
  /// Supply rail feeding the macro.
  circuit::SupplyRail supply{};

  [[nodiscard]] DieEnvironment at_temperature(Kelvin t) const {
    DieEnvironment env = *this;
    env.temperature = t;
    return env;
  }
  [[nodiscard]] DieEnvironment at_celsius(Celsius t) const {
    return at_temperature(to_kelvin(t));
  }
};

}  // namespace tsvpt::core
