// Common interface for all temperature sensors in the repo (the proposed PT
// sensor and every baseline), so the comparison benches and the stack
// monitor can treat them uniformly.
#pragma once

#include <string>

#include "core/die_environment.hpp"
#include "ptsim/rng.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::core {

struct TemperatureReading {
  Celsius temperature{0.0};
  /// Energy spent on this conversion.
  Joule energy{0.0};
  /// True when the reading is suspect (saturated counter, failed solve...).
  bool degraded = false;
};

class TemperatureSensor {
 public:
  virtual ~TemperatureSensor() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Perform one conversion in the given environment.  `noise` randomizes
  /// the physical noise sources; nullptr gives the expected-value reading.
  [[nodiscard]] virtual TemperatureReading read(const DieEnvironment& env,
                                                Rng* noise) = 0;
};

}  // namespace tsvpt::core
