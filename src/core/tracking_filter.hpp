// Temporal smoothing of tracking reads.  Counter quantization and rail
// noise make raw conversions jitter by tenths of a degree; thermal time
// constants are milliseconds — so a rate-limited exponential filter removes
// conversion noise without hiding real transients.  Header-only.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ptsim/units.hpp"

namespace tsvpt::core {

class TrackingFilter {
 public:
  struct Config {
    /// Smoothing factor per update in (0, 1]; 1 = no filtering.
    double alpha = 0.35;
    /// Slew bound: the filtered value may move at most this fast.  Bounds
    /// the impact of a single corrupted conversion.  degC per second.
    double max_slew = 5e3;
  };

  TrackingFilter() : TrackingFilter(Config{}) {}
  explicit TrackingFilter(Config config) : config_(config) {
    if (config_.alpha <= 0.0 || config_.alpha > 1.0) {
      throw std::invalid_argument{"TrackingFilter: alpha outside (0, 1]"};
    }
    if (config_.max_slew <= 0.0) {
      throw std::invalid_argument{"TrackingFilter: non-positive slew"};
    }
  }

  [[nodiscard]] bool primed() const { return primed_; }
  [[nodiscard]] Celsius value() const { return Celsius{state_}; }

  /// Feed one raw conversion taken `dt` after the previous one.
  Celsius update(Celsius raw, Second dt) {
    if (dt.value() <= 0.0) {
      throw std::invalid_argument{"TrackingFilter: dt <= 0"};
    }
    if (!primed_) {
      state_ = raw.value();
      primed_ = true;
      return Celsius{state_};
    }
    const double target =
        state_ + config_.alpha * (raw.value() - state_);
    const double bound = config_.max_slew * dt.value();
    state_ += std::clamp(target - state_, -bound, bound);
    return Celsius{state_};
  }

  void reset() { primed_ = false; state_ = 0.0; }

 private:
  Config config_;
  bool primed_ = false;
  double state_ = 0.0;
};

}  // namespace tsvpt::core
