// Baseline temperature sensors the paper's proposal is compared against.
//
//  * UncalibratedRoSensor — a TDRO read through the *typical-corner* model,
//    blind to the die's actual process point.  Shows how much error Vt
//    scatter injects when nothing is calibrated.
//  * TwoPointCalibratedRoSensor — the industry-standard alternative: each
//    die is soaked at two known temperatures on the tester and a linear
//    count→temperature map is fused in.  Accurate, but needs per-die test
//    time and thermal control — exactly the cost the paper's self-calibrated
//    scheme avoids.
//  * DiodeSensor — a conventional BJT/diode analog sensor with ideality and
//    offset spread and an ADC; optionally one-point trimmed.
#pragma once

#include <cstdint>

#include "circuit/counter.hpp"
#include "circuit/energy.hpp"
#include "circuit/ring_oscillator.hpp"
#include "core/die_environment.hpp"
#include "core/sensor_interface.hpp"
#include "device/tech.hpp"

namespace tsvpt::core {

/// TDRO + counter, inverted through the nominal (zero-deviation) model.
class UncalibratedRoSensor final : public TemperatureSensor {
 public:
  struct Config {
    device::Technology tech = device::Technology::tsmc65_like();
    std::size_t tdro_stages = 15;
    circuit::FrequencyCounter::Config counter{
        circuit::ReferenceClock{}, Second{2e-6}, 16};
    /// Far less digital than the PT sensor: no decoupling solver, just a
    /// readout FSM and a LUT walk.
    circuit::ConversionEnergyParams energy{Joule{20e-15}, Joule{60e-12},
                                           Watt{2e-6}};
    Volt model_vdd{1.0};
    Celsius t_min{-40.0};
    Celsius t_max{140.0};
  };

  UncalibratedRoSensor(Config config, std::uint64_t instance_seed);

  [[nodiscard]] std::string name() const override { return "RO-uncal"; }
  [[nodiscard]] TemperatureReading read(const DieEnvironment& env,
                                        Rng* noise) override;

 private:
  Config config_;
  circuit::RingOscillator tdro_;
  device::VtDelta mismatch_;
  circuit::FrequencyCounter counter_;
};

/// TDRO + counter with an external two-point (bath) calibration: the tester
/// exposes the die to two *known* temperatures and stores a linear
/// count->temperature map.  Models the per-die test cost the paper avoids.
class TwoPointCalibratedRoSensor final : public TemperatureSensor {
 public:
  struct Config {
    device::Technology tech = device::Technology::tsmc65_like();
    std::size_t tdro_stages = 15;
    circuit::FrequencyCounter::Config counter{
        circuit::ReferenceClock{}, Second{2e-6}, 16};
    /// Same light digital back-end as the uncalibrated sensor.
    circuit::ConversionEnergyParams energy{Joule{20e-15}, Joule{60e-12},
                                           Watt{2e-6}};
    Celsius cal_low{0.0};
    Celsius cal_high{100.0};
    /// Accuracy of the tester's thermal control at each insertion.
    Celsius bath_accuracy{0.2};
    Volt model_vdd{1.0};
    Celsius t_min{-40.0};
    Celsius t_max{140.0};
  };

  TwoPointCalibratedRoSensor(Config config, std::uint64_t instance_seed);

  /// Run the tester calibration against the die's true environment (the
  /// bath forces the temperature; process/supply are whatever the die has).
  void factory_calibrate(const DieEnvironment& env, Rng* noise);
  [[nodiscard]] bool is_calibrated() const { return calibrated_; }

  [[nodiscard]] std::string name() const override { return "RO-2pt"; }
  [[nodiscard]] TemperatureReading read(const DieEnvironment& env,
                                        Rng* noise) override;

 private:
  [[nodiscard]] circuit::FrequencyCounter::Reading measure(
      const DieEnvironment& env, Rng* noise,
      circuit::ConversionEnergyModel& energy) const;
  /// Invert the design-time nominal TDRO model (curvature removal); the
  /// per-die gain/offset correction is applied on top of this.
  [[nodiscard]] double model_inverse_celsius(Hertz measured) const;

  Config config_;
  circuit::RingOscillator tdro_;
  device::VtDelta mismatch_;
  circuit::FrequencyCounter counter_;
  bool calibrated_ = false;
  // Two-point correction of the model-inverted temperature:
  // T = gain * T_model(f) + offset, exact at the two bath insertions.
  double gain_ = 1.0;
  double offset_ = 0.0;
};

/// Conventional diode/BJT analog sensor: V_BE falls ~ linearly with T, with
/// per-instance spread in slope and offset, digitized by an ADC.
class DiodeSensor final : public TemperatureSensor {
 public:
  struct Config {
    /// Nominal V_BE at 300 K and its slope (V/K).
    Volt vbe_nominal{0.60};
    double slope = -1.73e-3;
    /// Per-instance spreads (process): offset sigma and slope sigma.
    Volt offset_sigma{4e-3};
    double slope_sigma = 0.01e-3;
    /// ADC: input range mapped over 2^bits codes.
    unsigned adc_bits = 10;
    Volt adc_lo{0.35};
    Volt adc_hi{0.75};
    /// Conversion energy (bias + ADC), fixed per read.
    Joule conversion_energy{550e-12};
    /// Input-referred noise per conversion.
    Volt noise_rms{0.15e-3};
    bool one_point_trim = false;
    Celsius trim_temperature{25.0};
  };

  DiodeSensor(Config config, std::uint64_t instance_seed);

  /// Apply the optional one-point production trim (needs a known ambient).
  void trim(const DieEnvironment& env, Rng* noise);

  [[nodiscard]] std::string name() const override {
    return config_.one_point_trim ? "Diode-1pt" : "Diode";
  }
  [[nodiscard]] TemperatureReading read(const DieEnvironment& env,
                                        Rng* noise) override;

 private:
  [[nodiscard]] Volt vbe(Kelvin t, Rng* noise) const;

  Config config_;
  Volt instance_offset_{0.0};
  double instance_slope_ = 0.0;
  Volt trim_correction_{0.0};
  bool trimmed_ = false;
};

}  // namespace tsvpt::core
