#include "core/stack_monitor.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace tsvpt::core {

namespace {

// Per-conversion counting stays a single sharded atomic add; the duration
// histogram wraps whole scans (sample_all), not single conversions, so the
// sensor's Newton solver is never bracketed by clock reads site-by-site.
const obs::Counter& conversions_total() {
  static const obs::Counter c =
      obs::counter("tsvpt_sensor_conversions_total");
  return c;
}

}  // namespace

StackMonitor::StackMonitor(thermal::ThermalNetwork* network,
                           PtSensor::Config sensor_config,
                           std::vector<SensorSite> sites, std::uint64_t seed)
    : network_(network), sites_(std::move(sites)) {
  if (network_ == nullptr) throw std::invalid_argument{"null network"};
  if (sites_.empty()) throw std::invalid_argument{"StackMonitor: no sites"};
  for (const SensorSite& site : sites_) {
    if (site.die >= network_->config().die_count()) {
      throw std::invalid_argument{"StackMonitor: site on missing die"};
    }
  }
  sensors_.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    sensors_.emplace_back(sensor_config, derive_seed(seed, i));
  }
}

DieEnvironment StackMonitor::environment_at(std::size_t i) const {
  const SensorSite& site = sites_[i];
  DieEnvironment env;
  env.temperature = network_->temperature_at(site.die, site.location);
  env.vt_delta = site.vt_delta;
  env.supply = site.supply;
  return env;
}

void StackMonitor::calibrate_all(Rng* noise) {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    (void)sensors_[i].self_calibrate(environment_at(i), noise);
  }
}

StackMonitor::SiteReading StackMonitor::sample_site(std::size_t site_index,
                                                    Rng* noise) {
  if (site_index >= sites_.size()) {
    throw std::out_of_range{"StackMonitor::sample_site"};
  }
  const DieEnvironment env = environment_at(site_index);
  const TemperatureReading reading = sensors_[site_index].read(env, noise);
  SiteReading site_reading;
  site_reading.site_index = site_index;
  site_reading.die = sites_[site_index].die;
  site_reading.location = sites_[site_index].location;
  site_reading.sensed = reading.temperature;
  site_reading.truth = to_celsius(env.temperature);
  site_reading.energy = reading.energy;
  site_reading.degraded = reading.degraded;
  conversions_total().inc();
  return site_reading;
}

Celsius StackMonitor::truth_at(std::size_t site_index) const {
  if (site_index >= sites_.size()) {
    throw std::out_of_range{"StackMonitor::truth_at"};
  }
  const SensorSite& site = sites_[site_index];
  return to_celsius(network_->temperature_at(site.die, site.location));
}

void StackMonitor::set_site_supply(std::size_t site_index,
                                   circuit::SupplyRail supply) {
  if (site_index >= sites_.size()) {
    throw std::out_of_range{"StackMonitor::set_site_supply"};
  }
  sites_[site_index].supply = supply;
}

std::vector<StackMonitor::SiteReading> StackMonitor::sample_all(Rng* noise) {
  static const obs::Histogram scan_seconds =
      obs::histogram("tsvpt_sensor_scan_seconds");
  const obs::ScopedTimer timer{scan_seconds};
  std::vector<SiteReading> out;
  out.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    out.push_back(sample_site(i, noise));
  }
  return out;
}

Celsius StackMonitor::max_sensed(const std::vector<SiteReading>& sample,
                                 std::size_t die) {
  bool found = false;
  double best = -1e30;
  for (const SiteReading& r : sample) {
    if (r.die != die) continue;
    found = true;
    best = std::max(best, r.sensed.value());
  }
  if (!found) throw std::invalid_argument{"max_sensed: no sites on die"};
  return Celsius{best};
}

std::vector<StackMonitor::ProcessReport> StackMonitor::process_map() const {
  std::vector<ProcessReport> out;
  out.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const PtSensor& sensor = sensors_[i];
    ProcessReport report;
    report.site_index = i;
    report.die = sites_[i].die;
    report.location = sites_[i].location;
    const PtSensor::ProcessEstimate& est = sensor.latched_process();
    report.dvtn_hat = est.dvtn;
    report.dvtp_hat = est.dvtp;
    report.dvtn_true = sites_[i].vt_delta.nmos;
    report.dvtp_true = sites_[i].vt_delta.pmos;
    out.push_back(report);
  }
  return out;
}

std::vector<SensorSite> StackMonitor::uniform_sites(
    const thermal::StackConfig& config, std::size_t columns,
    std::size_t rows) {
  if (columns == 0 || rows == 0) {
    throw std::invalid_argument{"uniform_sites: zero grid"};
  }
  std::vector<SensorSite> sites;
  sites.reserve(config.dies.size() * columns * rows);
  for (std::size_t d = 0; d < config.dies.size(); ++d) {
    const thermal::DieGeometry& die = config.dies[d];
    for (std::size_t i = 0; i < columns; ++i) {
      for (std::size_t j = 0; j < rows; ++j) {
        SensorSite site;
        site.die = d;
        site.location = {
            die.width.value() * (static_cast<double>(i) + 0.5) /
                static_cast<double>(columns),
            die.height.value() * (static_cast<double>(j) + 0.5) /
                static_cast<double>(rows)};
        sites.push_back(site);
      }
    }
  }
  return sites;
}

}  // namespace tsvpt::core
