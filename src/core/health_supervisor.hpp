// Per-site sensor health supervision: the layer that *acts* on fault
// verdicts.  FaultDetector and JumpDetector only label a scan; the
// supervisor owns the scan history and drives a per-site state machine
//
//   Healthy -> Suspect -> Quarantined -> Probation -> Healthy
//                              |                          |
//                              +--------> Dead            +--> Quarantined
//
// with bounded retry and exponential backoff on re-probe, graceful
// degradation while quarantined (readings substituted by the
// FieldEstimator's leave-one-out spatial estimate, flagged degraded), and
// forced recalibration on recovery (the caller clears the sensor's latched
// process point for every site in ScanResult::recalibrate).
//
// Evidence per scan and what it means:
//   self-degraded  — the conversion itself failed (dead oscillator,
//                    saturated counter); unambiguous after a short streak.
//   temporal jump  — the site moved faster than physics allows while its
//                    die barely moved (JumpDetector): electronics break
//                    alone, silicon heats neighbourhoods.  Decisive: one
//                    jump quarantines.
//   spatial        — leave-one-out inconsistency (FaultDetector).  Alone it
//                    is ambiguous (a point hotspot on one sensor looks
//                    identical), so it only quarantines when *sustained*
//                    for spatial_quarantine_scans straight scans.
//
// The supervisor is single-threaded per stack: one instance per
// StackMonitor, fed that monitor's scans in order.  Fleet deployments run
// one supervisor per stack inside the sampling worker that owns it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fault_detector.hpp"
#include "core/field_estimator.hpp"
#include "core/stack_monitor.hpp"

namespace tsvpt::core {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kQuarantined = 2,
  kProbation = 3,
  kDead = 4,
};
inline constexpr std::uint8_t kHealthStateCount = 5;

[[nodiscard]] const char* to_string(HealthState state);

class HealthSupervisor {
 public:
  struct Config {
    /// Spatial leave-one-out cross-check (also the probe-consistency bound).
    FaultDetector::Config fault;
    /// Temporal disambiguation between faults and real thermal events.
    JumpDetector::Config jump;
    /// Consecutive self-degraded conversions before quarantine.
    std::size_t degraded_quarantine_scans = 2;
    /// Consecutive spatially-suspect scans (without jump/degraded evidence)
    /// before quarantine — long enough that a transient gradient clears,
    /// short enough that calibration drift is caught.
    std::size_t spatial_quarantine_scans = 5;
    /// Clean scans for a Suspect site to return to Healthy.
    std::size_t suspect_clear_scans = 2;
    /// Scans until the first re-probe of a quarantined site; doubles (by
    /// probe_backoff_factor) on every failed probe up to probe_backoff_max.
    std::uint64_t probe_backoff_initial = 2;
    double probe_backoff_factor = 2.0;
    std::uint64_t probe_backoff_max = 16;
    /// Failed probes before the site is declared Dead (terminal).
    std::size_t max_probe_attempts = 8;
    /// Consecutive clean Probation scans before full Healthy status.
    std::size_t probation_scans = 3;
  };

  struct Transition {
    std::size_t site_index = 0;
    HealthState from = HealthState::kHealthy;
    HealthState to = HealthState::kHealthy;
    /// Scan number (0-based) at which the transition fired.
    std::uint64_t scan = 0;
    std::string reason;
  };

  struct ScanResult {
    /// The readings to serve downstream: raw for Healthy/Suspect/Probation
    /// sites, leave-one-out substitutes (degraded=true) for
    /// Quarantined/Dead sites.  Every reading's `health` byte carries the
    /// site's post-transition state.
    std::vector<StackMonitor::SiteReading> readings;
    std::vector<Transition> transitions;
    /// Sites whose sensors must be recalibrated (probe passed: clear the
    /// latched process point so the next read self-calibrates afresh).
    std::vector<std::size_t> recalibrate;
    /// Readings substituted this scan.
    std::size_t substituted = 0;
  };

  HealthSupervisor() = default;
  explicit HealthSupervisor(Config config);

  /// Whether site i needs an actual conversion for the *next* observe call.
  /// Healthy/Suspect/Probation: always.  Quarantined: only on probe scans
  /// (between probes the conversion energy is saved and the reading
  /// substituted).  Dead: never.
  [[nodiscard]] bool wants_sample(std::size_t site_index) const;

  /// Feed one scan (readings in site order, reading i for site i).
  /// `sampled[i]` marks readings that carry a fresh conversion; pass the
  /// mask built from wants_sample.  Sites not sampled need only site_index,
  /// die, location and (when available) truth filled in.
  ScanResult observe(const std::vector<StackMonitor::SiteReading>& raw,
                     const std::vector<bool>& sampled);
  /// Convenience: every reading is a fresh conversion.
  ScanResult observe(const std::vector<StackMonitor::SiteReading>& raw);

  [[nodiscard]] HealthState state(std::size_t site_index) const;
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] std::size_t quarantined_count() const;
  [[nodiscard]] bool all_healthy() const;
  [[nodiscard]] std::uint64_t scans_observed() const { return scan_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Forget everything (states, streaks, temporal history).
  void reset();

 private:
  struct Site {
    HealthState state = HealthState::kHealthy;
    std::size_t degraded_streak = 0;
    std::size_t spatial_streak = 0;
    std::size_t clean_streak = 0;
    std::size_t probe_attempts = 0;
    std::uint64_t backoff = 0;
    std::uint64_t next_probe_scan = 0;
    /// Last value served for this site (substitution fallback when a die
    /// has no healthy reference left).
    double last_served_c = 0.0;
    bool has_last_served = false;
  };

  void transition(std::size_t i, HealthState to, std::uint64_t scan,
                  std::string reason, ScanResult* result);
  void enter_quarantine(std::size_t i, std::uint64_t scan, std::string reason,
                        ScanResult* result);

  Config config_{};
  FaultDetector detector_{};
  FieldEstimator estimator_{};
  std::vector<Site> sites_;
  /// Last served value per site — the temporal baseline for jump detection
  /// (JumpDetector's semantics, inlined here so the check runs against what
  /// was actually served, with quarantined sites excluded from the
  /// neighbour average).
  std::vector<double> prev_served_;
  /// Whether that served value was a substitute: a jump is only evidence
  /// when both endpoints are raw conversions (the step from an estimate
  /// back to a real reading after recovery is estimation error, not a
  /// sensor breaking).
  std::vector<bool> prev_substituted_;
  bool primed_ = false;
  std::uint64_t scan_ = 0;
};

}  // namespace tsvpt::core
