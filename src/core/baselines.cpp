#include "core/baselines.hpp"

#include <cmath>
#include <stdexcept>

#include "calib/newton.hpp"

namespace tsvpt::core {

// ---------------------------------------------------------------- RO-uncal

UncalibratedRoSensor::UncalibratedRoSensor(Config config,
                                           std::uint64_t instance_seed)
    : config_(std::move(config)),
      tdro_(circuit::RingOscillator::make(config_.tech,
                                          circuit::RoTopology::kThermal,
                                          config_.tdro_stages)),
      counter_(config_.counter) {
  Rng rng{instance_seed};
  // Same macro-internal mismatch scale as the PT sensor's oscillators.
  mismatch_.nmos = Volt{rng.gaussian(0.0, 0.15e-3)};
  mismatch_.pmos = Volt{rng.gaussian(0.0, 0.15e-3)};
  circuit::FrequencyCounter::Config counter_cfg = config_.counter;
  counter_cfg.reference.systematic_ppm = rng.gaussian(0.0, 20.0);
  counter_ = circuit::FrequencyCounter{counter_cfg};
}

TemperatureReading UncalibratedRoSensor::read(const DieEnvironment& env,
                                              Rng* noise) {
  circuit::ConversionEnergyModel energy{config_.energy};
  energy.reset();
  circuit::OperatingPoint op;
  op.vdd = env.supply.effective(noise);
  op.temperature = env.temperature;
  op.vt_delta = env.vt_delta + mismatch_;
  const auto reading = counter_.measure(tdro_.frequency(op), noise);
  energy.add_oscillator_window(tdro_.energy_per_cycle(op.vdd), reading.count,
                               counter_.nominal_window());

  TemperatureReading out;
  out.degraded = reading.saturated;
  const double target = std::log(reading.measured.value());
  auto f = [&](double t_kelvin) {
    circuit::OperatingPoint model_op;
    model_op.vdd = config_.model_vdd;
    model_op.temperature = Kelvin{t_kelvin};
    model_op.vt_delta = {};  // the uncalibrated sensor assumes typical
    return std::log(tdro_.frequency(model_op).value()) - target;
  };
  const double t_lo = to_kelvin(config_.t_min).value();
  const double t_hi = to_kelvin(config_.t_max).value();
  double t_solved;
  try {
    t_solved = calib::brent_root(f, t_lo, t_hi, 1e-9);
  } catch (const std::runtime_error&) {
    t_solved = std::abs(f(t_lo)) < std::abs(f(t_hi)) ? t_lo : t_hi;
    out.degraded = true;
  }
  out.temperature = to_celsius(Kelvin{t_solved});
  out.energy = energy.finish().total();
  return out;
}

// ------------------------------------------------------------------ RO-2pt

TwoPointCalibratedRoSensor::TwoPointCalibratedRoSensor(
    Config config, std::uint64_t instance_seed)
    : config_(std::move(config)),
      tdro_(circuit::RingOscillator::make(config_.tech,
                                          circuit::RoTopology::kThermal,
                                          config_.tdro_stages)),
      counter_(config_.counter) {
  Rng rng{instance_seed};
  mismatch_.nmos = Volt{rng.gaussian(0.0, 0.15e-3)};
  mismatch_.pmos = Volt{rng.gaussian(0.0, 0.15e-3)};
  circuit::FrequencyCounter::Config counter_cfg = config_.counter;
  counter_cfg.reference.systematic_ppm = rng.gaussian(0.0, 20.0);
  counter_ = circuit::FrequencyCounter{counter_cfg};
}

circuit::FrequencyCounter::Reading TwoPointCalibratedRoSensor::measure(
    const DieEnvironment& env, Rng* noise,
    circuit::ConversionEnergyModel& energy) const {
  circuit::OperatingPoint op;
  op.vdd = env.supply.effective(noise);
  op.temperature = env.temperature;
  op.vt_delta = env.vt_delta + mismatch_;
  const auto reading = counter_.measure(tdro_.frequency(op), noise);
  energy.add_oscillator_window(tdro_.energy_per_cycle(op.vdd), reading.count,
                               counter_.nominal_window());
  return reading;
}

double TwoPointCalibratedRoSensor::model_inverse_celsius(
    Hertz measured) const {
  const double target = std::log(measured.value());
  auto f = [&](double t_kelvin) {
    circuit::OperatingPoint op;
    op.vdd = config_.model_vdd;
    op.temperature = Kelvin{t_kelvin};
    return std::log(tdro_.frequency(op).value()) - target;
  };
  const double t_lo = to_kelvin(config_.t_min).value();
  const double t_hi = to_kelvin(config_.t_max).value();
  double t_solved;
  try {
    t_solved = calib::brent_root(f, t_lo, t_hi, 1e-9);
  } catch (const std::runtime_error&) {
    t_solved = std::abs(f(t_lo)) < std::abs(f(t_hi)) ? t_lo : t_hi;
  }
  return to_celsius(Kelvin{t_solved}).value();
}

void TwoPointCalibratedRoSensor::factory_calibrate(const DieEnvironment& env,
                                                   Rng* noise) {
  // Bath insertions: the tester believes it set cal_low / cal_high; the die
  // actually sits within bath_accuracy of that.  The stored correction is a
  // gain/offset on the model-inverted temperature — curvature comes from the
  // design-time model, the per-die shift from the two insertions.
  auto insertion = [&](Celsius setpoint) {
    DieEnvironment bath = env;
    double t = setpoint.value();
    if (noise != nullptr) {
      t += config_.bath_accuracy.value() * noise->gaussian();
    }
    bath.temperature = to_kelvin(Celsius{t});
    circuit::ConversionEnergyModel energy{config_.energy};
    energy.reset();
    return model_inverse_celsius(measure(bath, noise, energy).measured);
  };
  const double raw_low = insertion(config_.cal_low);
  const double raw_high = insertion(config_.cal_high);
  if (raw_low == raw_high) {
    throw std::runtime_error{"factory_calibrate: degenerate points"};
  }
  gain_ = (config_.cal_high.value() - config_.cal_low.value()) /
          (raw_high - raw_low);
  offset_ = config_.cal_low.value() - gain_ * raw_low;
  calibrated_ = true;
}

TemperatureReading TwoPointCalibratedRoSensor::read(const DieEnvironment& env,
                                                    Rng* noise) {
  if (!calibrated_) {
    throw std::logic_error{"TwoPointCalibratedRoSensor: not calibrated"};
  }
  circuit::ConversionEnergyModel energy{config_.energy};
  energy.reset();
  const auto reading = measure(env, noise, energy);
  TemperatureReading out;
  out.degraded = reading.saturated || reading.count == 0;
  const double raw = model_inverse_celsius(reading.measured);
  out.temperature = Celsius{gain_ * raw + offset_};
  out.energy = energy.finish().total();
  return out;
}

// ------------------------------------------------------------------- Diode

DiodeSensor::DiodeSensor(Config config, std::uint64_t instance_seed)
    : config_(std::move(config)) {
  Rng rng{instance_seed};
  instance_offset_ = Volt{rng.gaussian(0.0, config_.offset_sigma.value())};
  instance_slope_ =
      config_.slope + rng.gaussian(0.0, config_.slope_sigma);
}

Volt DiodeSensor::vbe(Kelvin t, Rng* noise) const {
  double v = config_.vbe_nominal.value() + instance_offset_.value() +
             instance_slope_ * (t.value() - 300.0);
  if (noise != nullptr) v += config_.noise_rms.value() * noise->gaussian();
  return Volt{v};
}

void DiodeSensor::trim(const DieEnvironment& env, Rng* noise) {
  // One-point production trim at a known ambient: store the correction that
  // makes the reading exact there (to ADC precision).
  const Kelvin t_true = env.temperature;
  const Volt measured = vbe(t_true, noise);
  const double expected = config_.vbe_nominal.value() +
                          config_.slope * (t_true.value() - 300.0);
  trim_correction_ = Volt{expected - measured.value()};
  trimmed_ = true;
}

TemperatureReading DiodeSensor::read(const DieEnvironment& env, Rng* noise) {
  Volt v = vbe(env.temperature, noise);
  if (trimmed_) v += trim_correction_;

  // ADC quantization over [adc_lo, adc_hi].
  const double span = config_.adc_hi.value() - config_.adc_lo.value();
  const double levels = static_cast<double>((1ULL << config_.adc_bits) - 1);
  double norm = (v.value() - config_.adc_lo.value()) / span;
  TemperatureReading out;
  if (norm < 0.0 || norm > 1.0) out.degraded = true;
  norm = std::clamp(norm, 0.0, 1.0);
  const double code = std::round(norm * levels);
  const double v_q = config_.adc_lo.value() + code / levels * span;

  // Digital back-end inverts the *nominal* transfer curve.
  const double t_kelvin =
      300.0 + (v_q - config_.vbe_nominal.value()) / config_.slope;
  out.temperature = to_celsius(Kelvin{t_kelvin});
  out.energy = config_.conversion_energy;
  return out;
}

}  // namespace tsvpt::core
