// The paper's contribution: a fully on-chip self-calibrated
// process-temperature sensor.
//
// Operating principle (reconstructed from the abstract): the macro contains
// three ring oscillators with linearly independent sensitivity vectors —
// PSRO-N (Vtn-dominated), PSRO-P (Vtp-dominated) and TDRO (temperature-
// dominated) — plus a frequency-to-digital counter and a stored *nominal*
// model of each oscillator (design-time characterization, identical for
// every die; nothing per-die is needed, which is what makes the scheme
// self-calibrating).
//
// A full conversion counts all three oscillators and solves
//
//     ln f_meas,i = ln F_i(dVtn, dVtp, T),   i in {PSRO-N, PSRO-P, TDRO}
//
// for the die's local process point (dVtn, dVtp) and its temperature T with
// a damped Newton iteration — "the process information and temperature can
// be decoupled using the process-sensitive and temperature-dependent ring
// oscillators".  The process point is latched; subsequent cheap *tracking*
// conversions count only the TDRO and invert its model 1-D for T using the
// latched process point.
//
// Error sources faithfully modeled: within-macro mismatch between the
// oscillators (each instance draws a fixed per-RO Vt offset), counter
// quantization and reference-clock error, supply droop/noise (the solver
// assumes nominal VDD; ratio-metric mode divides by a standard RO to cancel
// supply to first order).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "circuit/counter.hpp"
#include "circuit/energy.hpp"
#include "circuit/ring_oscillator.hpp"
#include "circuit/supply.hpp"
#include "core/die_environment.hpp"
#include "core/sensor_interface.hpp"
#include "device/tech.hpp"
#include "ptsim/rng.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::core {

/// Oscillator-bank roles (indices into per-RO arrays).
enum class RoRole : std::size_t {
  kPsroN = 0,
  kPsroP = 1,
  kTdro = 2,
  kStandard = 3,  // reference RO, used by supply-compensated mode
};
inline constexpr std::size_t kRoCount = 4;

/// Injectable oscillator faults (failure analysis / fleet testing).
enum class RoFault {
  kNone,
  /// The oscillator stopped: the counter sees zero edges.
  kDead,
  /// The oscillator latched at a fixed frequency (e.g. coupled to an
  /// aggressor): its output no longer tracks anything.
  kStuck,
};

class PtSensor final : public TemperatureSensor {
 public:
  struct Config {
    device::Technology tech = device::Technology::tsmc65_like();
    std::size_t psro_stages = 31;
    std::size_t tdro_stages = 15;
    std::size_t stdro_stages = 31;
    circuit::FrequencyCounter::Config counter{
        circuit::ReferenceClock{}, Second{2e-6}, 16};
    circuit::ConversionEnergyParams energy;
    /// The rail voltage the stored nominal model assumes.
    Volt model_vdd{1.0};
    /// Within-macro RO-to-RO effective Vt mismatch sigma (per device type).
    /// A chain averages its stages' mismatch: with upsized sensor devices at
    /// sigma(dVt) ~ 0.85 mV each, a 31-stage chain sees 0.85/sqrt(31) ~
    /// 0.15 mV.  This value sets the sensor's accuracy floor and is what
    /// lands the defaults on the paper's +-1.6 mV / +-0.8 mV / +-1.5 degC
    /// spec (see EXPERIMENTS.md error budget).
    Volt ro_mismatch_sigma{0.15e-3};
    /// Solver search box.
    Celsius t_min{-40.0};
    Celsius t_max{140.0};
    Volt vt_search{80e-3};
    /// Sample the local rail with an on-chip VDD monitor and evaluate the
    /// stored model at the *measured* voltage, so IR droop is rejected
    /// instead of aliasing into (dVt, T).  (Solving for VDD as a 4th
    /// unknown of the oscillator bank is ill-conditioned — a rail change is
    /// nearly collinear with a (dVtn, dVtp, T) combination — hence the
    /// direct measurement, as in the group's 2013 PVT-sensor follow-on.)
    bool compensate_supply = false;
    circuit::VddMonitor::Config vdd_monitor;
  };

  /// Per-conversion process/temperature estimate.
  struct ProcessEstimate {
    Volt dvtn{0.0};
    Volt dvtp{0.0};
    Kelvin temperature{300.0};
    /// Estimated rail voltage (model_vdd unless compensate_supply).
    Volt vdd{0.0};
    bool converged = false;
    int iterations = 0;
    double residual = 0.0;
    Joule energy{0.0};
  };

  /// `instance_seed` individualizes the macro: fixed per-RO mismatch and
  /// reference-clock error are drawn once here, then never change — exactly
  /// like a physical instance.
  PtSensor(Config config, std::uint64_t instance_seed);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::string name() const override {
    return config_.compensate_supply ? "PT-sensor(Vcomp)" : "PT-sensor";
  }

  /// Noise-free model frequency of one oscillator at an explicit state —
  /// this *is* the stored nominal model when called with the config's
  /// model_vdd (used by benches to print transfer curves).
  [[nodiscard]] Hertz model_frequency(RoRole role, Volt dvtn, Volt dvtp,
                                      Kelvin t) const;
  /// Model frequency at an explicit rail voltage (compensated mode).
  [[nodiscard]] Hertz model_frequency(RoRole role, Volt dvtn, Volt dvtp,
                                      Kelvin t, Volt vdd) const;

  /// Full conversion: counts all oscillators and jointly solves for
  /// (dVtn, dVtp, T); latches the process point for tracking reads.
  ProcessEstimate self_calibrate(const DieEnvironment& env, Rng* noise);

  [[nodiscard]] bool is_calibrated() const { return latched_.has_value(); }
  [[nodiscard]] const ProcessEstimate& latched_process() const;
  void clear_calibration() { latched_.reset(); }

  /// Cheap tracking conversion: TDRO window only, 1-D inversion with the
  /// latched process point.  Auto-runs self_calibrate on first use.
  [[nodiscard]] TemperatureReading read(const DieEnvironment& env,
                                        Rng* noise) override;

  /// Average of `samples` back-to-back tracking conversions: quantization
  /// and rail noise shrink as 1/sqrt(N) at N-times the energy and latency.
  [[nodiscard]] TemperatureReading read_averaged(const DieEnvironment& env,
                                                 std::size_t samples,
                                                 Rng* noise);

  /// The macro's true per-RO mismatch (test introspection only — the chip
  /// itself never knows these).
  [[nodiscard]] const std::array<device::VtDelta, kRoCount>& mismatch() const {
    return mismatch_;
  }

  /// Inject a fault into one oscillator (kStuck freezes it at the given
  /// frequency).  The sensor keeps operating; degraded readings are the
  /// observable symptom, which the fleet-level FaultDetector catches.
  void inject_fault(RoRole role, RoFault fault, Hertz stuck_at = Hertz{0.0});
  void clear_faults();

  /// Energy of one full self-calibration conversion at nominal conditions.
  [[nodiscard]] Joule calibration_energy() const;
  /// Energy of one tracking conversion at nominal conditions.
  [[nodiscard]] Joule tracking_energy() const;

 private:
  struct WindowResult {
    circuit::FrequencyCounter::Reading reading;
    bool used = false;
  };

  /// Physically measure one oscillator at the given instantaneous rail.
  /// (One rail realization is drawn per conversion: the windows sit
  /// microseconds apart, well inside the PDN's low-frequency correlation
  /// time, and the VDD monitor samples during the same interval.)
  [[nodiscard]] circuit::FrequencyCounter::Reading measure(
      RoRole role, Volt rail, const DieEnvironment& env, Rng* noise,
      circuit::ConversionEnergyModel& energy) const;

  [[nodiscard]] const circuit::RingOscillator& ro(RoRole role) const {
    return bank_[static_cast<std::size_t>(role)];
  }

  /// Rail estimate for this conversion: the monitor's reading of the
  /// conversion's rail realization when compensating, model_vdd otherwise.
  /// Charges the monitor's sample energy.
  [[nodiscard]] Volt rail_estimate(Volt rail, Rng* noise,
                                   circuit::ConversionEnergyModel& energy)
      const;

  Config config_;
  std::array<circuit::RingOscillator, kRoCount> bank_;
  std::array<device::VtDelta, kRoCount> mismatch_;
  std::array<RoFault, kRoCount> faults_{};
  std::array<Hertz, kRoCount> stuck_frequency_{};
  circuit::FrequencyCounter counter_;
  circuit::VddMonitor vdd_monitor_;
  std::optional<ProcessEstimate> latched_;
};

}  // namespace tsvpt::core
