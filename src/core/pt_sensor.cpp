#include "core/pt_sensor.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "calib/newton.hpp"

namespace tsvpt::core {
namespace {

std::array<circuit::RingOscillator, kRoCount> build_bank(
    const PtSensor::Config& cfg) {
  using circuit::RingOscillator;
  using circuit::RoTopology;
  return {RingOscillator::make(cfg.tech, RoTopology::kNmosSensitive,
                               cfg.psro_stages),
          RingOscillator::make(cfg.tech, RoTopology::kPmosSensitive,
                               cfg.psro_stages),
          RingOscillator::make(cfg.tech, RoTopology::kThermal,
                               cfg.tdro_stages),
          RingOscillator::make(cfg.tech, RoTopology::kStandard,
                               cfg.stdro_stages)};
}

}  // namespace

PtSensor::PtSensor(Config config, std::uint64_t instance_seed)
    : config_(std::move(config)), bank_(build_bank(config_)),
      counter_(config_.counter),
      vdd_monitor_(config_.vdd_monitor, derive_seed(instance_seed, 0x5DD)) {
  Rng instance_rng{instance_seed};
  const double sigma = config_.ro_mismatch_sigma.value();
  for (auto& m : mismatch_) {
    m.nmos = Volt{instance_rng.gaussian(0.0, sigma)};
    m.pmos = Volt{instance_rng.gaussian(0.0, sigma)};
  }
  // Per-instance reference-clock error: +-20 ppm systematic, drawn once.
  circuit::FrequencyCounter::Config counter_cfg = config_.counter;
  counter_cfg.reference.systematic_ppm = instance_rng.gaussian(0.0, 20.0);
  counter_ = circuit::FrequencyCounter{counter_cfg};
}

Hertz PtSensor::model_frequency(RoRole role, Volt dvtn, Volt dvtp,
                                Kelvin t) const {
  return model_frequency(role, dvtn, dvtp, t, config_.model_vdd);
}

Hertz PtSensor::model_frequency(RoRole role, Volt dvtn, Volt dvtp, Kelvin t,
                                Volt vdd) const {
  circuit::OperatingPoint op;
  op.vdd = vdd;
  op.temperature = t;
  op.vt_delta = {dvtn, dvtp};
  return ro(role).frequency(op);
}

void PtSensor::inject_fault(RoRole role, RoFault fault, Hertz stuck_at) {
  faults_[static_cast<std::size_t>(role)] = fault;
  stuck_frequency_[static_cast<std::size_t>(role)] = stuck_at;
}

void PtSensor::clear_faults() {
  faults_.fill(RoFault::kNone);
}

circuit::FrequencyCounter::Reading PtSensor::measure(
    RoRole role, Volt rail, const DieEnvironment& env, Rng* noise,
    circuit::ConversionEnergyModel& energy) const {
  circuit::OperatingPoint op;
  op.vdd = rail;
  op.temperature = env.temperature;
  op.vt_delta = env.vt_delta + mismatch_[static_cast<std::size_t>(role)];
  Hertz f_true = ro(role).frequency(op);
  switch (faults_[static_cast<std::size_t>(role)]) {
    case RoFault::kNone:
      break;
    case RoFault::kDead:
      f_true = Hertz{0.0};
      break;
    case RoFault::kStuck:
      f_true = stuck_frequency_[static_cast<std::size_t>(role)];
      break;
  }
  const auto reading = counter_.measure(f_true, noise);
  energy.add_oscillator_window(ro(role).energy_per_cycle(op.vdd),
                               reading.count, counter_.nominal_window());
  return reading;
}

PtSensor::ProcessEstimate PtSensor::self_calibrate(const DieEnvironment& env,
                                                   Rng* noise) {
  circuit::ConversionEnergyModel energy{config_.energy};
  energy.reset();

  const Volt rail = env.supply.effective(noise);
  const Volt vdd_hat = rail_estimate(rail, noise, energy);

  const std::array<RoRole, 3> roles{RoRole::kPsroN, RoRole::kPsroP,
                                    RoRole::kTdro};
  std::array<double, 3> meas{};
  for (std::size_t i = 0; i < roles.size(); ++i) {
    const auto reading = measure(roles[i], rail, env, noise, energy);
    if (reading.measured.value() <= 0.0) {
      // A dead oscillator: no information to solve with.  Report a
      // non-converged estimate rather than poisoning the solver with
      // log(0); the caller sees converged == false.
      ProcessEstimate failed;
      failed.vdd = vdd_hat;
      failed.energy = energy.finish().total();
      latched_ = failed;
      return failed;
    }
    meas[i] = std::log(reading.measured.value());
  }

  // Residual of the stored nominal model — evaluated at the rail estimate —
  // vs the measurement.  Unknowns: (dVtn, dVtp, T).
  auto residual = [&](const calib::Vector& x) {
    const Volt dvtn{x[0]};
    const Volt dvtp{x[1]};
    const Kelvin t{x[2]};
    calib::Vector r(roles.size());
    for (std::size_t i = 0; i < roles.size(); ++i) {
      r[i] =
          std::log(model_frequency(roles[i], dvtn, dvtp, t, vdd_hat).value()) -
          meas[i];
    }
    return r;
  };

  calib::NewtonOptions options;
  options.max_iterations = 80;
  options.tolerance = 1e-10;
  const double vt_box = config_.vt_search.value();
  options.lower_bounds = {-vt_box, -vt_box, to_kelvin(config_.t_min).value()};
  options.upper_bounds = {+vt_box, +vt_box, to_kelvin(config_.t_max).value()};
  const calib::NewtonResult solved =
      calib::newton_solve(residual, calib::Vector{0.0, 0.0, 305.0}, options);

  ProcessEstimate estimate;
  estimate.dvtn = Volt{solved.x[0]};
  estimate.dvtp = Volt{solved.x[1]};
  estimate.temperature = Kelvin{solved.x[2]};
  estimate.vdd = vdd_hat;
  estimate.converged = solved.converged;
  estimate.iterations = solved.iterations;
  estimate.residual = solved.residual;
  estimate.energy = energy.finish().total();
  latched_ = estimate;
  return estimate;
}

const PtSensor::ProcessEstimate& PtSensor::latched_process() const {
  if (!latched_) throw std::logic_error{"PtSensor: not calibrated"};
  return *latched_;
}

TemperatureReading PtSensor::read(const DieEnvironment& env, Rng* noise) {
  if (!latched_) {
    // Power-on: first conversion is the full self-calibration.
    const ProcessEstimate est = self_calibrate(env, noise);
    return {to_celsius(est.temperature), est.energy, !est.converged};
  }

  circuit::ConversionEnergyModel energy{config_.energy};
  energy.reset();
  const Volt rail = env.supply.effective(noise);
  const Volt vdd_hat = rail_estimate(rail, noise, energy);
  const auto r_t = measure(RoRole::kTdro, rail, env, noise, energy);

  TemperatureReading out;
  out.degraded = r_t.saturated;
  const Volt dvtn = latched_->dvtn;
  const Volt dvtp = latched_->dvtp;
  const double t_lo = to_kelvin(config_.t_min).value();
  const double t_hi = to_kelvin(config_.t_max).value();

  if (r_t.measured.value() <= 0.0) {
    // Dead TDRO: clamp to the range floor and flag — the fleet-level fault
    // detector is responsible for spotting the dead site.
    out.degraded = true;
    out.temperature = config_.t_min;
    out.energy = energy.finish().total();
    return out;
  }
  const double target = std::log(r_t.measured.value());
  auto f = [&](double t_kelvin) {
    return std::log(model_frequency(RoRole::kTdro, dvtn, dvtp,
                                    Kelvin{t_kelvin}, vdd_hat)
                        .value()) -
           target;
  };
  double t_solved;
  try {
    t_solved = calib::brent_root(f, t_lo, t_hi, 1e-9);
  } catch (const std::runtime_error&) {
    // Out-of-range frequency: clamp to the nearer end and flag it.
    t_solved = std::abs(f(t_lo)) < std::abs(f(t_hi)) ? t_lo : t_hi;
    out.degraded = true;
  }
  out.temperature = to_celsius(Kelvin{t_solved});
  out.energy = energy.finish().total();
  return out;
}

TemperatureReading PtSensor::read_averaged(const DieEnvironment& env,
                                           std::size_t samples, Rng* noise) {
  if (samples == 0) {
    throw std::invalid_argument{"read_averaged: zero samples"};
  }
  TemperatureReading out;
  double acc = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const TemperatureReading one = read(env, noise);
    acc += one.temperature.value();
    out.energy += one.energy;
    out.degraded = out.degraded || one.degraded;
  }
  out.temperature = Celsius{acc / static_cast<double>(samples)};
  return out;
}

Volt PtSensor::rail_estimate(Volt rail, Rng* noise,
                             circuit::ConversionEnergyModel& energy) const {
  if (!config_.compensate_supply) return config_.model_vdd;
  energy.add_auxiliary(vdd_monitor_.sample_energy());
  return vdd_monitor_.measure(rail, noise);
}

Joule PtSensor::calibration_energy() const {
  PtSensor probe = *this;
  DieEnvironment env;
  env.supply = circuit::SupplyRail{{config_.model_vdd, Volt{0.0}, Volt{0.0}}};
  return probe.self_calibrate(env, nullptr).energy;
}

Joule PtSensor::tracking_energy() const {
  PtSensor probe = *this;
  DieEnvironment env;
  env.supply = circuit::SupplyRail{{config_.model_vdd, Volt{0.0}, Volt{0.0}}};
  (void)probe.self_calibrate(env, nullptr);
  return probe.read(env, nullptr).energy;
}

}  // namespace tsvpt::core
