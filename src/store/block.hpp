// Block codec for the telemetry historian: a block is the unit of
// compression, CRC protection and query skipping inside a segment file.
// Frames are appended in arrival order (stacks interleave freely) and
// compressed against per-stack context that lives only within the block, so
// any block decodes standalone:
//
//   [magic u32 "TSVB"] [payload_size u32] [frame_count u32] [stack_count u32]
//   [t_min f64] [t_max f64] [raw_bytes u64]
//   stack_count x [stack_id u32]          (sorted, unique)
//   [header_crc u32]                      (CRC-32 of everything above)
//   payload bytes                         (compressed frame records)
//   [payload_crc u32]                     (CRC-32 of the payload)
//
// The header carries the block's time span, stack-id set and frame count so
// a reader can build a sparse index — and skip whole blocks on a time or
// stack filter — without touching the payload.  `raw_bytes` is the size the
// same frames occupy in the raw wire codec (telemetry::encoded_size), kept
// for compression accounting.
//
// Payload compression.  The first frame a block sees from a stack (or any
// frame whose site layout changed) is a *key* frame: absolute values,
// including the per-site layout (site index, die, x/y location).  Every
// later frame of that stack is a *delta* frame: the layout is elided
// entirely (it repeats scan to scan), sequence / sim-time-bits /
// capture_ns are delta-of-delta + zigzag varints (steady sampling makes
// second differences ~0), and each site's sensed/truth/energy doubles are
// XOR-ed against the previous frame's same-site bit pattern and written as
// varints — close doubles share sign/exponent/high-mantissa bits, so the
// XOR is a small integer (and counter quantization makes repeats exact, one
// byte).  Everything is lossless: decode reproduces the Frame structs
// bit-for-bit, so re-encoding through the wire codec yields identical
// bytes and CRCs.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/frame.hpp"

namespace tsvpt::store {

/// "TSVB" little-endian.
inline constexpr std::uint32_t kBlockMagic = 0x42565354u;
/// Fixed-width header prefix: magic, payload_size, frame_count, stack_count,
/// t_min, t_max, raw_bytes.  Followed by stack ids and the header CRC.
inline constexpr std::size_t kBlockFixedHeaderSize = 4 + 4 + 4 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kBlockCrcSize = 4;
/// Decode-time sanity bounds (corrupt or hostile length fields must be
/// refused before any allocation is sized from them).
inline constexpr std::uint32_t kMaxBlockFrames = 1u << 22;
inline constexpr std::uint32_t kMaxBlockStacks = 1u << 16;
inline constexpr std::uint32_t kMaxBlockPayload = 1u << 30;

struct BlockHeader {
  std::uint32_t payload_size = 0;
  std::uint32_t frame_count = 0;
  /// Simulated-time span of the contained frames.
  double t_min = 0.0;
  double t_max = 0.0;
  /// Bytes the same frames occupy in the raw wire codec.
  std::uint64_t raw_bytes = 0;
  /// Sorted unique stack ids present in the block.
  std::vector<std::uint32_t> stack_ids;

  /// Total on-disk size of the block record this header describes.
  [[nodiscard]] std::size_t record_size() const {
    return kBlockFixedHeaderSize + stack_ids.size() * 4 + kBlockCrcSize +
           payload_size + kBlockCrcSize;
  }

  [[nodiscard]] bool contains_stack(std::uint32_t stack_id) const;
  /// True when [t_min, t_max] intersects the queried closed interval.
  [[nodiscard]] bool overlaps(double query_t_min, double query_t_max) const {
    return t_min <= query_t_max && t_max >= query_t_min;
  }
};

enum class BlockStatus {
  kOk,
  /// Buffer ends before the layout promises (the torn-tail case).
  kTruncated,
  kBadMagic,
  /// Header length fields exceed the sanity bounds.
  kBadHeader,
  kBadHeaderCrc,
  kBadPayloadCrc,
  /// Payload CRC matched but the frame records are structurally invalid
  /// (cannot happen from torn writes; indicates a codec bug or a forged
  /// CRC) — nothing is returned.
  kBadFrame,
};

[[nodiscard]] const char* to_string(BlockStatus status);

/// Accumulates frames into a compressed payload and seals them into a block
/// record.  Reusable: seal() resets the builder for the next block.
class BlockBuilder {
 public:
  void add(const telemetry::Frame& frame);

  [[nodiscard]] bool empty() const { return frame_count_ == 0; }
  [[nodiscard]] std::size_t frame_count() const { return frame_count_; }
  /// Compressed payload bytes buffered so far (header/CRC not included).
  [[nodiscard]] std::size_t payload_bytes() const { return payload_.size(); }
  [[nodiscard]] std::uint64_t raw_bytes() const { return raw_bytes_; }

  /// Seal buffered frames into a complete block record (header + payload +
  /// CRCs) and reset.  Must not be called empty.
  [[nodiscard]] std::vector<std::uint8_t> seal();

  void clear();

 private:
  struct SiteContext {
    std::uint64_t sensed_bits = 0;
    std::uint64_t truth_bits = 0;
    std::uint64_t energy_bits = 0;
    std::uint8_t flags = 0;  // degraded | health << 1
  };
  struct StackContext {
    std::vector<core::StackMonitor::SiteReading> layout;
    std::vector<SiteContext> sites;
    std::uint64_t sequence = 0;
    std::int64_t sequence_delta = 1;
    std::uint64_t sim_time_bits = 0;
    std::int64_t sim_time_delta = 0;
    std::uint64_t capture_ns = 0;
    std::int64_t capture_delta = 0;
  };

  [[nodiscard]] static bool layout_matches(const StackContext& ctx,
                                           const telemetry::Frame& frame);

  std::vector<std::uint8_t> payload_;
  std::vector<StackContext> contexts_;       // parallel to context_ids_
  std::vector<std::uint32_t> context_ids_;   // stack id per context
  std::size_t frame_count_ = 0;
  std::uint64_t raw_bytes_ = 0;
  double t_min_ = 0.0;
  double t_max_ = 0.0;
};

/// Parse and validate a block header at data[0].  On kOk, `out` is filled
/// and the full record occupies out.record_size() bytes (the payload may
/// still extend past `size` — callers check before touching it).  Never
/// reads past `size`.
[[nodiscard]] BlockStatus parse_block_header(const std::uint8_t* data,
                                             std::size_t size,
                                             BlockHeader& out);

/// Decode a complete block record (as produced by BlockBuilder::seal) back
/// into frames, verifying both CRCs.  Appends to `out` only on kOk.
[[nodiscard]] BlockStatus decode_block(const std::uint8_t* data,
                                       std::size_t size,
                                       std::vector<telemetry::Frame>& out);

}  // namespace tsvpt::store
