#include "store/block.hpp"

#include <algorithm>
#include <bit>

#include "core/health_supervisor.hpp"
#include "telemetry/codec_util.hpp"

namespace tsvpt::store {

namespace {

using telemetry::ByteCursor;
using telemetry::crc32;
using telemetry::put_f64;
using telemetry::put_u32;
using telemetry::put_u64;
using telemetry::put_u8;
using telemetry::put_varint;
using telemetry::zigzag_decode;
using telemetry::zigzag_encode;

constexpr std::uint8_t kKeyFrame = 1;
constexpr std::uint8_t kDeltaFrame = 0;

[[nodiscard]] std::uint8_t pack_flags(
    const core::StackMonitor::SiteReading& r) {
  return static_cast<std::uint8_t>((r.degraded ? 1u : 0u) |
                                   (static_cast<unsigned>(r.health) << 1));
}

/// Second difference against context: new_delta = value - prev, emitted as
/// zigzag(new_delta - prev_delta).  All arithmetic wraps in u64 space so
/// arbitrary bit patterns (doubles reinterpreted as integers) are safe.
void put_dod(std::vector<std::uint8_t>& out, std::uint64_t value,
             std::uint64_t& prev, std::int64_t& prev_delta) {
  const auto delta = static_cast<std::int64_t>(value - prev);
  put_varint(out, zigzag_encode(delta - prev_delta));
  prev = value;
  prev_delta = delta;
}

[[nodiscard]] bool get_dod(ByteCursor& in, std::uint64_t& prev,
                           std::int64_t& prev_delta, std::uint64_t& out) {
  std::uint64_t zz = 0;
  if (!in.varint(zz)) return false;
  const std::int64_t delta = prev_delta + zigzag_decode(zz);
  out = prev + static_cast<std::uint64_t>(delta);
  prev = out;
  prev_delta = delta;
  return true;
}

}  // namespace

bool BlockHeader::contains_stack(std::uint32_t stack_id) const {
  return std::binary_search(stack_ids.begin(), stack_ids.end(), stack_id);
}

const char* to_string(BlockStatus status) {
  switch (status) {
    case BlockStatus::kOk: return "ok";
    case BlockStatus::kTruncated: return "truncated";
    case BlockStatus::kBadMagic: return "bad-magic";
    case BlockStatus::kBadHeader: return "bad-header";
    case BlockStatus::kBadHeaderCrc: return "bad-header-crc";
    case BlockStatus::kBadPayloadCrc: return "bad-payload-crc";
    case BlockStatus::kBadFrame: return "bad-frame";
  }
  return "unknown";
}

bool BlockBuilder::layout_matches(const StackContext& ctx,
                                  const telemetry::Frame& frame) {
  if (ctx.layout.size() != frame.readings.size()) return false;
  for (std::size_t i = 0; i < ctx.layout.size(); ++i) {
    const auto& a = ctx.layout[i];
    const auto& b = frame.readings[i];
    if (a.site_index != b.site_index || a.die != b.die ||
        a.location.x != b.location.x || a.location.y != b.location.y) {
      return false;
    }
  }
  return true;
}

// hot(lock,io): add() runs on the collector thread once per routed frame;
// it may grow its column buffers, but blocking on a mutex or touching the
// filesystem belongs in seal(), never in the per-frame append.
void BlockBuilder::add(const telemetry::Frame& frame) {
  const double t = frame.sim_time.value();
  if (frame_count_ == 0) {
    t_min_ = t_max_ = t;
  } else {
    t_min_ = std::min(t_min_, t);
    t_max_ = std::max(t_max_, t);
  }
  frame_count_ += 1;
  raw_bytes_ += telemetry::encoded_size(frame.readings.size());

  StackContext* ctx = nullptr;
  for (std::size_t i = 0; i < context_ids_.size(); ++i) {
    if (context_ids_[i] == frame.stack_id) {
      ctx = &contexts_[i];
      break;
    }
  }
  if (ctx == nullptr) {
    context_ids_.push_back(frame.stack_id);
    contexts_.emplace_back();
    ctx = &contexts_.back();
    ctx->layout.clear();  // forces a key frame below
  }

  put_varint(payload_, frame.stack_id);
  const bool key = !layout_matches(*ctx, frame);
  put_u8(payload_, key ? kKeyFrame : kDeltaFrame);
  put_varint(payload_, frame.readings.size());

  if (key) {
    put_varint(payload_, frame.sequence);
    put_u64(payload_, std::bit_cast<std::uint64_t>(t));
    put_varint(payload_, frame.capture_ns);
    ctx->sequence = frame.sequence;
    ctx->sequence_delta = 1;
    ctx->sim_time_bits = std::bit_cast<std::uint64_t>(t);
    ctx->sim_time_delta = 0;
    ctx->capture_ns = frame.capture_ns;
    ctx->capture_delta = 0;
    ctx->layout = frame.readings;
    ctx->sites.assign(frame.readings.size(), SiteContext{});
    // Key-frame doubles XOR against the *previous site in this frame*
    // (site 0 against zero): grid-adjacent sites share sign, exponent and
    // high mantissa bits — and y repeats exactly along a grid row — so the
    // XORs varint-encode small even with no earlier frame to delta from.
    std::uint64_t prev_x = 0;
    std::uint64_t prev_y = 0;
    std::uint64_t prev_sensed = 0;
    std::uint64_t prev_truth = 0;
    std::uint64_t prev_energy = 0;
    for (std::size_t i = 0; i < frame.readings.size(); ++i) {
      const auto& r = frame.readings[i];
      const std::uint64_t x = std::bit_cast<std::uint64_t>(r.location.x);
      const std::uint64_t y = std::bit_cast<std::uint64_t>(r.location.y);
      const std::uint64_t sensed =
          std::bit_cast<std::uint64_t>(r.sensed.value());
      const std::uint64_t truth = std::bit_cast<std::uint64_t>(r.truth.value());
      const std::uint64_t energy =
          std::bit_cast<std::uint64_t>(r.energy.value());
      put_varint(payload_, r.site_index);
      put_varint(payload_, r.die);
      put_varint(payload_, x ^ prev_x);
      put_varint(payload_, y ^ prev_y);
      put_varint(payload_, sensed ^ prev_sensed);
      put_varint(payload_, truth ^ prev_truth);
      put_varint(payload_, energy ^ prev_energy);
      put_u8(payload_, pack_flags(r));
      prev_x = x;
      prev_y = y;
      prev_sensed = sensed;
      prev_truth = truth;
      prev_energy = energy;
      ctx->sites[i] = {sensed, truth, energy, pack_flags(r)};
    }
    return;
  }

  put_dod(payload_, frame.sequence, ctx->sequence, ctx->sequence_delta);
  put_dod(payload_, std::bit_cast<std::uint64_t>(t), ctx->sim_time_bits,
          ctx->sim_time_delta);
  put_dod(payload_, frame.capture_ns, ctx->capture_ns, ctx->capture_delta);
  for (std::size_t i = 0; i < frame.readings.size(); ++i) {
    const auto& r = frame.readings[i];
    SiteContext& site = ctx->sites[i];
    const std::uint64_t sensed = std::bit_cast<std::uint64_t>(r.sensed.value());
    const std::uint64_t truth = std::bit_cast<std::uint64_t>(r.truth.value());
    const std::uint64_t energy = std::bit_cast<std::uint64_t>(r.energy.value());
    const std::uint8_t flags = pack_flags(r);
    put_varint(payload_, sensed ^ site.sensed_bits);
    put_varint(payload_, truth ^ site.truth_bits);
    put_varint(payload_, energy ^ site.energy_bits);
    put_varint(payload_, static_cast<std::uint64_t>(flags ^ site.flags));
    site = {sensed, truth, energy, flags};
  }
}

std::vector<std::uint8_t> BlockBuilder::seal() {
  std::vector<std::uint32_t> ids = context_ids_;
  std::sort(ids.begin(), ids.end());

  std::vector<std::uint8_t> out;
  out.reserve(kBlockFixedHeaderSize + ids.size() * 4 + kBlockCrcSize +
              payload_.size() + kBlockCrcSize);
  put_u32(out, kBlockMagic);
  put_u32(out, static_cast<std::uint32_t>(payload_.size()));
  put_u32(out, static_cast<std::uint32_t>(frame_count_));
  put_u32(out, static_cast<std::uint32_t>(ids.size()));
  put_f64(out, t_min_);
  put_f64(out, t_max_);
  put_u64(out, raw_bytes_);
  for (const std::uint32_t id : ids) put_u32(out, id);
  put_u32(out, crc32(out.data(), out.size()));
  out.insert(out.end(), payload_.begin(), payload_.end());
  put_u32(out, crc32(payload_.data(), payload_.size()));
  clear();
  return out;
}

void BlockBuilder::clear() {
  payload_.clear();
  contexts_.clear();
  context_ids_.clear();
  frame_count_ = 0;
  raw_bytes_ = 0;
  t_min_ = t_max_ = 0.0;
}

BlockStatus parse_block_header(const std::uint8_t* data, std::size_t size,
                               BlockHeader& out) {
  if (data == nullptr || size < kBlockFixedHeaderSize + kBlockCrcSize) {
    return BlockStatus::kTruncated;
  }
  ByteCursor in{data, size};
  std::uint32_t magic = 0;
  (void)in.u32(magic);
  if (magic != kBlockMagic) return BlockStatus::kBadMagic;
  BlockHeader header;
  std::uint32_t stack_count = 0;
  (void)in.u32(header.payload_size);
  (void)in.u32(header.frame_count);
  (void)in.u32(stack_count);
  (void)in.f64(header.t_min);
  (void)in.f64(header.t_max);
  (void)in.u64(header.raw_bytes);
  if (header.payload_size > kMaxBlockPayload ||
      header.frame_count > kMaxBlockFrames || stack_count > kMaxBlockStacks) {
    return BlockStatus::kBadHeader;
  }
  if (in.remaining() < stack_count * std::size_t{4} + kBlockCrcSize) {
    return BlockStatus::kTruncated;
  }
  header.stack_ids.reserve(stack_count);
  for (std::uint32_t i = 0; i < stack_count; ++i) {
    std::uint32_t id = 0;
    (void)in.u32(id);
    header.stack_ids.push_back(id);
  }
  const std::size_t header_bytes = in.pos();
  std::uint32_t header_crc = 0;
  (void)in.u32(header_crc);
  if (crc32(data, header_bytes) != header_crc) {
    return BlockStatus::kBadHeaderCrc;
  }
  out = std::move(header);
  return BlockStatus::kOk;
}

BlockStatus decode_block(const std::uint8_t* data, std::size_t size,
                         std::vector<telemetry::Frame>& out) {
  BlockHeader header;
  const BlockStatus header_status = parse_block_header(data, size, header);
  if (header_status != BlockStatus::kOk) return header_status;
  if (size < header.record_size()) return BlockStatus::kTruncated;

  const std::size_t payload_offset =
      kBlockFixedHeaderSize + header.stack_ids.size() * 4 + kBlockCrcSize;
  const std::uint8_t* payload = data + payload_offset;
  if (crc32(payload, header.payload_size) !=
      telemetry::get_u32(payload + header.payload_size)) {
    return BlockStatus::kBadPayloadCrc;
  }

  // Decoder-side mirror of BlockBuilder's per-stack contexts.
  struct SiteContext {
    std::uint64_t sensed_bits = 0;
    std::uint64_t truth_bits = 0;
    std::uint64_t energy_bits = 0;
    std::uint8_t flags = 0;
  };
  struct StackContext {
    std::vector<core::StackMonitor::SiteReading> layout;
    std::vector<SiteContext> sites;
    std::uint64_t sequence = 0;
    std::int64_t sequence_delta = 1;
    std::uint64_t sim_time_bits = 0;
    std::int64_t sim_time_delta = 0;
    std::uint64_t capture_ns = 0;
    std::int64_t capture_delta = 0;
  };
  std::vector<std::uint32_t> context_ids;
  std::vector<StackContext> contexts;

  std::vector<telemetry::Frame> frames;
  frames.reserve(header.frame_count);
  ByteCursor in{payload, header.payload_size};
  for (std::uint32_t f = 0; f < header.frame_count; ++f) {
    std::uint64_t stack_id = 0;
    std::uint8_t kind = 0;
    std::uint64_t site_count = 0;
    if (!in.varint(stack_id) || !in.u8(kind) || !in.varint(site_count)) {
      return BlockStatus::kBadFrame;
    }
    if (stack_id > 0xFFFFFFFFull || kind > kKeyFrame ||
        site_count > telemetry::kMaxSiteCount) {
      return BlockStatus::kBadFrame;
    }

    StackContext* ctx = nullptr;
    for (std::size_t i = 0; i < context_ids.size(); ++i) {
      if (context_ids[i] == stack_id) {
        ctx = &contexts[i];
        break;
      }
    }
    if (ctx == nullptr) {
      if (kind != kKeyFrame) return BlockStatus::kBadFrame;
      context_ids.push_back(static_cast<std::uint32_t>(stack_id));
      contexts.emplace_back();
      ctx = &contexts.back();
    }

    telemetry::Frame frame;
    frame.stack_id = static_cast<std::uint32_t>(stack_id);
    frame.readings.reserve(site_count);

    if (kind == kKeyFrame) {
      std::uint64_t sim_bits = 0;
      if (!in.varint(frame.sequence) || !in.u64(sim_bits) ||
          !in.varint(frame.capture_ns)) {
        return BlockStatus::kBadFrame;
      }
      frame.sim_time = Second{std::bit_cast<double>(sim_bits)};
      ctx->sequence = frame.sequence;
      ctx->sequence_delta = 1;
      ctx->sim_time_bits = sim_bits;
      ctx->sim_time_delta = 0;
      ctx->capture_ns = frame.capture_ns;
      ctx->capture_delta = 0;
      ctx->layout.clear();
      ctx->sites.assign(site_count, SiteContext{});
      // Mirror of the encoder's XOR-vs-previous-site chain.
      std::uint64_t prev_x = 0;
      std::uint64_t prev_y = 0;
      std::uint64_t prev_sensed = 0;
      std::uint64_t prev_truth = 0;
      std::uint64_t prev_energy = 0;
      for (std::uint64_t i = 0; i < site_count; ++i) {
        core::StackMonitor::SiteReading r;
        std::uint64_t site_index = 0;
        std::uint64_t die = 0;
        std::uint64_t x_xor = 0;
        std::uint64_t y_xor = 0;
        std::uint64_t sensed_xor = 0;
        std::uint64_t truth_xor = 0;
        std::uint64_t energy_xor = 0;
        std::uint8_t flags = 0;
        if (!in.varint(site_index) || !in.varint(die) || !in.varint(x_xor) ||
            !in.varint(y_xor) || !in.varint(sensed_xor) ||
            !in.varint(truth_xor) || !in.varint(energy_xor) ||
            !in.u8(flags)) {
          return BlockStatus::kBadFrame;
        }
        if (site_index >= site_count ||
            (flags >> 1) >= core::kHealthStateCount) {
          return BlockStatus::kBadFrame;
        }
        prev_x ^= x_xor;
        prev_y ^= y_xor;
        prev_sensed ^= sensed_xor;
        prev_truth ^= truth_xor;
        prev_energy ^= energy_xor;
        r.site_index = static_cast<std::size_t>(site_index);
        r.die = static_cast<std::size_t>(die);
        r.location.x = std::bit_cast<double>(prev_x);
        r.location.y = std::bit_cast<double>(prev_y);
        r.sensed = Celsius{std::bit_cast<double>(prev_sensed)};
        r.truth = Celsius{std::bit_cast<double>(prev_truth)};
        r.energy = Joule{std::bit_cast<double>(prev_energy)};
        r.degraded = (flags & 1u) != 0;
        r.health = static_cast<std::uint8_t>(flags >> 1);
        ctx->sites[i] = {prev_sensed, prev_truth, prev_energy, flags};
        frame.readings.push_back(r);
      }
      ctx->layout = frame.readings;
    } else {
      if (site_count != ctx->layout.size()) return BlockStatus::kBadFrame;
      std::uint64_t sim_bits = 0;
      if (!get_dod(in, ctx->sequence, ctx->sequence_delta, frame.sequence) ||
          !get_dod(in, ctx->sim_time_bits, ctx->sim_time_delta, sim_bits) ||
          !get_dod(in, ctx->capture_ns, ctx->capture_delta,
                   frame.capture_ns)) {
        return BlockStatus::kBadFrame;
      }
      frame.sim_time = Second{std::bit_cast<double>(sim_bits)};
      for (std::uint64_t i = 0; i < site_count; ++i) {
        core::StackMonitor::SiteReading r = ctx->layout[i];
        SiteContext& site = ctx->sites[i];
        std::uint64_t sensed_xor = 0;
        std::uint64_t truth_xor = 0;
        std::uint64_t energy_xor = 0;
        std::uint64_t flags_xor = 0;
        if (!in.varint(sensed_xor) || !in.varint(truth_xor) ||
            !in.varint(energy_xor) || !in.varint(flags_xor)) {
          return BlockStatus::kBadFrame;
        }
        if (flags_xor > 0xFFu) return BlockStatus::kBadFrame;
        const std::uint8_t flags =
            static_cast<std::uint8_t>(site.flags ^ flags_xor);
        if ((flags >> 1) >= core::kHealthStateCount) {
          return BlockStatus::kBadFrame;
        }
        site.sensed_bits ^= sensed_xor;
        site.truth_bits ^= truth_xor;
        site.energy_bits ^= energy_xor;
        site.flags = flags;
        r.sensed = Celsius{std::bit_cast<double>(site.sensed_bits)};
        r.truth = Celsius{std::bit_cast<double>(site.truth_bits)};
        r.energy = Joule{std::bit_cast<double>(site.energy_bits)};
        r.degraded = (flags & 1u) != 0;
        r.health = static_cast<std::uint8_t>(flags >> 1);
        frame.readings.push_back(r);
      }
    }
    frames.push_back(std::move(frame));
  }
  if (in.remaining() != 0) return BlockStatus::kBadFrame;

  out.insert(out.end(), std::make_move_iterator(frames.begin()),
             std::make_move_iterator(frames.end()));
  return BlockStatus::kOk;
}

}  // namespace tsvpt::store
