#include "store/store.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/codec_util.hpp"

namespace tsvpt::store {

namespace {

/// Historian instrumentation.  The writer side runs under mutex_ on
/// whichever sampler worker seals the block, the reader side on whoever
/// drives the cursor — the sharded handles serve both without contention.
struct StoreMetrics {
  obs::Counter frames_appended =
      obs::counter("tsvpt_store_frames_appended_total");
  obs::Counter blocks_sealed = obs::counter("tsvpt_store_blocks_sealed_total");
  obs::Counter bytes_written = obs::counter("tsvpt_store_bytes_written_total");
  obs::Counter segment_rolls =
      obs::counter("tsvpt_store_segment_rolls_total");
  obs::Counter torn_tails = obs::counter("tsvpt_store_torn_tails_total");
  obs::Counter blocks_decoded =
      obs::counter("tsvpt_store_blocks_decoded_total");
  obs::Counter blocks_skipped =
      obs::counter("tsvpt_store_blocks_skipped_total");
  obs::Counter corrupt_blocks =
      obs::counter("tsvpt_store_corrupt_blocks_total");
  obs::Histogram seal_seconds =
      obs::histogram("tsvpt_store_block_seal_seconds");
  obs::Histogram decode_seconds =
      obs::histogram("tsvpt_store_block_decode_seconds");
  obs::Histogram recover_seconds =
      obs::histogram("tsvpt_store_recover_seconds");

  static const StoreMetrics& get() {
    static const StoreMetrics metrics;
    return metrics;
  }
};

constexpr const char* kSegmentPrefix = "seg-";
constexpr const char* kSegmentSuffix = ".tsl";

/// seg-NNNNNN.tsl with all digits between prefix and suffix.
bool is_segment_name(const std::string& name) {
  const std::string prefix = kSegmentPrefix;
  const std::string suffix = kSegmentSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return false;
  }
  return true;
}

std::uint64_t segment_index_of(const std::string& path) {
  const std::string name = std::filesystem::path{path}.filename().string();
  const std::size_t prefix = std::string{kSegmentPrefix}.size();
  const std::size_t digits =
      name.size() - prefix - std::string{kSegmentSuffix}.size();
  return std::stoull(name.substr(prefix, digits));
}

StoreStats stats_from_segments(const std::vector<SegmentIndex>& segments,
                               std::uint64_t torn_tail_recoveries) {
  StoreStats stats;
  stats.torn_tail_recoveries = torn_tail_recoveries;
  std::set<std::uint32_t> ids;
  bool any_block = false;
  for (const SegmentIndex& segment : segments) {
    if (!segment.valid_header) continue;
    stats.segments += 1;
    stats.bytes_on_disk += segment.valid_bytes;
    for (const BlockIndexEntry& block : segment.blocks) {
      stats.blocks += 1;
      stats.frames += block.header.frame_count;
      stats.bytes_raw += block.header.raw_bytes;
      if (!any_block) {
        stats.t_min = block.header.t_min;
        stats.t_max = block.header.t_max;
        any_block = true;
      } else {
        stats.t_min = std::min(stats.t_min, block.header.t_min);
        stats.t_max = std::max(stats.t_max, block.header.t_max);
      }
      ids.insert(block.header.stack_ids.begin(),
                 block.header.stack_ids.end());
    }
  }
  stats.stack_ids.assign(ids.begin(), ids.end());
  return stats;
}

/// One retention pass over `files` (sealed segments, oldest first).  Age
/// expiry first — delete fully expired segments, rewrite partially expired
/// ones without their expired blocks — then the byte budget, deleting whole
/// oldest segments until under it.  `newest_hint` extends the age anchor
/// past what the files themselves hold (the writer's open segment).
CompactionReport run_compaction(const std::string& dir,
                                const std::vector<std::string>& files,
                                const Retention& retention,
                                double newest_hint) {
  CompactionReport report;
  std::vector<SegmentIndex> segments;
  segments.reserve(files.size());
  for (const std::string& file : files) {
    segments.push_back(scan_segment(file));
  }

  double newest = newest_hint;
  for (const SegmentIndex& segment : segments) {
    for (const BlockIndexEntry& block : segment.blocks) {
      newest = std::max(newest, block.header.t_max);
    }
  }
  for (const SegmentIndex& segment : segments) {
    report.bytes_before += segment.valid_bytes;
  }
  report.bytes_after = report.bytes_before;

  std::vector<bool> removed(segments.size(), false);
  const auto drop_segment = [&](std::size_t i) {
    const SegmentIndex& segment = segments[i];
    report.segments_removed += 1;
    report.blocks_dropped += segment.blocks.size();
    report.frames_dropped += segment.frames();
    report.bytes_after -= segment.valid_bytes;
    std::error_code ec;
    std::filesystem::remove(segment.path, ec);
    removed[i] = true;
  };

  bool mutated = false;
  if (retention.max_age.value() > 0.0 &&
      newest > std::numeric_limits<double>::lowest()) {
    const double cutoff = newest - retention.max_age.value();
    for (std::size_t i = 0; i < segments.size(); ++i) {
      SegmentIndex& segment = segments[i];
      if (!segment.valid_header || segment.blocks.empty()) continue;
      const auto expired = [&](const BlockIndexEntry& block) {
        // Strict: a block ending exactly at the cutoff survives.
        return block.header.t_max < cutoff;
      };
      const std::size_t expired_count = static_cast<std::size_t>(
          std::count_if(segment.blocks.begin(), segment.blocks.end(),
                        expired));
      if (expired_count == 0) continue;
      mutated = true;
      if (expired_count == segment.blocks.size()) {
        drop_segment(i);
        continue;
      }
      // Partially expired: rewrite without the expired blocks, copying the
      // surviving records verbatim (no recompression), atomically.
      std::vector<std::uint8_t> bytes;
      if (!read_file(segment.path, bytes)) continue;
      std::vector<std::uint8_t> out;
      out.reserve(segment.valid_bytes);
      std::vector<std::uint8_t> header;
      telemetry::put_u32(header, kSegmentMagic);
      telemetry::put_u16(header, kSegmentVersion);
      telemetry::put_u16(header, 0);
      out.insert(out.end(), header.begin(), header.end());
      std::vector<BlockIndexEntry> kept;
      for (const BlockIndexEntry& block : segment.blocks) {
        if (expired(block)) {
          report.blocks_dropped += 1;
          report.frames_dropped += block.header.frame_count;
          continue;
        }
        if (block.offset + block.size > bytes.size()) continue;
        BlockIndexEntry moved = block;
        moved.offset = out.size();
        out.insert(out.end(), bytes.begin() + static_cast<long>(block.offset),
                   bytes.begin() + static_cast<long>(block.offset +
                                                     block.size));
        kept.push_back(std::move(moved));
      }
      replace_file_sync(segment.path, out);
      report.segments_rewritten += 1;
      report.bytes_after -= segment.valid_bytes - out.size();
      segment.valid_bytes = out.size();
      segment.file_bytes = out.size();
      segment.blocks = std::move(kept);
    }
  }

  if (retention.max_bytes > 0) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (!removed[i]) total += segments[i].valid_bytes;
    }
    for (std::size_t i = 0; i < segments.size() && total > retention.max_bytes;
         ++i) {
      if (removed[i]) continue;
      total -= segments[i].valid_bytes;
      drop_segment(i);
      mutated = true;
    }
  }

  if (mutated) sync_dir(dir);
  return report;
}

}  // namespace

std::vector<std::string> list_segment_files(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator{dir, ec}) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!is_segment_name(name)) continue;
    files.push_back(entry.path().string());
  }
  // Zero-padded names sort chronologically; length-first keeps overflow
  // past six digits ordered too.
  std::sort(files.begin(), files.end(),
            [](const std::string& a, const std::string& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  return files;
}

CompactionReport compact_store(const std::string& dir,
                               const Retention& retention) {
  return run_compaction(dir, list_segment_files(dir), retention,
                        std::numeric_limits<double>::lowest());
}

// ---------------------------------------------------------------------------
// StoreWriter

StoreWriter::StoreWriter(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.block_frames == 0) options_.block_frames = 1;
  const obs::ObsSpan recover_span{"store", "recover",
                                  StoreMetrics::get().recover_seconds};
  std::filesystem::create_directories(dir_);
  const std::vector<std::string> files = list_segment_files(dir_);
  if (files.empty()) return;
  next_segment_index_ = segment_index_of(files.back()) + 1;
  // Only the newest segment can be torn (older ones were synced before the
  // roll); recover it and resume appending there if it still has room.
  SegmentIndex recovered;
  SegmentWriter writer = SegmentWriter::recover(
      files.back(), {options_.fsync_every_blocks}, recovered);
  if (writer.tail_truncated()) {
    torn_tail_recoveries_ += 1;
    StoreMetrics::get().torn_tails.inc();
  }
  for (const BlockIndexEntry& block : recovered.blocks) {
    newest_t_ = saw_frame_ ? std::max(newest_t_, block.header.t_max)
                           : block.header.t_max;
    saw_frame_ = true;
  }
  if (writer.bytes() < options_.segment_bytes) {
    open_segment_.push_back(std::move(writer));
  } else {
    writer.close();
  }
}

StoreWriter::~StoreWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; close() failures surface via explicit
    // close() calls.
  }
}

void StoreWriter::append(const telemetry::Frame& frame) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (closed_) throw std::logic_error{"StoreWriter: append after close"};
  StoreMetrics::get().frames_appended.inc();
  builder_.add(frame);
  newest_t_ = saw_frame_ ? std::max(newest_t_, frame.sim_time.value())
                         : frame.sim_time.value();
  saw_frame_ = true;
  if (builder_.frame_count() >= options_.block_frames) seal_block_locked();
}

void StoreWriter::on_frame(const telemetry::Frame& frame,
                           const std::vector<std::uint8_t>& wire) {
  (void)wire;  // the builder re-derives raw size; the frame is authoritative
  append(frame);
}

void StoreWriter::seal_block_locked() {
  const StoreMetrics& metrics = StoreMetrics::get();
  // One span covers compress + append (+ the amortized fsync inside
  // append_block); segment rolls get their own span since they add a
  // close-with-fsync and a create.
  const obs::ObsSpan seal_span{"store", "seal_block", metrics.seal_seconds,
                               builder_.frame_count()};
  const std::vector<std::uint8_t> record = builder_.seal();
  if (open_segment_.empty()) {
    open_segment_.push_back(SegmentWriter::create(
        segment_path(next_segment_index_), {options_.fsync_every_blocks}));
    next_segment_index_ += 1;
  }
  open_segment_.front().append_block(record);
  metrics.blocks_sealed.inc();
  metrics.bytes_written.add(record.size());
  if (open_segment_.front().bytes() >= options_.segment_bytes) {
    const obs::ObsSpan roll_span{"store", "segment_roll"};
    open_segment_.front().close();
    open_segment_.clear();  // the next seal opens the successor
    metrics.segment_rolls.inc();
  }
}

void StoreWriter::flush() {
  std::lock_guard<std::mutex> lock{mutex_};
  if (closed_) return;
  if (!builder_.empty()) seal_block_locked();
  if (!open_segment_.empty()) open_segment_.front().sync();
}

void StoreWriter::close_locked() {
  if (closed_) return;
  if (!builder_.empty()) seal_block_locked();
  if (!open_segment_.empty()) {
    open_segment_.front().close();
    open_segment_.clear();
  }
  closed_ = true;
}

void StoreWriter::close() {
  std::lock_guard<std::mutex> lock{mutex_};
  close_locked();
}

CompactionReport StoreWriter::compact(const Retention& retention) {
  std::lock_guard<std::mutex> serialize{compact_mutex_};
  std::vector<std::string> sealed;
  double newest = std::numeric_limits<double>::lowest();
  {
    std::lock_guard<std::mutex> lock{mutex_};
    const std::string open_path =
        open_segment_.empty() ? std::string{} : open_segment_.front().path();
    for (std::string& file : list_segment_files(dir_)) {
      if (file != open_path) sealed.push_back(std::move(file));
    }
    if (saw_frame_) newest = newest_t_;
  }
  // Appends may continue: they only ever touch the open segment (excluded
  // above) or create segments newer than this snapshot (untouched).
  return run_compaction(dir_, sealed, retention, newest);
}

StoreStats StoreWriter::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<SegmentIndex> segments;
  for (const std::string& file : list_segment_files(dir_)) {
    segments.push_back(scan_segment(file));
  }
  return stats_from_segments(segments, torn_tail_recoveries_);
}

std::string StoreWriter::segment_path(std::uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof name, "%s%06llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(index), kSegmentSuffix);
  return dir_ + "/" + name;
}

// ---------------------------------------------------------------------------
// StoreReader

StoreReader::StoreReader(std::string dir) : dir_(std::move(dir)) {
  const obs::ObsSpan recover_span{"store", "recover",
                                  StoreMetrics::get().recover_seconds};
  for (const std::string& file : list_segment_files(dir_)) {
    SegmentIndex index = scan_segment(file);
    if (index.torn_tail()) torn_tails_ += 1;
    segments_.push_back(std::move(index));
  }
}

bool StoreReader::Query::wants_stack(std::uint32_t id) const {
  return stack_ids.empty() ||
         std::find(stack_ids.begin(), stack_ids.end(), id) != stack_ids.end();
}

StoreReader::Cursor::Cursor(const StoreReader* reader, Query query)
    : reader_(reader), query_(std::move(query)) {}

bool StoreReader::Cursor::next(telemetry::Frame& out) {
  for (;;) {
    while (frame_ < frames_.size()) {
      telemetry::Frame& frame = frames_[frame_];
      frame_ += 1;
      const double t = frame.sim_time.value();
      if (t < query_.t_min || t > query_.t_max) continue;
      if (!query_.wants_stack(frame.stack_id)) continue;
      if (!query_.site_ids.empty()) {
        const auto listed = [&](const core::StackMonitor::SiteReading& r) {
          return std::find(query_.site_ids.begin(), query_.site_ids.end(),
                           r.site_index) != query_.site_ids.end();
        };
        if (prune_sites_) {
          std::vector<core::StackMonitor::SiteReading> kept;
          for (const auto& reading : frame.readings) {
            if (listed(reading)) kept.push_back(reading);
          }
          if (kept.empty()) continue;
          frame.readings = std::move(kept);
        } else if (std::none_of(frame.readings.begin(), frame.readings.end(),
                                listed)) {
          continue;
        }
      }
      out = std::move(frame);
      return true;
    }
    if (!load_more()) return false;
  }
}

bool StoreReader::Cursor::load_more() {
  const StoreMetrics& metrics = StoreMetrics::get();
  const std::vector<SegmentIndex>& segments = reader_->segments_;
  while (segment_ < segments.size()) {
    const SegmentIndex& segment = segments[segment_];
    if (block_ >= segment.blocks.size()) {
      segment_ += 1;
      block_ = 0;
      continue;
    }
    const BlockIndexEntry& entry = segment.blocks[block_];
    block_ += 1;
    // The sparse index: skip whole blocks whose header's time span or stack
    // set cannot match, without touching the payload.
    if (!entry.header.overlaps(query_.t_min, query_.t_max)) {
      metrics.blocks_skipped.inc();
      continue;
    }
    if (!query_.stack_ids.empty() &&
        std::none_of(query_.stack_ids.begin(), query_.stack_ids.end(),
                     [&](std::uint32_t id) {
                       return entry.header.contains_stack(id);
                     })) {
      metrics.blocks_skipped.inc();
      continue;
    }
    if (loaded_segment_ != segment_) {
      if (!read_file(segment.path, file_)) {
        corrupt_ += 1;
        metrics.corrupt_blocks.inc();
        continue;
      }
      loaded_segment_ = segment_;
    }
    if (entry.offset + entry.size > file_.size()) {
      corrupt_ += 1;  // file changed under the index (concurrent compaction)
      metrics.corrupt_blocks.inc();
      continue;
    }
    frames_.clear();
    frame_ = 0;
    const obs::ObsSpan decode_span{"store", "decode_block",
                                   metrics.decode_seconds,
                                   entry.header.frame_count};
    if (decode_block(file_.data() + entry.offset,
                     static_cast<std::size_t>(entry.size),
                     frames_) != BlockStatus::kOk) {
      corrupt_ += 1;
      metrics.corrupt_blocks.inc();
      continue;
    }
    metrics.blocks_decoded.inc();
    if (!frames_.empty()) return true;
  }
  return false;
}

StoreReader::Cursor StoreReader::scan(Query query) const {
  return Cursor{this, std::move(query)};
}

std::vector<telemetry::Frame> StoreReader::query(const Query& query,
                                                 std::size_t limit) const {
  std::vector<telemetry::Frame> frames;
  Cursor cursor = scan(query);
  telemetry::Frame frame;
  while (frames.size() < limit && cursor.next(frame)) {
    frames.push_back(std::move(frame));
  }
  return frames;
}

StoreReader::ReplayResult StoreReader::replay(
    const Query& query, telemetry::Aggregator& aggregator) const {
  ReplayResult result;
  Cursor cursor = scan(query);
  // Replay feeds whole frames: pruning readings would renumber sites and
  // break the wire codec's dense-index invariant.  site_ids still selects
  // *which frames* replay (those with at least one matching reading).
  cursor.prune_sites_ = false;
  telemetry::Frame frame;
  while (cursor.next(frame)) {
    aggregator.ingest(telemetry::encode(frame));
    result.frames_replayed += 1;
  }
  result.corrupt_blocks = cursor.corrupt_blocks();
  return result;
}

StoreStats StoreReader::stats() const {
  return stats_from_segments(segments_, torn_tails_);
}

std::uint64_t StoreReader::verify() const {
  std::uint64_t corrupt = 0;
  std::vector<std::uint8_t> bytes;
  std::vector<telemetry::Frame> scratch;
  for (const SegmentIndex& segment : segments_) {
    if (!segment.valid_header) continue;
    if (!read_file(segment.path, bytes)) {
      corrupt += segment.blocks.size();
      continue;
    }
    for (const BlockIndexEntry& block : segment.blocks) {
      if (block.offset + block.size > bytes.size()) {
        corrupt += 1;
        continue;
      }
      scratch.clear();
      if (decode_block(bytes.data() + block.offset,
                       static_cast<std::size_t>(block.size),
                       scratch) != BlockStatus::kOk) {
        corrupt += 1;
      }
    }
  }
  return corrupt;
}

}  // namespace tsvpt::store
