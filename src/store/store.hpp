// The telemetry historian: a directory of segment files
// (`seg-000001.tsl`, `seg-000002.tsl`, …) forming one append-only,
// crash-safe, compressed log of telemetry frames.
//
//   StoreWriter — batches frames into compressed blocks (store/block.hpp),
//     appends them to the open segment with batched fsync, rolls segments
//     at a size threshold, and on open *recovers*: any torn tail left by a
//     crash is truncated so appending resumes after the last complete
//     block.  Implements telemetry::FrameSink, so a FleetSampler persists
//     while sampling; appends are mutex-serialized (workers call
//     concurrently).
//
//   StoreReader — builds a per-segment sparse index from block headers
//     alone (no payload decode), serves Query{t_min, t_max, stack_ids,
//     site_ids} through a pull Cursor that skips non-overlapping blocks,
//     and replays stored frames through a telemetry::Aggregator so alert
//     and health analysis runs identically live or offline.
//
//   Retention / compact — max-bytes and max-age policies: fully expired
//     segments are deleted, partially expired ones are rewritten without
//     their expired blocks (records are copied verbatim — no
//     recompression), atomically via rename.  StoreWriter::compact runs
//     the same pass online, touching only sealed segments, so it is safe
//     concurrently with an active writer.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "store/block.hpp"
#include "store/segment.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

namespace tsvpt::store {

struct StoreOptions {
  /// Frames batched into one compressed block.  The block is the unit of
  /// CRC protection, query skipping and crash loss (an unsealed block dies
  /// with the process).
  std::size_t block_frames = 64;
  /// Roll to a new segment once the open one exceeds this many bytes.
  std::uint64_t segment_bytes = 4u << 20;
  /// fsync the open segment every N sealed blocks (0 = only on roll/close).
  std::size_t fsync_every_blocks = 8;
};

/// What to keep.  Zero fields mean "unlimited" for that axis.
struct Retention {
  /// Total sealed-segment byte budget; oldest whole segments are deleted
  /// until under it.
  std::uint64_t max_bytes = 0;
  /// Maximum simulated-time age relative to the newest frame in the store;
  /// blocks whose whole span is older expire.  A block ending exactly at
  /// the cutoff survives (closed interval).
  Second max_age{0.0};
};

struct CompactionReport {
  std::size_t segments_removed = 0;
  std::size_t segments_rewritten = 0;
  std::size_t blocks_dropped = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
};

struct StoreStats {
  std::size_t segments = 0;
  std::size_t blocks = 0;
  std::uint64_t frames = 0;
  /// Valid bytes across segment files (torn tails excluded).
  std::uint64_t bytes_on_disk = 0;
  /// What the same frames occupy in the raw wire codec.
  std::uint64_t bytes_raw = 0;
  /// Torn tails truncated (writer) or ignored (reader) since open.
  std::uint64_t torn_tail_recoveries = 0;
  /// Blocks whose payload CRC failed during reads (never served).
  std::uint64_t corrupt_blocks = 0;
  /// Simulated-time span across all indexed blocks (0/0 when empty).
  double t_min = 0.0;
  double t_max = 0.0;
  /// Sorted unique stack ids seen in block headers.
  std::vector<std::uint32_t> stack_ids;

  [[nodiscard]] double compression_ratio() const {
    return bytes_on_disk == 0
               ? 0.0
               : static_cast<double>(bytes_raw) /
                     static_cast<double>(bytes_on_disk);
  }
};

/// Offline retention pass over a store directory (no writer required).
CompactionReport compact_store(const std::string& dir,
                               const Retention& retention);

class StoreWriter : public telemetry::FrameSink {
 public:
  /// Opens (creating the directory if needed) and recovers: a torn tail on
  /// the newest segment is truncated and appending resumes after it.
  explicit StoreWriter(std::string dir, StoreOptions options = {});
  ~StoreWriter() override;

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Append one frame (thread-safe; FleetSampler workers call concurrently).
  void append(const telemetry::Frame& frame);

  /// telemetry::FrameSink: persist every frame the fleet produces.
  void on_frame(const telemetry::Frame& frame,
                const std::vector<std::uint8_t>& wire) override;

  /// Seal the partial block (if any) and fsync.  A crash after flush()
  /// loses nothing.
  void flush();

  /// flush() and close the open segment.  Idempotent; the destructor calls
  /// it.  Append after close throws.
  void close();

  /// Online retention pass: sealed segments only (the open segment is never
  /// touched), safe while appends continue on other threads.
  CompactionReport compact(const Retention& retention);

  /// Writer-side counters (thread-safe snapshot).
  [[nodiscard]] StoreStats stats() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  void seal_block_locked();
  void close_locked();
  [[nodiscard]] std::string segment_path(std::uint64_t index) const;

  std::string dir_;
  StoreOptions options_;

  mutable std::mutex mutex_;
  /// Serializes concurrent compact() callers; never held with mutex_ beyond
  /// the brief snapshot of the sealed-file list.
  std::mutex compact_mutex_;
  BlockBuilder builder_;
  std::vector<SegmentWriter> open_segment_;  // 0 or 1 (no default ctor)
  std::uint64_t next_segment_index_ = 1;
  bool closed_ = false;
  std::uint64_t torn_tail_recoveries_ = 0;
  /// Newest sim_time appended or recovered — the age-retention anchor,
  /// covering the open segment and buffered frames compaction cannot scan.
  double newest_t_ = std::numeric_limits<double>::lowest();
  bool saw_frame_ = false;
};

class StoreReader {
 public:
  /// Scan every segment and build the sparse block index (headers only).
  /// Torn tails are ignored (and counted); the writer may still be
  /// appending — the reader serves the complete blocks it indexed.
  explicit StoreReader(std::string dir);

  struct Query {
    double t_min = -std::numeric_limits<double>::infinity();
    double t_max = std::numeric_limits<double>::infinity();
    /// Empty = every stack.
    std::vector<std::uint32_t> stack_ids;
    /// Empty = every site; otherwise readings are pruned to these site
    /// indexes (frames left with no matching reading are skipped).
    std::vector<std::size_t> site_ids;

    [[nodiscard]] bool wants_stack(std::uint32_t id) const;
  };

  /// Pull iterator over matching frames in stored (append) order.  Blocks
  /// are decoded lazily and skipped wholesale when their header's time span
  /// or stack set cannot match.  Corrupt blocks are skipped and counted.
  class Cursor {
   public:
    /// Advance to the next matching frame; false at end.
    bool next(telemetry::Frame& out);
    [[nodiscard]] std::uint64_t corrupt_blocks() const { return corrupt_; }

   private:
    friend class StoreReader;
    Cursor(const StoreReader* reader, Query query);

    [[nodiscard]] bool load_more();

    const StoreReader* reader_;
    Query query_;
    std::size_t segment_ = 0;
    std::size_t block_ = 0;
    std::size_t loaded_segment_ = std::numeric_limits<std::size_t>::max();
    std::vector<std::uint8_t> file_;
    std::vector<telemetry::Frame> frames_;
    std::size_t frame_ = 0;
    std::uint64_t corrupt_ = 0;
    /// replay() clears this: pruning readings would renumber sites and break
    /// the wire codec's dense-index invariant on re-encode.
    bool prune_sites_ = true;
  };

  [[nodiscard]] Cursor scan(Query query) const;
  [[nodiscard]] Cursor scan() const { return scan(Query{}); }

  /// Collect up to `limit` matching frames.
  [[nodiscard]] std::vector<telemetry::Frame> query(
      const Query& query,
      std::size_t limit = std::numeric_limits<std::size_t>::max()) const;

  struct ReplayResult {
    std::uint64_t frames_replayed = 0;
    std::uint64_t corrupt_blocks = 0;
  };

  /// Feed matching frames through aggregator.ingest() in stored order —
  /// the same path live collection uses, so alerts, health transitions and
  /// statistics come out identically.  The aggregator must not be running
  /// a live collector.
  ReplayResult replay(const Query& query,
                      telemetry::Aggregator& aggregator) const;

  /// Index-derived stats (no payload decode).
  [[nodiscard]] StoreStats stats() const;

  /// Decode every indexed block, verifying payload CRCs; returns the
  /// number of corrupt blocks found.
  [[nodiscard]] std::uint64_t verify() const;

  [[nodiscard]] const std::vector<SegmentIndex>& segments() const {
    return segments_;
  }

 private:
  std::string dir_;
  std::vector<SegmentIndex> segments_;
  std::uint64_t torn_tails_ = 0;
};

/// List a store directory's segment files, sorted oldest first.
[[nodiscard]] std::vector<std::string> list_segment_files(
    const std::string& dir);

}  // namespace tsvpt::store
