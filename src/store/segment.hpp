// Segment files for the telemetry historian: an append-only sequence of
// sealed block records behind a small file header:
//
//   [magic u32 "TSVS"] [version u16] [reserved u16]  then  block records...
//
// Appends are block-at-a-time (a block is sealed in memory, then written
// with one write()), and fsync is batched — every `fsync_every_blocks`
// appends plus on roll/close — so a crash can lose at most the blocks since
// the last sync, and a torn final write leaves a *prefix* of a block at the
// tail.  Recovery is therefore a scan: walk block headers from the front,
// stop at the first record that does not fully fit or whose header fails
// its CRC, and truncate the file there.  scan_segment() performs the walk
// (building the sparse index the reader queries by — headers only, payloads
// untouched); SegmentWriter::recover() additionally truncates so appending
// can resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/block.hpp"

namespace tsvpt::store {

/// "TSVS" little-endian.
inline constexpr std::uint32_t kSegmentMagic = 0x53565354u;
inline constexpr std::uint16_t kSegmentVersion = 1;
inline constexpr std::size_t kSegmentHeaderSize = 8;

/// One block's position within a segment plus its parsed header — the
/// sparse index entry time/stack queries skip by.
struct BlockIndexEntry {
  std::uint64_t offset = 0;  // file offset of the block record
  std::uint64_t size = 0;    // record bytes (header + payload + CRCs)
  BlockHeader header;
};

/// Result of walking a segment's blocks (recovery + index build).
struct SegmentIndex {
  std::string path;
  /// False when the file header is missing or wrong — the file is not a
  /// segment (or its first write was torn) and holds no usable blocks.
  bool valid_header = false;
  /// Bytes holding the header and every complete block; anything past this
  /// is a torn tail.
  std::uint64_t valid_bytes = 0;
  std::uint64_t file_bytes = 0;
  std::vector<BlockIndexEntry> blocks;

  [[nodiscard]] bool torn_tail() const { return valid_bytes < file_bytes; }
  [[nodiscard]] std::uint64_t frames() const;
  [[nodiscard]] std::uint64_t raw_bytes() const;
};

/// Walk `path`'s blocks front to back, stopping at the first torn or
/// corrupt-header record.  Read-only; never modifies the file.
[[nodiscard]] SegmentIndex scan_segment(const std::string& path);

/// Read a whole file into `out`; false on open/read failure.
[[nodiscard]] bool read_file(const std::string& path,
                             std::vector<std::uint8_t>& out);

/// Atomically replace `path` with `bytes`: write `path`.tmp, fsync, rename
/// over, fsync the parent directory.  A crash leaves either the old or the
/// new file, never a mix — what compaction's segment rewrite relies on.
/// Throws std::runtime_error on I/O failure.
void replace_file_sync(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// fsync a directory so renames/unlinks inside it are durable (best effort:
/// silently ignored where directories cannot be opened for sync).
void sync_dir(const std::string& dir);

/// Appends sealed block records to one segment file with batched fsync.
class SegmentWriter {
 public:
  struct Options {
    /// fsync after every N block appends; 0 = only on close()/sync().
    std::size_t fsync_every_blocks = 8;
  };

  /// Create (or truncate) a fresh segment at `path` and write its header.
  /// The header is synced immediately so recovery never sees a header-less
  /// file that was supposed to be a segment.
  static SegmentWriter create(const std::string& path, Options options);

  /// Reopen an existing segment for appending: scan, truncate any torn
  /// tail, resume after the last complete block.  `recovered` reports the
  /// scan (tail_truncated() below tells whether anything was cut).
  static SegmentWriter recover(const std::string& path, Options options,
                               SegmentIndex& recovered);

  SegmentWriter(SegmentWriter&& other) noexcept;
  SegmentWriter& operator=(SegmentWriter&&) = delete;
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;
  ~SegmentWriter();

  /// Append one sealed block record (one write syscall), fsyncing per the
  /// batching policy.  Throws std::runtime_error on I/O failure.
  void append_block(const std::vector<std::uint8_t>& record);

  /// fsync whatever has been appended.
  void sync();

  /// Sync and close; further appends throw.  Idempotent.
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::size_t blocks_appended() const {
    return blocks_appended_;
  }
  [[nodiscard]] bool tail_truncated() const { return tail_truncated_; }
  [[nodiscard]] std::uint64_t fsync_count() const { return fsync_count_; }

 private:
  SegmentWriter(std::string path, Options options, int fd,
                std::uint64_t bytes, bool tail_truncated);

  std::string path_;
  Options options_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::size_t blocks_appended_ = 0;
  std::size_t blocks_since_sync_ = 0;
  std::uint64_t fsync_count_ = 0;
  bool tail_truncated_ = false;
};

}  // namespace tsvpt::store
