#include "store/segment.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/codec_util.hpp"

namespace tsvpt::store {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error{what + " " + path + ": " +
                           std::strerror(errno)};
}

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("SegmentWriter: write", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint64_t SegmentIndex::frames() const {
  std::uint64_t total = 0;
  for (const auto& b : blocks) total += b.header.frame_count;
  return total;
}

std::uint64_t SegmentIndex::raw_bytes() const {
  std::uint64_t total = 0;
  for (const auto& b : blocks) total += b.header.raw_bytes;
  return total;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(fd, out.data() + got, out.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;  // shrank underneath us; treat the prefix as the file
    got += static_cast<std::size_t>(n);
  }
  out.resize(got);
  ::close(fd);
  return true;
}

void replace_file_sync(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("replace_file_sync: create", tmp);
  try {
    write_all(fd, bytes.data(), bytes.size(), tmp);
    if (::fsync(fd) != 0) throw_errno("replace_file_sync: fsync", tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("replace_file_sync: rename", path);
  }
}

void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

SegmentIndex scan_segment(const std::string& path) {
  SegmentIndex index;
  index.path = path;
  std::vector<std::uint8_t> bytes;
  if (!read_file(path, bytes)) return index;
  index.file_bytes = bytes.size();
  if (bytes.size() < kSegmentHeaderSize ||
      telemetry::get_u32(bytes.data()) != kSegmentMagic ||
      telemetry::get_u16(bytes.data() + 4) != kSegmentVersion) {
    return index;  // not a segment (or its very first write was torn)
  }
  index.valid_header = true;
  std::size_t pos = kSegmentHeaderSize;
  while (pos < bytes.size()) {
    BlockHeader header;
    const BlockStatus status =
        parse_block_header(bytes.data() + pos, bytes.size() - pos, header);
    if (status != BlockStatus::kOk) break;
    const std::size_t record = header.record_size();
    if (bytes.size() - pos < record) break;  // payload torn
    index.blocks.push_back({pos, record, std::move(header)});
    pos += record;
  }
  index.valid_bytes = pos;
  return index;
}

SegmentWriter SegmentWriter::create(const std::string& path,
                                    Options options) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("SegmentWriter: create", path);
  std::vector<std::uint8_t> header;
  telemetry::put_u32(header, kSegmentMagic);
  telemetry::put_u16(header, kSegmentVersion);
  telemetry::put_u16(header, 0);
  write_all(fd, header.data(), header.size(), path);
  if (::fsync(fd) != 0) throw_errno("SegmentWriter: fsync", path);
  return SegmentWriter{path, options, fd, kSegmentHeaderSize, false};
}

SegmentWriter SegmentWriter::recover(const std::string& path,
                                     Options options,
                                     SegmentIndex& recovered) {
  recovered = scan_segment(path);
  if (!recovered.valid_header) {
    // Nothing recoverable (torn before the header landed): start fresh.
    SegmentWriter writer = create(path, options);
    writer.tail_truncated_ = recovered.file_bytes > 0;
    return writer;
  }
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) throw_errno("SegmentWriter: open", path);
  const bool torn = recovered.torn_tail();
  if (torn) {
    if (::ftruncate(fd, static_cast<off_t>(recovered.valid_bytes)) != 0) {
      throw_errno("SegmentWriter: ftruncate", path);
    }
    if (::fsync(fd) != 0) throw_errno("SegmentWriter: fsync", path);
  }
  if (::lseek(fd, static_cast<off_t>(recovered.valid_bytes), SEEK_SET) < 0) {
    throw_errno("SegmentWriter: lseek", path);
  }
  return SegmentWriter{path, options, fd, recovered.valid_bytes, torn};
}

SegmentWriter::SegmentWriter(std::string path, Options options, int fd,
                             std::uint64_t bytes, bool tail_truncated)
    : path_(std::move(path)), options_(options), fd_(fd), bytes_(bytes),
      tail_truncated_(tail_truncated) {}

SegmentWriter::SegmentWriter(SegmentWriter&& other) noexcept
    : path_(std::move(other.path_)), options_(other.options_),
      fd_(std::exchange(other.fd_, -1)), bytes_(other.bytes_),
      blocks_appended_(other.blocks_appended_),
      blocks_since_sync_(other.blocks_since_sync_),
      fsync_count_(other.fsync_count_),
      tail_truncated_(other.tail_truncated_) {}

SegmentWriter::~SegmentWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void SegmentWriter::append_block(const std::vector<std::uint8_t>& record) {
  if (fd_ < 0) throw std::logic_error{"SegmentWriter: closed"};
  write_all(fd_, record.data(), record.size(), path_);
  bytes_ += record.size();
  blocks_appended_ += 1;
  blocks_since_sync_ += 1;
  if (options_.fsync_every_blocks > 0 &&
      blocks_since_sync_ >= options_.fsync_every_blocks) {
    sync();
  }
}

void SegmentWriter::sync() {
  if (fd_ < 0) return;
  // fsync dominates the historian's tail latency; a dedicated histogram
  // makes its cost visible next to the (cheap) encode/compress spans.
  static const obs::Counter fsyncs = obs::counter("tsvpt_store_fsyncs_total");
  static const obs::Histogram fsync_seconds =
      obs::histogram("tsvpt_store_fsync_seconds");
  const obs::ObsSpan fsync_span{"store", "fsync", fsync_seconds};
  if (::fsync(fd_) != 0) throw_errno("SegmentWriter: fsync", path_);
  fsyncs.inc();
  fsync_count_ += 1;
  blocks_since_sync_ = 0;
}

void SegmentWriter::close() {
  if (fd_ < 0) return;
  sync();
  ::close(fd_);
  fd_ = -1;
}

}  // namespace tsvpt::store
