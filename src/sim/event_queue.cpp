#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace tsvpt::sim {

void Simulator::schedule_at(Second t, Action action) {
  if (t < now_) throw std::invalid_argument{"schedule_at: time in the past"};
  if (!action) throw std::invalid_argument{"schedule_at: empty action"};
  queue_.push({t.value(), next_sequence_++, std::move(action)});
}

void Simulator::schedule_after(Second dt, Action action) {
  if (dt.value() < 0.0) throw std::invalid_argument{"schedule_after: dt < 0"};
  schedule_at(now_ + dt, std::move(action));
}

void Simulator::run_until(Second t_end) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.time > t_end.value()) break;
    // Copy out before pop: the action may schedule new events.
    Action action = top.action;
    now_ = Second{top.time};
    queue_.pop();
    ++processed_;
    action(*this);
  }
  if (now_ < t_end) now_ = t_end;
}

}  // namespace tsvpt::sim
