// Sensor-driven DVFS governor.
//
// The thermal guard (thermal_guard.hpp) is a blunt on/off throttle; real
// systems run a ladder of (VDD, f) operating points and walk it under a
// temperature constraint.  This governor walks the ladder using the sensed
// stack temperature: step down when the hottest sensed point crosses the
// ceiling, step back up when it cools below the floor.  Throughput is
// tallied as the integral of the running level's relative frequency, so
// sensor accuracy converts directly into either lost throughput (reading
// high) or thermal overshoot (reading low) — the A11 bench quantifies both.
#pragma once

#include <cstdint>
#include <vector>

#include "control/ladder.hpp"
#include "core/stack_monitor.hpp"
#include "ptsim/units.hpp"
#include "thermal/workload.hpp"

namespace tsvpt::sim {

/// One rung of the DVFS ladder (the control module's shared type — the
/// governor's decision logic lives in control::LadderStepper now, this
/// class remains the stack-global event-queue simulation of it).
using DvfsLevel = control::LadderLevel;

class DvfsGovernor {
 public:
  struct Config {
    std::vector<DvfsLevel> ladder;  // ordered fastest first
    Celsius ceiling{85.0};
    Celsius floor{75.0};
    Second sample_period{1e-3};
    Second thermal_step{2e-4};
    /// Start at this ladder index.
    std::size_t initial_level = 0;

    /// A typical 4-level ladder: nominal, -10 %, -25 %, half speed.
    [[nodiscard]] static Config typical();
  };

  struct Result {
    /// Throughput as a fraction of running flat-out at level 0.
    double relative_throughput = 0.0;
    Celsius max_true{-273.15};
    /// Time integral of true excess over the ceiling, degC * s.
    double overshoot_integral = 0.0;
    /// Level transitions taken.
    std::size_t transitions = 0;
    /// Residency fraction per ladder level.
    std::vector<double> residency;
  };

  explicit DvfsGovernor(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// Run the workload under governor control for `duration`.
  [[nodiscard]] Result run(thermal::ThermalNetwork& network,
                           const thermal::Workload& workload,
                           core::StackMonitor& monitor, Second duration,
                           std::uint64_t noise_seed) const;

 private:
  Config config_;
};

}  // namespace tsvpt::sim
