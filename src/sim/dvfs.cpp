#include "sim/dvfs.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace tsvpt::sim {

DvfsGovernor::Config DvfsGovernor::Config::typical() {
  Config cfg;
  cfg.ladder = control::typical_ladder();
  return cfg;
}

DvfsGovernor::DvfsGovernor(Config config) : config_(std::move(config)) {
  control::validate_ladder(config_.ladder);
  if (config_.initial_level >= config_.ladder.size()) {
    throw std::invalid_argument{"DvfsGovernor: initial level out of range"};
  }
  if (!(config_.floor < config_.ceiling)) {
    throw std::invalid_argument{"DvfsGovernor: floor must be below ceiling"};
  }
}

DvfsGovernor::Result DvfsGovernor::run(thermal::ThermalNetwork& network,
                                       const thermal::Workload& workload,
                                       core::StackMonitor& monitor,
                                       Second duration,
                                       std::uint64_t noise_seed) const {
  Rng noise{noise_seed};
  Result result;
  result.residency.assign(config_.ladder.size(), 0.0);

  workload.apply(network, Second{0.0});
  network.set_uniform_temperature(network.config().ambient);
  monitor.calibrate_all(&noise);

  std::size_t level = config_.initial_level;
  const std::size_t die_count = network.config().die_count();

  Simulator sim;
  const Second h = config_.thermal_step;
  std::function<void(Simulator&)> thermal_tick = [&](Simulator& s) {
    workload.apply(network, s.now());
    network.scale_power(config_.ladder[level].power_scale);
    network.step(h);
    result.relative_throughput +=
        config_.ladder[level].relative_frequency * h.value();
    result.residency[level] += h.value();
    for (std::size_t d = 0; d < die_count; ++d) {
      const Celsius t = to_celsius(network.max_temperature(d));
      if (t > result.max_true) result.max_true = t;
      const double excess = t.value() - config_.ceiling.value();
      if (excess > 0.0) result.overshoot_integral += excess * h.value();
    }
    if (s.now() + h <= duration) s.schedule_after(h, thermal_tick);
  };
  sim.schedule_at(Second{0.0}, thermal_tick);

  const control::LadderStepper stepper{config_.ceiling, config_.floor};
  std::function<void(Simulator&)> sample_tick = [&](Simulator& s) {
    const auto readings = monitor.sample_all(&noise);
    Celsius hottest{-273.15};
    for (const auto& r : readings) {
      if (r.sensed > hottest) hottest = r.sensed;
    }
    const std::size_t next_level =
        stepper.step(level, config_.ladder.size(), hottest);
    if (next_level != level) {
      level = next_level;
      ++result.transitions;
    }
    const Second next = s.now() + config_.sample_period;
    if (next <= duration) s.schedule_after(config_.sample_period, sample_tick);
  };
  sim.schedule_at(config_.sample_period, sample_tick);

  sim.run_until(duration);

  // Normalize throughput and residency by elapsed time.
  if (duration.value() > 0.0) {
    result.relative_throughput /= duration.value();
    for (double& r : result.residency) r /= duration.value();
  }
  return result;
}

}  // namespace tsvpt::sim
