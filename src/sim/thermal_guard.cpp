#include "sim/thermal_guard.hpp"

#include <algorithm>

#include "control/ladder.hpp"
#include "sim/event_queue.hpp"

namespace tsvpt::sim {

ThermalGuard::Result ThermalGuard::run(thermal::ThermalNetwork& network,
                                       const thermal::Workload& workload,
                                       core::StackMonitor& monitor,
                                       Second duration,
                                       std::uint64_t noise_seed,
                                       bool enabled) const {
  Rng noise{noise_seed};
  Result result;

  // Power-on: the stack starts at ambient; the guard must catch the first
  // burst's transient, not inherit a pre-heated steady state.
  workload.apply(network, Second{0.0});
  network.set_uniform_temperature(network.config().ambient);
  monitor.calibrate_all(&noise);

  // The trip itself is the shared control-module hysteresis; this class
  // remains the stack-global simulation around it.
  control::Hysteresis trip{config_.throttle_on, config_.throttle_off};
  bool throttled = false;
  std::size_t samples = 0;
  std::size_t throttled_samples = 0;

  Simulator sim;
  const Second h = config_.thermal_step;
  const std::size_t die_count = network.config().die_count();

  std::function<void(Simulator&)> thermal_tick = [&](Simulator& s) {
    workload.apply(network, s.now());
    if (throttled) network.scale_power(config_.throttle_factor);
    network.step(h);
    // Track the true maximum and the over-limit integral.
    for (std::size_t d = 0; d < die_count; ++d) {
      const Celsius t = to_celsius(network.max_temperature(d));
      result.max_true = std::max(result.max_true, t,
                                 [](Celsius a, Celsius b) { return a < b; });
      const double excess = t.value() - config_.throttle_on.value();
      if (excess > 0.0) result.overshoot_integral += excess * h.value();
    }
    if (s.now() + h <= duration) s.schedule_after(h, thermal_tick);
  };
  sim.schedule_at(Second{0.0}, thermal_tick);

  std::function<void(Simulator&)> sample_tick = [&](Simulator& s) {
    const auto readings = monitor.sample_all(&noise);
    Celsius hottest{-273.15};
    for (const auto& r : readings) {
      hottest = std::max(hottest, r.sensed,
                         [](Celsius a, Celsius b) { return a < b; });
    }
    result.max_sensed = std::max(result.max_sensed, hottest,
                                 [](Celsius a, Celsius b) { return a < b; });
    ++samples;
    if (throttled) ++throttled_samples;
    if (enabled) {
      const bool was = trip.engaged();
      throttled = trip.update(hottest);
      if (throttled && !was) ++result.throttle_events;
    }
    const Second next = s.now() + config_.sample_period;
    if (next <= duration) s.schedule_after(config_.sample_period, sample_tick);
  };
  sim.schedule_at(config_.sample_period, sample_tick);

  sim.run_until(duration);
  result.throttled_fraction =
      samples == 0 ? 0.0
                   : static_cast<double>(throttled_samples) /
                         static_cast<double>(samples);
  return result;
}

}  // namespace tsvpt::sim
