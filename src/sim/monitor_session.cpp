#include "sim/monitor_session.hpp"

#include <stdexcept>

namespace tsvpt::sim {

MonitoringSession::MonitoringSession(thermal::ThermalNetwork* network,
                                     const thermal::Workload* workload,
                                     core::StackMonitor* monitor,
                                     Config config, std::uint64_t noise_seed)
    : network_(network), workload_(workload), monitor_(monitor),
      config_(config), noise_(noise_seed) {
  if (network_ == nullptr || workload_ == nullptr || monitor_ == nullptr) {
    throw std::invalid_argument{"MonitoringSession: null dependency"};
  }
  if (config_.sample_period.value() <= 0.0 ||
      config_.thermal_step.value() <= 0.0) {
    throw std::invalid_argument{"MonitoringSession: non-positive period"};
  }
}

void MonitoringSession::run(Second duration) {
  trace_.clear();

  // Initial thermal state.
  workload_->apply(*network_, Second{0.0});
  if (config_.start_at_steady_state) {
    network_->set_temperatures(network_->steady_state());
  } else {
    network_->set_uniform_temperature(network_->config().ambient);
  }

  // Power-on self-calibration against the initial state.
  monitor_->calibrate_all(&noise_);

  control::Controller* controller = config_.controller;
  if (controller != nullptr) controller->reset();
  const std::size_t die_count = network_->config().die_count();

  // Program the power map for time `when`: the raw workload open-loop, the
  // controller's held actuation on top of it closed-loop.
  const auto program = [&](Second when) {
    if (controller != nullptr) {
      control::apply_actuation(*workload_, *network_, when,
                               controller->actuation(),
                               controller->config().plant);
    } else {
      workload_->apply(*network_, when);
    }
  };
  const auto account = [&](Second dt) {
    if (controller == nullptr) return;
    Celsius hottest{-273.15};
    for (std::size_t d = 0; d < die_count; ++d) {
      const Celsius t = to_celsius(network_->max_temperature(d));
      if (t > hottest) hottest = t;
    }
    controller->note_tick(dt, hottest,
                          Watt{network_->total_power().value() +
                               network_->leakage_power().value()});
  };

  Simulator sim;

  // Thermal advancement event: re-program the active power map, then
  // integrate one step.
  const Second h = config_.thermal_step;
  std::function<void(Simulator&)> thermal_tick = [&](Simulator& s) {
    program(s.now());
    network_->step(h);
    account(h);
    if (s.now() + h <= duration) s.schedule_after(h, thermal_tick);
  };
  sim.schedule_at(Second{0.0}, thermal_tick);

  // Sampling event.  With a TDM slot, the stack keeps evolving between the
  // individual site conversions of one scan.
  std::uint64_t scan = 0;
  std::function<void(Simulator&)> sample_tick = [&](Simulator& s) {
    SamplePoint point;
    point.time = s.now();
    if (config_.readout_slot.value() <= 0.0) {
      point.readings = monitor_->sample_all(&noise_);
    } else {
      point.readings.reserve(monitor_->site_count());
      for (std::size_t i = 0; i < monitor_->site_count(); ++i) {
        point.readings.push_back(monitor_->sample_site(i, &noise_));
        if (i + 1 < monitor_->site_count()) {
          program(s.now() + config_.readout_slot * static_cast<double>(i));
          network_->step(config_.readout_slot);
          account(config_.readout_slot);
        }
      }
    }
    if (controller != nullptr) {
      controller->on_scan(scan, s.now(), point.readings);
    }
    ++scan;
    trace_.push_back(std::move(point));
    const Second next = s.now() + config_.sample_period;
    if (next <= duration) s.schedule_after(config_.sample_period, sample_tick);
  };
  sim.schedule_at(config_.sample_period, sample_tick);

  sim.run_until(duration);
}

Samples MonitoringSession::error_samples() const {
  Samples errors;
  for (const SamplePoint& point : trace_) {
    for (const auto& reading : point.readings) errors.add(reading.error());
  }
  return errors;
}

Joule MonitoringSession::total_sensing_energy() const {
  Joule total{0.0};
  for (const SamplePoint& point : trace_) {
    for (const auto& reading : point.readings) total += reading.energy;
  }
  return total;
}

}  // namespace tsvpt::sim
