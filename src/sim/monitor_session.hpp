// Plays a workload against the thermal simulator while the sensor network
// samples on a fixed period — producing the sensed-vs-true tracking traces
// of the stack experiments (F5) and the examples.
#pragma once

#include <cstdint>
#include <vector>

#include "control/controller.hpp"
#include "core/stack_monitor.hpp"
#include "ptsim/stats.hpp"
#include "ptsim/units.hpp"
#include "sim/event_queue.hpp"
#include "thermal/workload.hpp"

namespace tsvpt::sim {

struct SamplePoint {
  Second time{0.0};
  std::vector<core::StackMonitor::SiteReading> readings;
};

class MonitoringSession {
 public:
  struct Config {
    /// Sensor sampling period.
    Second sample_period{1e-3};
    /// Thermal integration / workload re-application granularity.
    Second thermal_step{2e-4};
    /// Start from the steady state of the first workload phase (true) or
    /// from uniform ambient (false).
    bool start_at_steady_state = true;
    /// Serialized (TDM) readout: when > 0, sites are sampled one at a time
    /// with this much wall-clock between them (a shared readout bus/scan
    /// chain), so later sites see a *newer* thermal state while the sample
    /// point as a whole is skewed.  0 = ideal simultaneous sampling.
    /// Site i of a scan nominally timestamped t therefore reflects the
    /// stack at t + i * readout_slot; each reading's `truth` is taken at
    /// that same instant, so per-reading errors stay conversion-accurate
    /// (pinned by MonitoringSession.TdmReadoutSkewsLaterSitesTowardNewer-
    /// ThermalState).
    Second readout_slot{0.0};
    /// Closed-loop seam (not owned; must outlive run()): each scan is fed
    /// to the controller, and every thermal step runs under its held
    /// actuation instead of the raw workload map.  The controller is reset
    /// at the start of run().  nullptr = open-loop (the default).
    control::Controller* controller = nullptr;
  };

  /// All pointers must outlive the session.
  MonitoringSession(thermal::ThermalNetwork* network,
                    const thermal::Workload* workload,
                    core::StackMonitor* monitor, Config config,
                    std::uint64_t noise_seed);

  /// Initialize the thermal state, run power-on calibration, then simulate.
  void run(Second duration);

  [[nodiscard]] const std::vector<SamplePoint>& trace() const {
    return trace_;
  }

  /// All per-site tracking errors (sensed - true, deg C) across the trace.
  [[nodiscard]] Samples error_samples() const;
  /// Total sensing energy across the trace.
  [[nodiscard]] Joule total_sensing_energy() const;

 private:
  thermal::ThermalNetwork* network_;
  const thermal::Workload* workload_;
  core::StackMonitor* monitor_;
  Config config_;
  Rng noise_;
  std::vector<SamplePoint> trace_;
};

}  // namespace tsvpt::sim
