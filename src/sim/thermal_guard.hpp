// Closed-loop thermal management driven by the sensor network: a hysteretic
// throttle that scales the stack's power when any *sensed* temperature
// crosses the trip point.  Demonstrates the sensor in its intended system
// role and quantifies what sensing error costs (a miscalibrated sensor trips
// late — or never).
#pragma once

#include <cstdint>

#include "core/stack_monitor.hpp"
#include "ptsim/units.hpp"
#include "thermal/workload.hpp"

namespace tsvpt::sim {

class ThermalGuard {
 public:
  struct Config {
    Celsius throttle_on{85.0};
    Celsius throttle_off{78.0};
    /// Power multiplier while throttled.
    double throttle_factor = 0.3;
    Second sample_period{1e-3};
    Second thermal_step{2e-4};
  };

  struct Result {
    /// Hottest true / sensed temperatures seen anywhere during the run.
    Celsius max_true{-273.15};
    Celsius max_sensed{-273.15};
    /// Fraction of samples spent throttled, and throttle-on event count.
    double throttled_fraction = 0.0;
    std::size_t throttle_events = 0;
    /// Time integral of true over-limit excess, degC * s (0 = never over).
    double overshoot_integral = 0.0;
  };

  explicit ThermalGuard(Config config) : config_(config) {}

  /// Simulate `duration` of the workload.  When `enabled` is false the
  /// guard only observes (baseline run).
  [[nodiscard]] Result run(thermal::ThermalNetwork& network,
                           const thermal::Workload& workload,
                           core::StackMonitor& monitor, Second duration,
                           std::uint64_t noise_seed, bool enabled) const;

 private:
  Config config_;
};

}  // namespace tsvpt::sim
