// Minimal discrete-event kernel.  Events are (time, sequence) ordered —
// ties break in scheduling order, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "ptsim/units.hpp"

namespace tsvpt::sim {

class Simulator {
 public:
  using Action = std::function<void(Simulator&)>;

  [[nodiscard]] Second now() const { return now_; }
  [[nodiscard]] std::size_t processed_count() const { return processed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

  /// Schedule an action at an absolute time (must not be in the past).
  void schedule_at(Second t, Action action);
  /// Schedule an action `dt` after the current time.
  void schedule_after(Second dt, Action action);

  /// Process events in order until the queue is empty, `t_end` is reached,
  /// or stop() is called.  The clock ends at min(t_end, last event).
  void run_until(Second t_end);

  /// Stop processing after the current event returns.
  void stop() { stopped_ = true; }

 private:
  struct Event {
    double time;
    std::uint64_t sequence;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Second now_{0.0};
  std::uint64_t next_sequence_ = 0;
  std::size_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace tsvpt::sim
