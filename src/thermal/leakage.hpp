// Device-consistent leakage power sources for the thermal network.
//
// Leakage follows the subthreshold current of the technology card — the
// same exponential the sensor's TDRO exploits — so heating a die raises its
// leakage, which heats it further: the positive feedback that makes 3D
// stacks runaway-prone (the A6 bench reproduces the knee).
#pragma once

#include <algorithm>

#include "device/mosfet.hpp"
#include "device/tech.hpp"
#include "ptsim/units.hpp"
#include "thermal/network.hpp"

namespace tsvpt::thermal {

/// A per-cell leakage source with the technology's temperature shape,
/// scaled so one cell dissipates `per_cell_at_ref` at `t_ref`, and clamped
/// at `max_ratio` x the reference (real leakage saturates once devices are
/// fully off-state-limited; the clamp also keeps the runaway transient
/// numerically meaningful).  The absolute scale stands in for the die's
/// total device width, which a floorplan-level model does not resolve.
[[nodiscard]] inline TemperaturePowerFn leakage_source(
    const device::Technology& tech, Volt vdd, Watt per_cell_at_ref,
    Kelvin t_ref, double max_ratio = 40.0) {
  const device::Mosfet nmos{tech, device::TransistorKind::kNmos};
  const device::Mosfet pmos{tech, device::TransistorKind::kPmos};
  auto raw = [nmos, pmos, vdd](double t_kelvin) {
    const Kelvin t{t_kelvin};
    return (nmos.leakage(vdd, t).value() + pmos.leakage(vdd, t).value()) *
           vdd.value();
  };
  const double at_ref = raw(t_ref.value());
  const double scale = per_cell_at_ref.value() / at_ref;
  const double cap = per_cell_at_ref.value() * max_ratio;
  return [raw, scale, cap](double t_kelvin) {
    return std::min(scale * raw(t_kelvin), cap);
  };
}

}  // namespace tsvpt::thermal
