// RC thermal-network assembly and solvers for a TSV 3D stack.
//
// Nodes: one per grid cell per die.  Edges: lateral conduction within a die,
// vertical conduction between stacked dies (bond layer in parallel with the
// copper TSVs that fall inside the cell), plus boundary conductances to the
// heat sink (bottom die) and ambient (top die).
//
// Solvers:
//   * steady_state(): conjugate gradient on the SPD conductance system
//     G T = P + G_b T_amb;
//   * step(): explicit transient integration with automatic substepping at
//     the stability limit (the grids used here are small enough that
//     explicit integration is both simple and fast).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "process/geometry.hpp"
#include "ptsim/units.hpp"
#include "thermal/stack_config.hpp"

namespace tsvpt::thermal {

/// Per-cell power as a function of the cell's absolute temperature (used
/// for leakage feedback).  Must be finite and non-negative.
using TemperaturePowerFn = std::function<double(double t_kelvin)>;

class ThermalNetwork {
 public:
  explicit ThermalNetwork(StackConfig config);

  [[nodiscard]] const StackConfig& config() const { return config_; }
  [[nodiscard]] std::size_t node_count() const { return capacitance_.size(); }
  [[nodiscard]] std::size_t node_index(std::size_t die, std::size_t ix,
                                       std::size_t iy) const;

  // -- Power injection ------------------------------------------------------
  void clear_power();
  void set_cell_power(std::size_t die, std::size_t ix, std::size_t iy, Watt p);
  void add_cell_power(std::size_t die, std::size_t ix, std::size_t iy, Watt p);
  /// Spread `total` uniformly over one die.
  void set_uniform_power(std::size_t die, Watt total);
  /// Gaussian hotspot centered at `center` with the given radius, carrying
  /// `total` watts (normalized over the die).
  void add_hotspot(std::size_t die, process::Point center, Meter radius,
                   Watt total);
  /// Scale every cell's power (used by throttling policies).  Does not
  /// affect temperature-dependent (leakage) sources.
  void scale_power(double factor);
  /// Scale only one die's cells (per-die DVFS / gating actuation).  Like
  /// scale_power, leakage sources are untouched.
  void scale_die_power(std::size_t die, double factor);
  /// Add `total` watts spread uniformly over one die on top of whatever is
  /// already programmed (task-migration landing zone).
  void add_uniform_power(std::size_t die, Watt total);
  [[nodiscard]] Watt total_power() const;
  /// Power currently programmed on one die's map (excluding leakage).
  [[nodiscard]] Watt die_power(std::size_t die) const;

  /// Attach a temperature-dependent per-cell power source to one die
  /// (leakage feedback).  Replaces any previous source on that die.
  void set_leakage_power(std::size_t die, TemperaturePowerFn per_cell);
  void clear_leakage_power();
  /// Leakage power currently dissipated by the *transient* state.
  [[nodiscard]] Watt leakage_power() const;
  [[nodiscard]] Watt cell_power(std::size_t die, std::size_t ix,
                                std::size_t iy) const;

  // -- Steady state ---------------------------------------------------------
  /// Solve for the equilibrium temperature field (kelvin, node-indexed).
  /// With leakage feedback attached, iterates the coupled fixed point
  /// (damped Picard); throws std::runtime_error on thermal runaway (the
  /// iteration diverges past `runaway_limit`).
  [[nodiscard]] std::vector<double> steady_state(double tolerance = 1e-10,
                                                 int max_iterations = 5000)
      const;
  /// Runaway detection threshold for the feedback fixed point.
  void set_runaway_limit(Kelvin limit) { runaway_limit_ = limit; }

  // -- Transient ------------------------------------------------------------
  [[nodiscard]] const std::vector<double>& temperatures() const {
    return state_;
  }
  /// Reset the whole stack to a uniform temperature.
  void set_uniform_temperature(Kelvin t);
  /// Load an explicit state (e.g. a steady-state solution).
  void set_temperatures(std::vector<double> state);
  /// Advance the transient solution by dt (internally substepped).
  void step(Second dt);
  /// Largest stable explicit substep.
  [[nodiscard]] Second stable_substep() const { return stable_dt_; }

  // -- Queries ----------------------------------------------------------
  [[nodiscard]] Kelvin temperature_at(std::size_t die, std::size_t ix,
                                      std::size_t iy) const;
  /// Bilinear interpolation of the current state at a die location.
  [[nodiscard]] Kelvin temperature_at(std::size_t die,
                                      process::Point location) const;
  /// Same interpolation applied to an arbitrary node-indexed field.
  [[nodiscard]] Kelvin field_at(const std::vector<double>& field,
                                std::size_t die,
                                process::Point location) const;
  [[nodiscard]] Kelvin max_temperature(std::size_t die) const;

 private:
  struct Edge {
    std::size_t neighbor;
    double conductance;
  };

  void build();
  void add_edge(std::size_t a, std::size_t b, double conductance);
  [[nodiscard]] std::vector<double> apply_conductance(
      const std::vector<double>& t) const;
  /// Linear steady-state solve for an explicit per-node power vector.
  [[nodiscard]] std::vector<double> solve_linear(
      const std::vector<double>& power, double tolerance,
      int max_iterations) const;
  /// Leakage power of node `n` at temperature `t` (0 without a source).
  [[nodiscard]] double node_leakage(std::size_t n, double t) const;

  StackConfig config_;
  std::vector<TemperaturePowerFn> die_leakage_;  // one slot per die
  std::vector<std::size_t> node_die_;            // die index per node
  Kelvin runaway_limit_{1000.0};
  std::vector<std::size_t> die_node_offset_;
  // CSR-ish adjacency: per-node slice into edges_.
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<double> boundary_conductance_;  // to ambient, per node
  std::vector<double> capacitance_;           // J/K per node
  std::vector<double> power_;                 // W per node
  std::vector<double> state_;                 // K per node (transient)
  Second stable_dt_{1e-5};
};

}  // namespace tsvpt::thermal
