// Text serialization of workloads: drive the thermal simulator from traces
// produced by external tools (power models, measured activity logs) without
// recompiling.  Format — one record per line, '#' comments, phases in
// order:
//
//   # phase <duration_seconds> [name]
//   phase 0.010 burst
//   uniform 0 2.0                       # die, watts
//   hotspot 0 3.0 1.2e-3 3.4e-3 5e-4    # die, watts, x_m, y_m, radius_m
//   phase 0.020 idle
//   uniform 0 0.5
//
// Parse errors carry line numbers.  Serialization round-trips.
#pragma once

#include <iosfwd>
#include <string>

#include "thermal/workload.hpp"

namespace tsvpt::thermal {

[[nodiscard]] Workload parse_workload(std::istream& in);
[[nodiscard]] Workload parse_workload_string(const std::string& text);
[[nodiscard]] Workload load_workload(const std::string& path);

[[nodiscard]] std::string to_trace_string(const Workload& workload);
void save_workload(const Workload& workload, const std::string& path);

}  // namespace tsvpt::thermal
