// Time-varying power workloads for the stack: piecewise phases, each a set
// of power-map directives.  The sim module plays these against the thermal
// network to produce the transient temperature fields the sensors must track.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "process/geometry.hpp"
#include "ptsim/rng.hpp"
#include "ptsim/units.hpp"
#include "thermal/network.hpp"

namespace tsvpt::thermal {

/// One power directive: either a uniform die load or a Gaussian hotspot.
struct PowerDirective {
  enum class Kind { kUniform, kHotspot };
  Kind kind = Kind::kUniform;
  std::size_t die = 0;
  Watt total{0.0};
  // Hotspot-only:
  process::Point center;
  Meter radius{0.5e-3};
};

/// A workload phase: directives that hold for `duration`.
struct WorkloadPhase {
  std::string name;
  Second duration{0.0};
  std::vector<PowerDirective> directives;
};

/// A named sequence of phases.
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<WorkloadPhase> phases);

  [[nodiscard]] const std::vector<WorkloadPhase>& phases() const {
    return phases_;
  }
  [[nodiscard]] Second total_duration() const;

  /// Index of the phase active at time t (clamps to the last phase).
  [[nodiscard]] std::size_t phase_at(Second t) const;

  /// Program the network's power map for the phase active at time t.
  void apply(ThermalNetwork& network, Second t) const;

  // -- Canned workloads used by examples and benches ------------------------
  /// Burst-idle pattern: compute bursts on the logic die with a migrating
  /// hotspot, idle floors elsewhere.  Mirrors a neural-recording DSP stack:
  /// die 0 = MCU/DSP (hot), die 1..n = AFE/ADC dies (cool).
  [[nodiscard]] static Workload burst_idle(const StackConfig& config,
                                           Watt peak, Watt idle,
                                           Second period, std::size_t cycles);
  /// Random phases (for property tests): bounded powers, random hotspots.
  [[nodiscard]] static Workload random(const StackConfig& config, Rng& rng,
                                       std::size_t phase_count, Watt max_power,
                                       Second max_phase);

 private:
  std::vector<WorkloadPhase> phases_;
};

}  // namespace tsvpt::thermal
