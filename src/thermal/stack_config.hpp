// Geometry and material description of a TSV 3D stack for thermal analysis.
//
// The stack is modeled die-by-die: each die is a silicon slab discretized
// into an nx x ny grid; adjacent dies are coupled through a bond/underfill
// layer whose poor conductivity is shorted locally by copper TSVs; the
// bottom die conducts into the package/heat-sink; the top die sees weak
// convection.  This is the standard compact thermal model (HotSpot-style)
// for stacked ICs, which is what the paper's use case — intra-die
// temperature monitoring in a 3D stack — needs from its environment.
#pragma once

#include <cstddef>
#include <vector>

#include "process/geometry.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::thermal {

/// Bulk material properties.
struct MaterialProps {
  /// Thermal conductivity, W/(m K).
  double conductivity = 0.0;
  /// Density, kg/m^3.
  double density = 0.0;
  /// Specific heat, J/(kg K).
  double specific_heat = 0.0;
};

[[nodiscard]] MaterialProps silicon();
[[nodiscard]] MaterialProps copper();
[[nodiscard]] MaterialProps underfill();

/// One die layer in the stack.
struct DieGeometry {
  Meter width{5e-3};
  Meter height{5e-3};
  /// Thinned-die silicon thickness.
  Meter thickness{100e-6};
  std::size_t nx = 8;
  std::size_t ny = 8;
};

/// Bond/underfill layer between two adjacent dies.
struct BondLayer {
  Meter thickness{20e-6};
  MaterialProps material = underfill();
};

/// TSV thermal description: copper cylinders crossing a bond interface.
struct TsvThermal {
  Meter radius{2.5e-6};
  MaterialProps material = copper();
  /// TSV centers, shared by every interface (a through-stack via field).
  std::vector<process::Point> centers;
};

struct StackConfig {
  std::vector<DieGeometry> dies;
  /// bonds[i] couples die i and die i+1; size must be dies.size() - 1.
  std::vector<BondLayer> bonds;
  TsvThermal tsv;
  /// Total package/heat-sink thermal resistance from the bottom die, K/W.
  double sink_resistance = 2.0;
  /// Convective resistance from the top die to ambient, K/W (large: the top
  /// of a molded stack barely convects).
  double top_resistance = 200.0;
  Kelvin ambient{298.15};

  [[nodiscard]] std::size_t die_count() const { return dies.size(); }
  void validate() const;

  /// A representative 4-die neural-sensing-style stack (5x5 mm dies, 100 um
  /// thin, 8x8 cells, 4x4 TSV field) used by examples and benches.
  [[nodiscard]] static StackConfig four_die_stack();
};

}  // namespace tsvpt::thermal
