#include "thermal/workload_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tsvpt::thermal {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error{"workload trace line " + std::to_string(line) +
                           ": " + message};
}

double number(std::istringstream& in, int line, const char* what) {
  double value = 0.0;
  if (!(in >> value)) fail(line, std::string{"missing/invalid "} + what);
  return value;
}

std::size_t index(std::istringstream& in, int line, const char* what) {
  long long value = 0;
  if (!(in >> value) || value < 0) {
    fail(line, std::string{"missing/invalid "} + what);
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

Workload parse_workload(std::istream& in) {
  std::vector<WorkloadPhase> phases;
  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream fields{raw};
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank line

    if (keyword == "phase") {
      const double duration = number(fields, line_number, "phase duration");
      if (duration <= 0.0) fail(line_number, "phase duration must be > 0");
      WorkloadPhase phase;
      phase.duration = Second{duration};
      fields >> phase.name;  // optional
      phases.push_back(std::move(phase));
      continue;
    }
    if (phases.empty()) {
      fail(line_number, "directive before any 'phase' record");
    }
    PowerDirective directive;
    if (keyword == "uniform") {
      directive.kind = PowerDirective::Kind::kUniform;
      directive.die = index(fields, line_number, "die index");
      directive.total = Watt{number(fields, line_number, "watts")};
    } else if (keyword == "hotspot") {
      directive.kind = PowerDirective::Kind::kHotspot;
      directive.die = index(fields, line_number, "die index");
      directive.total = Watt{number(fields, line_number, "watts")};
      directive.center.x = number(fields, line_number, "x");
      directive.center.y = number(fields, line_number, "y");
      directive.radius = Meter{number(fields, line_number, "radius")};
      if (directive.radius.value() <= 0.0) {
        fail(line_number, "hotspot radius must be > 0");
      }
    } else {
      fail(line_number, "unknown record '" + keyword + "'");
    }
    if (directive.total.value() < 0.0) {
      fail(line_number, "power must be >= 0");
    }
    std::string extra;
    if (fields >> extra) fail(line_number, "trailing field '" + extra + "'");
    phases.back().directives.push_back(directive);
  }
  if (phases.empty()) throw std::runtime_error{"workload trace: no phases"};
  return Workload{std::move(phases)};
}

Workload parse_workload_string(const std::string& text) {
  std::istringstream in{text};
  return parse_workload(in);
}

Workload load_workload(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open workload trace: " + path};
  return parse_workload(in);
}

std::string to_trace_string(const Workload& workload) {
  std::ostringstream os;
  os.precision(17);
  for (const WorkloadPhase& phase : workload.phases()) {
    os << "phase " << phase.duration.value();
    if (!phase.name.empty()) os << ' ' << phase.name;
    os << '\n';
    for (const PowerDirective& d : phase.directives) {
      if (d.kind == PowerDirective::Kind::kUniform) {
        os << "uniform " << d.die << ' ' << d.total.value() << '\n';
      } else {
        os << "hotspot " << d.die << ' ' << d.total.value() << ' '
           << d.center.x << ' ' << d.center.y << ' ' << d.radius.value()
           << '\n';
      }
    }
  }
  return os.str();
}

void save_workload(const Workload& workload, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot write workload trace: " + path};
  out << to_trace_string(workload);
  if (!out) throw std::runtime_error{"write failed: " + path};
}

}  // namespace tsvpt::thermal
