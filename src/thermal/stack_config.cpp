#include "thermal/stack_config.hpp"

#include <stdexcept>

#include "process/tsv_stress.hpp"

namespace tsvpt::thermal {

MaterialProps silicon() { return {120.0, 2330.0, 700.0}; }
MaterialProps copper() { return {400.0, 8960.0, 385.0}; }
MaterialProps underfill() { return {0.9, 1700.0, 1000.0}; }

void StackConfig::validate() const {
  if (dies.empty()) throw std::invalid_argument{"StackConfig: no dies"};
  if (bonds.size() + 1 != dies.size()) {
    throw std::invalid_argument{"StackConfig: bonds must be dies-1"};
  }
  for (const DieGeometry& die : dies) {
    if (die.nx == 0 || die.ny == 0) {
      throw std::invalid_argument{"StackConfig: zero grid"};
    }
    if (die.width.value() <= 0.0 || die.height.value() <= 0.0 ||
        die.thickness.value() <= 0.0) {
      throw std::invalid_argument{"StackConfig: non-positive die dims"};
    }
  }
  for (const BondLayer& bond : bonds) {
    if (bond.thickness.value() <= 0.0 || bond.material.conductivity <= 0.0) {
      throw std::invalid_argument{"StackConfig: bad bond layer"};
    }
  }
  if (sink_resistance <= 0.0 || top_resistance <= 0.0) {
    throw std::invalid_argument{"StackConfig: non-positive boundary R"};
  }
}

StackConfig StackConfig::four_die_stack() {
  StackConfig cfg;
  DieGeometry die;
  die.width = Meter{5e-3};
  die.height = Meter{5e-3};
  die.thickness = Meter{100e-6};
  die.nx = 8;
  die.ny = 8;
  cfg.dies.assign(4, die);
  cfg.bonds.assign(3, BondLayer{});
  cfg.tsv.centers = process::TsvStressField::grid_layout(
      die.width, die.height, 4, 4);
  cfg.sink_resistance = 2.0;
  cfg.top_resistance = 200.0;
  cfg.ambient = Kelvin{298.15};
  return cfg;
}

}  // namespace tsvpt::thermal
