#include "thermal/workload.hpp"

#include <stdexcept>

namespace tsvpt::thermal {

Workload::Workload(std::vector<WorkloadPhase> phases)
    : phases_(std::move(phases)) {
  for (const WorkloadPhase& phase : phases_) {
    if (phase.duration.value() <= 0.0) {
      throw std::invalid_argument{"Workload: non-positive phase duration"};
    }
  }
}

Second Workload::total_duration() const {
  Second total{0.0};
  for (const WorkloadPhase& phase : phases_) total += phase.duration;
  return total;
}

std::size_t Workload::phase_at(Second t) const {
  if (phases_.empty()) throw std::logic_error{"Workload: empty"};
  double remaining = t.value();
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    remaining -= phases_[i].duration.value();
    if (remaining < 0.0) return i;
  }
  return phases_.size() - 1;
}

void Workload::apply(ThermalNetwork& network, Second t) const {
  const WorkloadPhase& phase = phases_[phase_at(t)];
  network.clear_power();
  for (const PowerDirective& d : phase.directives) {
    switch (d.kind) {
      case PowerDirective::Kind::kUniform:
        network.set_uniform_power(d.die, d.total);
        break;
      case PowerDirective::Kind::kHotspot:
        network.add_hotspot(d.die, d.center, d.radius, d.total);
        break;
    }
  }
}

Workload Workload::burst_idle(const StackConfig& config, Watt peak, Watt idle,
                              Second period, std::size_t cycles) {
  if (config.dies.empty()) throw std::invalid_argument{"burst_idle: no dies"};
  if (cycles == 0) throw std::invalid_argument{"burst_idle: zero cycles"};
  const double w = config.dies[0].width.value();
  const double h = config.dies[0].height.value();
  std::vector<WorkloadPhase> phases;
  phases.reserve(2 * cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    WorkloadPhase burst;
    burst.name = "burst";
    burst.duration = period * 0.5;
    // Hotspot migrates between cycles: alternating corners.
    const bool even = c % 2 == 0;
    PowerDirective hot;
    hot.kind = PowerDirective::Kind::kHotspot;
    hot.die = 0;
    hot.total = peak;
    hot.center = even ? process::Point{0.3 * w, 0.3 * h}
                      : process::Point{0.7 * w, 0.7 * h};
    hot.radius = Meter{0.15 * w};
    burst.directives.push_back(hot);
    for (std::size_t d = 1; d < config.dies.size(); ++d) {
      burst.directives.push_back(
          {PowerDirective::Kind::kUniform, d, idle, {}, Meter{0.0}});
    }
    phases.push_back(std::move(burst));

    WorkloadPhase quiet;
    quiet.name = "idle";
    quiet.duration = period * 0.5;
    for (std::size_t d = 0; d < config.dies.size(); ++d) {
      quiet.directives.push_back(
          {PowerDirective::Kind::kUniform, d, idle, {}, Meter{0.0}});
    }
    phases.push_back(std::move(quiet));
  }
  return Workload{std::move(phases)};
}

Workload Workload::random(const StackConfig& config, Rng& rng,
                          std::size_t phase_count, Watt max_power,
                          Second max_phase) {
  if (phase_count == 0) throw std::invalid_argument{"random: zero phases"};
  std::vector<WorkloadPhase> phases;
  phases.reserve(phase_count);
  for (std::size_t i = 0; i < phase_count; ++i) {
    WorkloadPhase phase;
    phase.name = "rand" + std::to_string(i);
    phase.duration = Second{rng.uniform(0.1, 1.0) * max_phase.value()};
    for (std::size_t d = 0; d < config.dies.size(); ++d) {
      if (rng.bernoulli(0.5)) {
        phases.reserve(phase_count);
        PowerDirective dir;
        dir.kind = PowerDirective::Kind::kHotspot;
        dir.die = d;
        dir.total = Watt{rng.uniform(0.0, max_power.value())};
        dir.center = {rng.uniform(0.0, config.dies[d].width.value()),
                      rng.uniform(0.0, config.dies[d].height.value())};
        dir.radius = Meter{rng.uniform(0.1, 0.3) *
                           config.dies[d].width.value()};
        phase.directives.push_back(dir);
      } else {
        phase.directives.push_back(
            {PowerDirective::Kind::kUniform, d,
             Watt{rng.uniform(0.0, max_power.value())}, {}, Meter{0.0}});
      }
    }
    phases.push_back(std::move(phase));
  }
  return Workload{std::move(phases)};
}

}  // namespace tsvpt::thermal
