#include "thermal/network.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tsvpt::thermal {

ThermalNetwork::ThermalNetwork(StackConfig config) : config_(std::move(config)) {
  config_.validate();
  build();
}

std::size_t ThermalNetwork::node_index(std::size_t die, std::size_t ix,
                                       std::size_t iy) const {
  if (die >= config_.dies.size()) throw std::out_of_range{"die index"};
  const DieGeometry& geom = config_.dies[die];
  if (ix >= geom.nx || iy >= geom.ny) throw std::out_of_range{"cell index"};
  return die_node_offset_[die] + iy * geom.nx + ix;
}

void ThermalNetwork::add_edge(std::size_t a, std::size_t b,
                              double conductance) {
  adjacency_[a].push_back({b, conductance});
  adjacency_[b].push_back({a, conductance});
}

void ThermalNetwork::build() {
  const std::size_t die_count = config_.dies.size();
  die_node_offset_.resize(die_count);
  std::size_t total = 0;
  for (std::size_t d = 0; d < die_count; ++d) {
    die_node_offset_[d] = total;
    total += config_.dies[d].nx * config_.dies[d].ny;
  }
  adjacency_.assign(total, {});
  boundary_conductance_.assign(total, 0.0);
  capacitance_.assign(total, 0.0);
  power_.assign(total, 0.0);
  state_.assign(total, config_.ambient.value());
  die_leakage_.assign(die_count, nullptr);
  node_die_.resize(total);
  for (std::size_t d = 0; d < die_count; ++d) {
    const DieGeometry& geom = config_.dies[d];
    for (std::size_t c = 0; c < geom.nx * geom.ny; ++c) {
      node_die_[die_node_offset_[d] + c] = d;
    }
  }

  const MaterialProps si = silicon();

  for (std::size_t d = 0; d < die_count; ++d) {
    const DieGeometry& geom = config_.dies[d];
    const double cell_w = geom.width.value() / static_cast<double>(geom.nx);
    const double cell_h = geom.height.value() / static_cast<double>(geom.ny);
    const double thick = geom.thickness.value();
    const double cell_volume = cell_w * cell_h * thick;

    // Lateral conductances: G = k * A_cross / L between cell centers.
    const double g_x = si.conductivity * (cell_h * thick) / cell_w;
    const double g_y = si.conductivity * (cell_w * thick) / cell_h;
    for (std::size_t iy = 0; iy < geom.ny; ++iy) {
      for (std::size_t ix = 0; ix < geom.nx; ++ix) {
        const std::size_t n = node_index(d, ix, iy);
        capacitance_[n] = si.density * si.specific_heat * cell_volume;
        if (ix + 1 < geom.nx) add_edge(n, node_index(d, ix + 1, iy), g_x);
        if (iy + 1 < geom.ny) add_edge(n, node_index(d, ix, iy + 1), g_y);
      }
    }

    // Boundary: bottom die to heat sink, top die to ambient air, spread
    // uniformly over the die's cells.
    const auto cells = static_cast<double>(geom.nx * geom.ny);
    if (d == 0) {
      const double g_cell = 1.0 / (config_.sink_resistance * cells);
      for (std::size_t iy = 0; iy < geom.ny; ++iy) {
        for (std::size_t ix = 0; ix < geom.nx; ++ix) {
          boundary_conductance_[node_index(d, ix, iy)] += g_cell;
        }
      }
    }
    if (d + 1 == die_count) {
      const double g_cell = 1.0 / (config_.top_resistance * cells);
      for (std::size_t iy = 0; iy < geom.ny; ++iy) {
        for (std::size_t ix = 0; ix < geom.nx; ++ix) {
          boundary_conductance_[node_index(d, ix, iy)] += g_cell;
        }
      }
    }
  }

  // Vertical coupling: bond layer per overlapping cell pair, TSVs shorting
  // the bond where they land.  Dies are assumed aligned; the coupling uses
  // the lower die's grid and maps each cell center onto the upper die.
  for (std::size_t d = 0; d + 1 < die_count; ++d) {
    const DieGeometry& lower = config_.dies[d];
    const DieGeometry& upper = config_.dies[d + 1];
    const BondLayer& bond = config_.bonds[d];
    const double cell_w = lower.width.value() / static_cast<double>(lower.nx);
    const double cell_h = lower.height.value() / static_cast<double>(lower.ny);
    const double g_bond_cell =
        bond.material.conductivity * (cell_w * cell_h) /
        bond.thickness.value();
    const double via_area = std::numbers::pi *
                            config_.tsv.radius.value() *
                            config_.tsv.radius.value();
    // A TSV crosses the bond layer plus the thinned die above it.
    const double via_length =
        bond.thickness.value() + config_.dies[d + 1].thickness.value();
    const double g_tsv = config_.tsv.material.conductivity * via_area /
                         via_length;

    for (std::size_t iy = 0; iy < lower.ny; ++iy) {
      for (std::size_t ix = 0; ix < lower.nx; ++ix) {
        const double cx = (static_cast<double>(ix) + 0.5) * cell_w;
        const double cy = (static_cast<double>(iy) + 0.5) * cell_h;
        // Count TSVs whose center lands in this cell.
        double g_via_total = 0.0;
        for (const process::Point& c : config_.tsv.centers) {
          if (c.x >= cx - 0.5 * cell_w && c.x < cx + 0.5 * cell_w &&
              c.y >= cy - 0.5 * cell_h && c.y < cy + 0.5 * cell_h) {
            g_via_total += g_tsv;
          }
        }
        // Map to the upper die's cell containing (cx, cy).
        const auto ux = std::min(
            static_cast<std::size_t>(cx / (upper.width.value() /
                                           static_cast<double>(upper.nx))),
            upper.nx - 1);
        const auto uy = std::min(
            static_cast<std::size_t>(cy / (upper.height.value() /
                                           static_cast<double>(upper.ny))),
            upper.ny - 1);
        add_edge(node_index(d, ix, iy), node_index(d + 1, ux, uy),
                 g_bond_cell + g_via_total);
      }
    }
  }

  // Explicit stability: dt < min_n C_n / sum(G_n).  Use a safety factor.
  double min_tau = 1e30;
  for (std::size_t n = 0; n < capacitance_.size(); ++n) {
    double g_sum = boundary_conductance_[n];
    for (const Edge& e : adjacency_[n]) g_sum += e.conductance;
    if (g_sum > 0.0) min_tau = std::min(min_tau, capacitance_[n] / g_sum);
  }
  stable_dt_ = Second{0.5 * min_tau};
}

void ThermalNetwork::clear_power() {
  std::fill(power_.begin(), power_.end(), 0.0);
}

void ThermalNetwork::set_cell_power(std::size_t die, std::size_t ix,
                                    std::size_t iy, Watt p) {
  power_[node_index(die, ix, iy)] = p.value();
}

void ThermalNetwork::add_cell_power(std::size_t die, std::size_t ix,
                                    std::size_t iy, Watt p) {
  power_[node_index(die, ix, iy)] += p.value();
}

void ThermalNetwork::set_uniform_power(std::size_t die, Watt total) {
  const DieGeometry& geom = config_.dies[die];
  const double per_cell =
      total.value() / static_cast<double>(geom.nx * geom.ny);
  for (std::size_t iy = 0; iy < geom.ny; ++iy) {
    for (std::size_t ix = 0; ix < geom.nx; ++ix) {
      power_[node_index(die, ix, iy)] = per_cell;
    }
  }
}

void ThermalNetwork::add_hotspot(std::size_t die, process::Point center,
                                 Meter radius, Watt total) {
  if (radius.value() <= 0.0) throw std::invalid_argument{"hotspot radius"};
  const DieGeometry& geom = config_.dies.at(die);
  const double cell_w = geom.width.value() / static_cast<double>(geom.nx);
  const double cell_h = geom.height.value() / static_cast<double>(geom.ny);
  std::vector<double> weights(geom.nx * geom.ny, 0.0);
  double weight_sum = 0.0;
  for (std::size_t iy = 0; iy < geom.ny; ++iy) {
    for (std::size_t ix = 0; ix < geom.nx; ++ix) {
      const process::Point cell_center{
          (static_cast<double>(ix) + 0.5) * cell_w,
          (static_cast<double>(iy) + 0.5) * cell_h};
      const double d = cell_center.distance_to(center) / radius.value();
      const double w = std::exp(-0.5 * d * d);
      weights[iy * geom.nx + ix] = w;
      weight_sum += w;
    }
  }
  for (std::size_t iy = 0; iy < geom.ny; ++iy) {
    for (std::size_t ix = 0; ix < geom.nx; ++ix) {
      power_[node_index(die, ix, iy)] +=
          total.value() * weights[iy * geom.nx + ix] / weight_sum;
    }
  }
}

void ThermalNetwork::scale_power(double factor) {
  if (factor < 0.0) throw std::invalid_argument{"scale_power: negative"};
  for (double& p : power_) p *= factor;
}

void ThermalNetwork::scale_die_power(std::size_t die, double factor) {
  if (factor < 0.0) {
    throw std::invalid_argument{"scale_die_power: negative"};
  }
  const DieGeometry& geom = config_.dies.at(die);
  const std::size_t begin = die_node_offset_[die];
  const std::size_t end = begin + geom.nx * geom.ny;
  for (std::size_t n = begin; n < end; ++n) power_[n] *= factor;
}

void ThermalNetwork::add_uniform_power(std::size_t die, Watt total) {
  const DieGeometry& geom = config_.dies.at(die);
  const double per_cell =
      total.value() / static_cast<double>(geom.nx * geom.ny);
  const std::size_t begin = die_node_offset_[die];
  const std::size_t end = begin + geom.nx * geom.ny;
  for (std::size_t n = begin; n < end; ++n) power_[n] += per_cell;
}

Watt ThermalNetwork::die_power(std::size_t die) const {
  const DieGeometry& geom = config_.dies.at(die);
  const std::size_t begin = die_node_offset_[die];
  const std::size_t end = begin + geom.nx * geom.ny;
  double sum = 0.0;
  for (std::size_t n = begin; n < end; ++n) sum += power_[n];
  return Watt{sum};
}

Watt ThermalNetwork::total_power() const {
  double sum = 0.0;
  for (double p : power_) sum += p;
  return Watt{sum};
}

Watt ThermalNetwork::cell_power(std::size_t die, std::size_t ix,
                                std::size_t iy) const {
  return Watt{power_[node_index(die, ix, iy)]};
}

std::vector<double> ThermalNetwork::apply_conductance(
    const std::vector<double>& t) const {
  // y = G t where G is the (SPD) conductance matrix including boundary terms.
  std::vector<double> y(t.size(), 0.0);
  for (std::size_t n = 0; n < t.size(); ++n) {
    double acc = boundary_conductance_[n] * t[n];
    for (const Edge& e : adjacency_[n]) {
      acc += e.conductance * (t[n] - t[e.neighbor]);
    }
    y[n] = acc;
  }
  return y;
}

void ThermalNetwork::set_leakage_power(std::size_t die,
                                       TemperaturePowerFn per_cell) {
  if (die >= config_.dies.size()) throw std::out_of_range{"die index"};
  die_leakage_[die] = std::move(per_cell);
}

void ThermalNetwork::clear_leakage_power() {
  std::fill(die_leakage_.begin(), die_leakage_.end(), nullptr);
}

double ThermalNetwork::node_leakage(std::size_t n, double t) const {
  const TemperaturePowerFn& fn = die_leakage_[node_die_[n]];
  if (!fn) return 0.0;
  const double p = fn(t);
  if (!(p >= 0.0) || !std::isfinite(p)) {
    throw std::runtime_error{"leakage power must be finite and >= 0"};
  }
  return p;
}

Watt ThermalNetwork::leakage_power() const {
  double sum = 0.0;
  for (std::size_t n = 0; n < node_count(); ++n) {
    sum += node_leakage(n, state_[n]);
  }
  return Watt{sum};
}

std::vector<double> ThermalNetwork::steady_state(double tolerance,
                                                 int max_iterations) const {
  bool any_leakage = false;
  for (const TemperaturePowerFn& fn : die_leakage_) {
    if (fn) any_leakage = true;
  }
  if (!any_leakage) return solve_linear(power_, tolerance, max_iterations);

  // Coupled fixed point: solve the linear network with leakage evaluated at
  // the previous iterate, damped to tame the exponential feedback.
  std::vector<double> field(node_count(), config_.ambient.value());
  constexpr double kDamping = 0.7;
  std::vector<double> total_power(node_count());
  for (int it = 0; it < 200; ++it) {
    for (std::size_t n = 0; n < node_count(); ++n) {
      total_power[n] = power_[n] + node_leakage(n, field[n]);
    }
    const std::vector<double> next =
        solve_linear(total_power, tolerance, max_iterations);
    double delta = 0.0;
    for (std::size_t n = 0; n < node_count(); ++n) {
      const double blended =
          field[n] + kDamping * (next[n] - field[n]);
      delta = std::max(delta, std::abs(blended - field[n]));
      field[n] = blended;
      if (field[n] > runaway_limit_.value()) {
        throw std::runtime_error{
            "thermal runaway: leakage feedback diverged"};
      }
    }
    if (delta < 1e-6) return field;
  }
  throw std::runtime_error{"steady_state: leakage fixed point stalled"};
}

std::vector<double> ThermalNetwork::solve_linear(
    const std::vector<double>& power, double tolerance,
    int max_iterations) const {
  const std::size_t n = node_count();
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = power[i] + boundary_conductance_[i] * config_.ambient.value();
  }
  // Conjugate gradient with Jacobi preconditioning.
  std::vector<double> diag(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = boundary_conductance_[i];
    for (const Edge& e : adjacency_[i]) diag[i] += e.conductance;
    if (diag[i] <= 0.0) {
      throw std::runtime_error{"steady_state: floating node (no path out)"};
    }
  }
  std::vector<double> x(n, config_.ambient.value());
  std::vector<double> r = b;
  {
    const std::vector<double> ax = apply_conductance(x);
    for (std::size_t i = 0; i < n; ++i) r[i] -= ax[i];
  }
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
  std::vector<double> p = z;
  double rz = 0.0;
  for (std::size_t i = 0; i < n; ++i) rz += r[i] * z[i];
  double b_norm = 0.0;
  for (double v : b) b_norm += v * v;
  b_norm = std::sqrt(b_norm);
  if (b_norm == 0.0) b_norm = 1.0;

  for (int it = 0; it < max_iterations; ++it) {
    double r_norm = 0.0;
    for (double v : r) r_norm += v * v;
    if (std::sqrt(r_norm) / b_norm < tolerance) break;

    const std::vector<double> ap = apply_conductance(p);
    double pap = 0.0;
    for (std::size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    if (pap <= 0.0) break;  // numerical breakdown; x is the best we have
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
    double rz_new = 0.0;
    for (std::size_t i = 0; i < n; ++i) rz_new += r[i] * z[i];
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return x;
}

void ThermalNetwork::set_uniform_temperature(Kelvin t) {
  std::fill(state_.begin(), state_.end(), t.value());
}

void ThermalNetwork::set_temperatures(std::vector<double> state) {
  if (state.size() != node_count()) {
    throw std::invalid_argument{"set_temperatures: wrong size"};
  }
  state_ = std::move(state);
}

void ThermalNetwork::step(Second dt) {
  if (dt.value() <= 0.0) throw std::invalid_argument{"step: dt <= 0"};
  double remaining = dt.value();
  const double h_max = stable_dt_.value();
  std::vector<double> deriv(node_count());
  while (remaining > 0.0) {
    const double h = std::min(remaining, h_max);
    const std::vector<double> flow = apply_conductance(state_);
    for (std::size_t n = 0; n < node_count(); ++n) {
      deriv[n] = (power_[n] + node_leakage(n, state_[n]) +
                  boundary_conductance_[n] * config_.ambient.value() -
                  flow[n]) /
                 capacitance_[n];
    }
    for (std::size_t n = 0; n < node_count(); ++n) state_[n] += h * deriv[n];
    remaining -= h;
  }
}

Kelvin ThermalNetwork::temperature_at(std::size_t die, std::size_t ix,
                                      std::size_t iy) const {
  return Kelvin{state_[node_index(die, ix, iy)]};
}

Kelvin ThermalNetwork::field_at(const std::vector<double>& field,
                                std::size_t die,
                                process::Point location) const {
  if (field.size() != node_count()) {
    throw std::invalid_argument{"field_at: wrong field size"};
  }
  const DieGeometry& geom = config_.dies.at(die);
  const double cell_w = geom.width.value() / static_cast<double>(geom.nx);
  const double cell_h = geom.height.value() / static_cast<double>(geom.ny);
  // Continuous cell-center coordinates.
  const double gx = std::clamp(location.x / cell_w - 0.5, 0.0,
                               static_cast<double>(geom.nx - 1));
  const double gy = std::clamp(location.y / cell_h - 0.5, 0.0,
                               static_cast<double>(geom.ny - 1));
  const std::size_t ix =
      geom.nx == 1 ? 0 : std::min(static_cast<std::size_t>(gx), geom.nx - 2);
  const std::size_t iy =
      geom.ny == 1 ? 0 : std::min(static_cast<std::size_t>(gy), geom.ny - 2);
  const std::size_t ix1 = std::min(ix + 1, geom.nx - 1);
  const std::size_t iy1 = std::min(iy + 1, geom.ny - 1);
  const double fx = gx - static_cast<double>(ix);
  const double fy = gy - static_cast<double>(iy);
  const double t00 = field[node_index(die, ix, iy)];
  const double t10 = field[node_index(die, ix1, iy)];
  const double t01 = field[node_index(die, ix, iy1)];
  const double t11 = field[node_index(die, ix1, iy1)];
  return Kelvin{t00 * (1 - fx) * (1 - fy) + t10 * fx * (1 - fy) +
                t01 * (1 - fx) * fy + t11 * fx * fy};
}

Kelvin ThermalNetwork::temperature_at(std::size_t die,
                                      process::Point location) const {
  return field_at(state_, die, location);
}

Kelvin ThermalNetwork::max_temperature(std::size_t die) const {
  const DieGeometry& geom = config_.dies.at(die);
  double best = -1e30;
  for (std::size_t iy = 0; iy < geom.ny; ++iy) {
    for (std::size_t ix = 0; ix < geom.nx; ++ix) {
      best = std::max(best, state_[node_index(die, ix, iy)]);
    }
  }
  return Kelvin{best};
}

}  // namespace tsvpt::thermal
