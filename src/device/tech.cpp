#include "device/tech.hpp"

namespace tsvpt::device {

const char* to_string(Corner corner) {
  switch (corner) {
    case Corner::kTT:
      return "TT";
    case Corner::kFF:
      return "FF";
    case Corner::kSS:
      return "SS";
    case Corner::kFS:
      return "FS";
    case Corner::kSF:
      return "SF";
  }
  return "?";
}

std::array<Corner, 5> all_corners() {
  return {Corner::kTT, Corner::kFF, Corner::kSS, Corner::kFS, Corner::kSF};
}

CornerShift Technology::corner_shift(Corner corner) const {
  // Fast corners are low-Vt (more drive), slow corners high-Vt.  +/-3 sigma
  // of the D2D spread is the conventional corner definition.
  const Volt fast{-3.0 * sigma_vt_d2d.value()};
  const Volt slow{+3.0 * sigma_vt_d2d.value()};
  switch (corner) {
    case Corner::kTT:
      return {Volt{0.0}, Volt{0.0}};
    case Corner::kFF:
      return {fast, fast};
    case Corner::kSS:
      return {slow, slow};
    case Corner::kFS:  // fast NMOS, slow PMOS
      return {fast, slow};
    case Corner::kSF:  // slow NMOS, fast PMOS
      return {slow, fast};
  }
  return {};
}

Technology Technology::tsmc65_like() {
  Technology tech;
  tech.name = "65nm-GP-like";
  tech.vdd_nominal = Volt{1.0};
  tech.t_ref = Kelvin{300.0};

  tech.nmos.vt0 = Volt{0.42};
  tech.nmos.dvt_dt = -0.9e-3;
  tech.nmos.mobility_exponent = 1.5;
  tech.nmos.slope_factor = 1.35;
  tech.nmos.i_spec0 = Ampere{4.2e-6};

  // PMOS: slightly higher |Vt|, lower mobility (hole transport), expressed
  // through a smaller specific current.
  tech.pmos.vt0 = Volt{0.40};
  tech.pmos.dvt_dt = -0.8e-3;
  tech.pmos.mobility_exponent = 1.4;
  tech.pmos.slope_factor = 1.40;
  tech.pmos.i_spec0 = Ampere{3.0e-6};

  tech.stage_cap = Farad{2.0e-15};
  tech.sigma_vt_d2d = Volt{12e-3};
  tech.sigma_vt_wid = Volt{8e-3};
  tech.wid_correlation_length = Meter{1.0e-3};
  return tech;
}

Technology Technology::lp65_like() {
  Technology tech = tsmc65_like();
  tech.name = "65nm-LP-like";
  tech.nmos.vt0 = Volt{0.50};
  tech.pmos.vt0 = Volt{0.47};
  tech.nmos.i_spec0 = Ampere{3.0e-6};
  tech.pmos.i_spec0 = Ampere{2.2e-6};
  tech.vdd_nominal = Volt{1.2};
  return tech;
}

}  // namespace tsvpt::device
