// Behavioral MOSFET current model.
//
// EKV-style interpolation between subthreshold exponential conduction and
// strong-inversion square-law conduction:
//
//   Id(Vgs, T) = I_spec(T) * ln(1 + exp(u / (2 n vT)))^2,
//   u          = Vgs - |Vt|(T),
//   I_spec(T)  = I_spec0 * (T/T0)^-m * (vT/vT0)^2.
//
// This single smooth expression reproduces the two facts the paper's sensor
// exploits:
//   * at full overdrive, mobility degradation (T^-m) dominates — a standard
//     ring oscillator slows slightly as temperature rises and is strongly
//     Vt-sensitive;
//   * near/below threshold, the exp(u / n vT) term dominates — a
//     current-starved oscillator speeds up steeply and monotonically with
//     temperature.
// Vds dependence is folded into the saturation assumption (oscillator stages
// switch rail-to-rail), with an explicit (1 - exp(-Vds/vT)) factor available
// for triode-region queries.
#pragma once

#include "device/tech.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::device {

/// Per-instance threshold deviation: the sum of die-to-die, within-die and
/// stress-induced shifts, in volts added to |Vt|.
struct VtDelta {
  Volt nmos{0.0};
  Volt pmos{0.0};

  [[nodiscard]] Volt of(TransistorKind kind) const {
    return kind == TransistorKind::kNmos ? nmos : pmos;
  }
  friend VtDelta operator+(VtDelta a, VtDelta b) {
    return {a.nmos + b.nmos, a.pmos + b.pmos};
  }
};

/// Evaluates drain current, threshold voltage and leakage for one transistor
/// type of a Technology, given operating temperature and a Vt deviation.
class Mosfet {
 public:
  Mosfet(const Technology& tech, TransistorKind kind);

  [[nodiscard]] TransistorKind kind() const { return kind_; }

  /// |Vt| at temperature t including the per-instance deviation.
  [[nodiscard]] Volt vt(Kelvin t, Volt delta_vt = Volt{0.0}) const;

  /// Saturation drain-current magnitude at gate overdrive from Vgs (gate
  /// voltage magnitude relative to source).  Always >= 0.
  [[nodiscard]] Ampere id_sat(Volt vgs, Kelvin t,
                              Volt delta_vt = Volt{0.0}) const;

  /// Drain current including the drain-saturation factor for small Vds.
  [[nodiscard]] Ampere id(Volt vgs, Volt vds, Kelvin t,
                          Volt delta_vt = Volt{0.0}) const;

  /// Subthreshold leakage at Vgs = 0, Vds = VDD.
  [[nodiscard]] Ampere leakage(Volt vdd, Kelvin t,
                               Volt delta_vt = Volt{0.0}) const;

  /// Temperature-scaled specific current.
  [[nodiscard]] Ampere i_spec(Kelvin t) const;

  /// d(Id_sat)/d(Vt) evaluated numerically; used by sensitivity analyses.
  [[nodiscard]] double did_dvt(Volt vgs, Kelvin t,
                               Volt delta_vt = Volt{0.0}) const;

 private:
  // Stored by value: Mosfet instances are frequently captured in lambdas
  // and member objects that outlive the Technology they were built from.
  TransistorParams params_;
  Kelvin t_ref_;
  TransistorKind kind_;
};

}  // namespace tsvpt::device
