#include "device/mosfet.hpp"

#include <cmath>
#include <stdexcept>

namespace tsvpt::device {
namespace {

/// Numerically stable ln(1 + exp(x)).
double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

}  // namespace

Mosfet::Mosfet(const Technology& tech, TransistorKind kind)
    : params_(tech.params(kind)), t_ref_(tech.t_ref), kind_(kind) {}

Volt Mosfet::vt(Kelvin t, Volt delta_vt) const {
  return params_.vt_at(t, t_ref_) + delta_vt;
}

Ampere Mosfet::i_spec(Kelvin t) const {
  if (t.value() <= 0.0) throw std::invalid_argument{"temperature <= 0 K"};
  const double mobility = std::pow(t.value() / t_ref_.value(),
                                   -params_.mobility_exponent);
  const double vt_ratio = t.value() / t_ref_.value();  // vT scales as T
  return Ampere{params_.i_spec0.value() * mobility * vt_ratio * vt_ratio};
}

Ampere Mosfet::id_sat(Volt vgs, Kelvin t, Volt delta_vt) const {
  const double n = params_.slope_factor;
  const double v_therm = thermal_voltage(t).value();
  const double u = vgs.value() - vt(t, delta_vt).value();
  const double q = softplus(u / (2.0 * n * v_therm));
  return Ampere{i_spec(t).value() * q * q};
}

Ampere Mosfet::id(Volt vgs, Volt vds, Kelvin t, Volt delta_vt) const {
  const double v_therm = thermal_voltage(t).value();
  const double sat = 1.0 - std::exp(-std::abs(vds.value()) / v_therm);
  return Ampere{id_sat(vgs, t, delta_vt).value() * sat};
}

Ampere Mosfet::leakage(Volt vdd, Kelvin t, Volt delta_vt) const {
  return id(Volt{0.0}, vdd, t, delta_vt);
}

double Mosfet::did_dvt(Volt vgs, Kelvin t, Volt delta_vt) const {
  constexpr double kStep = 0.1e-3;  // 0.1 mV central difference
  const Ampere hi = id_sat(vgs, t, delta_vt + Volt{kStep});
  const Ampere lo = id_sat(vgs, t, delta_vt - Volt{kStep});
  return (hi.value() - lo.value()) / (2.0 * kStep);
}

}  // namespace tsvpt::device
