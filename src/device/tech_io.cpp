#include "device/tech_io.hpp"

#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace tsvpt::device {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error{"technology card line " + std::to_string(line) +
                           ": " + message};
}

double parse_double(const std::string& value, int line) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    fail(line, "not a number: '" + value + "'");
  }
  if (consumed != value.size()) {
    fail(line, "trailing characters in number: '" + value + "'");
  }
  if (!std::isfinite(parsed)) fail(line, "non-finite value");
  return parsed;
}

void check_positive(double v, const std::string& key, int line) {
  if (!(v > 0.0)) fail(line, key + " must be > 0");
}

}  // namespace

Technology parse_technology(std::istream& in) {
  Technology tech = Technology::tsmc65_like();
  // Key -> setter; setters validate where sign/positivity is physical.
  const std::map<std::string, std::function<void(double, int)>> setters{
      {"vdd_nominal",
       [&](double v, int line) {
         check_positive(v, "vdd_nominal", line);
         tech.vdd_nominal = Volt{v};
       }},
      {"t_ref",
       [&](double v, int line) {
         check_positive(v, "t_ref", line);
         tech.t_ref = Kelvin{v};
       }},
      {"nmos.vt0",
       [&](double v, int line) {
         check_positive(v, "nmos.vt0", line);
         tech.nmos.vt0 = Volt{v};
       }},
      {"nmos.dvt_dt", [&](double v, int) { tech.nmos.dvt_dt = v; }},
      {"nmos.mobility_exponent",
       [&](double v, int) { tech.nmos.mobility_exponent = v; }},
      {"nmos.slope_factor",
       [&](double v, int line) {
         if (v < 1.0) fail(line, "slope factor below 1 is unphysical");
         tech.nmos.slope_factor = v;
       }},
      {"nmos.i_spec0",
       [&](double v, int line) {
         check_positive(v, "nmos.i_spec0", line);
         tech.nmos.i_spec0 = Ampere{v};
       }},
      {"pmos.vt0",
       [&](double v, int line) {
         check_positive(v, "pmos.vt0", line);
         tech.pmos.vt0 = Volt{v};
       }},
      {"pmos.dvt_dt", [&](double v, int) { tech.pmos.dvt_dt = v; }},
      {"pmos.mobility_exponent",
       [&](double v, int) { tech.pmos.mobility_exponent = v; }},
      {"pmos.slope_factor",
       [&](double v, int line) {
         if (v < 1.0) fail(line, "slope factor below 1 is unphysical");
         tech.pmos.slope_factor = v;
       }},
      {"pmos.i_spec0",
       [&](double v, int line) {
         check_positive(v, "pmos.i_spec0", line);
         tech.pmos.i_spec0 = Ampere{v};
       }},
      {"stage_cap",
       [&](double v, int line) {
         check_positive(v, "stage_cap", line);
         tech.stage_cap = Farad{v};
       }},
      {"sigma_vt_d2d",
       [&](double v, int line) {
         if (v < 0.0) fail(line, "sigma_vt_d2d must be >= 0");
         tech.sigma_vt_d2d = Volt{v};
       }},
      {"sigma_vt_wid",
       [&](double v, int line) {
         if (v < 0.0) fail(line, "sigma_vt_wid must be >= 0");
         tech.sigma_vt_wid = Volt{v};
       }},
      {"wid_correlation_length",
       [&](double v, int line) {
         check_positive(v, "wid_correlation_length", line);
         tech.wid_correlation_length = Meter{v};
       }},
  };

  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    // Strip comments.
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_number, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_number, "empty key");
    if (value.empty()) fail(line_number, "empty value for '" + key + "'");
    if (key == "name") {
      tech.name = value;
      continue;
    }
    const auto it = setters.find(key);
    if (it == setters.end()) fail(line_number, "unknown key '" + key + "'");
    it->second(parse_double(value, line_number), line_number);
  }
  return tech;
}

Technology parse_technology_string(const std::string& text) {
  std::istringstream in{text};
  return parse_technology(in);
}

Technology load_technology(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open technology card: " + path};
  return parse_technology(in);
}

std::string to_card_string(const Technology& tech) {
  std::ostringstream os;
  os.precision(17);
  os << "name = " << tech.name << '\n';
  os << "vdd_nominal = " << tech.vdd_nominal.value() << '\n';
  os << "t_ref = " << tech.t_ref.value() << '\n';
  auto device = [&](const char* prefix, const TransistorParams& params) {
    os << prefix << ".vt0 = " << params.vt0.value() << '\n';
    os << prefix << ".dvt_dt = " << params.dvt_dt << '\n';
    os << prefix << ".mobility_exponent = " << params.mobility_exponent
       << '\n';
    os << prefix << ".slope_factor = " << params.slope_factor << '\n';
    os << prefix << ".i_spec0 = " << params.i_spec0.value() << '\n';
  };
  device("nmos", tech.nmos);
  device("pmos", tech.pmos);
  os << "stage_cap = " << tech.stage_cap.value() << '\n';
  os << "sigma_vt_d2d = " << tech.sigma_vt_d2d.value() << '\n';
  os << "sigma_vt_wid = " << tech.sigma_vt_wid.value() << '\n';
  os << "wid_correlation_length = " << tech.wid_correlation_length.value()
     << '\n';
  return os.str();
}

void save_technology(const Technology& tech, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot write technology card: " + path};
  out << to_card_string(tech);
  if (!out) throw std::runtime_error{"write failed: " + path};
}

}  // namespace tsvpt::device
