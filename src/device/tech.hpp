// Technology description for the behavioral 65 nm-like CMOS models.
//
// The paper's silicon is TSMC 65 nm; we have no PDK, so this module defines a
// *behaviorally equivalent* technology: parameter values chosen to reproduce
// published 65 nm bulk-CMOS characteristics (|Vt| ~ 0.35-0.45 V, Vt tempco
// ~ -0.8 mV/K, mobility ~ T^-1.5, inverter FO1 delay of a few ps at 1.0 V).
// Everything the sensor algorithm exploits — the sign and relative magnitude
// of ∂f/∂Vtn, ∂f/∂Vtp, ∂f/∂T per oscillator flavour — is preserved.
#pragma once

#include <array>
#include <string>

#include "ptsim/units.hpp"

namespace tsvpt::device {

/// Which device of the complementary pair.
enum class TransistorKind { kNmos, kPmos };

/// Global process corner.  Shifts are applied to |Vt| of each device type;
/// the usual five-corner set.
enum class Corner { kTT, kFF, kSS, kFS, kSF };

[[nodiscard]] const char* to_string(Corner corner);
[[nodiscard]] std::array<Corner, 5> all_corners();

/// Per-transistor behavioral parameters (magnitudes; PMOS quantities are
/// expressed as positive numbers with the sign handled by the models).
struct TransistorParams {
  /// Zero-bias threshold-voltage magnitude at the reference temperature.
  Volt vt0{0.42};
  /// Threshold tempco d|Vt|/dT (negative: |Vt| falls as T rises), V/K.
  double dvt_dt = -0.9e-3;
  /// Mobility temperature exponent m in mu(T) = mu0 (T/T0)^-m.
  double mobility_exponent = 1.5;
  /// Subthreshold slope factor n (S = n * vT * ln 10).
  double slope_factor = 1.35;
  /// Specific current I_spec at the reference temperature (absorbs
  /// mu0 * Cox * W/L * 2 n vT0^2); sets the drive-strength scale.
  Ampere i_spec0{4e-6};

  /// |Vt| at absolute temperature `t`, before any variation delta.
  [[nodiscard]] Volt vt_at(Kelvin t, Kelvin t_ref) const {
    return Volt{vt0.value() + dvt_dt * (t.value() - t_ref.value())};
  }
};

/// Corner-induced |Vt| shifts for the two device types.
struct CornerShift {
  Volt nmos{0.0};
  Volt pmos{0.0};
};

/// The full technology card.
struct Technology {
  std::string name;
  Volt vdd_nominal{1.0};
  Kelvin t_ref{300.0};
  TransistorParams nmos;
  TransistorParams pmos;
  /// Switched capacitance per inverter stage (gate + wire + junction).
  Farad stage_cap{2.0e-15};
  /// Die-to-die Vt sigma (same draw shifts every device of one type on a
  /// die) and within-die Vt sigma (per-location random field).
  Volt sigma_vt_d2d{12e-3};
  Volt sigma_vt_wid{8e-3};
  /// Within-die spatial correlation length of the Vt field.
  Meter wid_correlation_length{1.0e-3};

  [[nodiscard]] CornerShift corner_shift(Corner corner) const;
  [[nodiscard]] const TransistorParams& params(TransistorKind kind) const {
    return kind == TransistorKind::kNmos ? nmos : pmos;
  }

  /// The behavioral stand-in for TSMC 65 nm GP used throughout the repo.
  [[nodiscard]] static Technology tsmc65_like();
  /// A low-power flavour (higher Vt, weaker drive) used by ablations to
  /// check the algorithm is not tuned to one card.
  [[nodiscard]] static Technology lp65_like();
};

}  // namespace tsvpt::device
