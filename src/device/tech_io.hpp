// Text serialization of Technology cards.
//
// Downstream users retarget the behavioral models by editing a plain
// "key = value" card instead of recompiling.  Format:
//
//   # 65nm-like example
//   name = my65nm
//   vdd_nominal = 1.0            # volts
//   t_ref = 300.0                # kelvin
//   nmos.vt0 = 0.42              # volts
//   nmos.dvt_dt = -0.9e-3        # V/K
//   nmos.mobility_exponent = 1.5
//   nmos.slope_factor = 1.35
//   nmos.i_spec0 = 4.2e-6        # amperes
//   pmos.vt0 = 0.40
//   ...
//   stage_cap = 2.0e-15          # farads
//   sigma_vt_d2d = 12e-3         # volts
//   sigma_vt_wid = 8e-3
//   wid_correlation_length = 1.0e-3   # meters
//
// Unspecified keys keep the tsmc65_like defaults; unknown keys and
// malformed lines are hard errors with line numbers (silent typos in a
// technology card are how wrong papers get written).
#pragma once

#include <iosfwd>
#include <string>

#include "device/tech.hpp"

namespace tsvpt::device {

/// Parse a card from text.  Throws std::runtime_error with a line number on
/// any malformed or unknown entry.
[[nodiscard]] Technology parse_technology(std::istream& in);
[[nodiscard]] Technology parse_technology_string(const std::string& text);
[[nodiscard]] Technology load_technology(const std::string& path);

/// Serialize a card (round-trips through parse_technology).
[[nodiscard]] std::string to_card_string(const Technology& tech);
void save_technology(const Technology& tech, const std::string& path);

}  // namespace tsvpt::device
