// Fixed-capacity lock-free ring buffer carrying telemetry frames from a
// sampler thread to the collector, with drop-oldest backpressure.
//
// Nominal use is single-producer / single-consumer (one worker thread, one
// collector).  Drop-oldest, however, makes the producer a *second consumer*:
// when the ring is full the producer evicts the oldest frame to make room —
// stale telemetry is worthless, the newest scan is what alerting needs.  A
// classic two-index SPSC ring cannot support that (the producer and consumer
// would race on the read index while a slot's payload is being copied), so
// slots carry Vyukov-style sequence numbers: a slot's atomic `seq` encodes
// whose turn it is, payloads are only touched by the thread that won the
// slot's ticket, and both indices advance by CAS.  The structure is
// therefore MPMC-safe, which the stress tests and TSan exercise; the
// telemetry pipeline still deploys it 1:1.
//
// Accounting: pushed() counts successful publishes, dropped() counts
// evicted frames, popped() counts consumer takes.  At quiescence
// pushed == popped + dropped + size.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace tsvpt::telemetry {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) {
      if (cap > (std::size_t{1} << 60)) {
        throw std::invalid_argument{"SpscRing: capacity overflow"};
      }
      cap <<= 1;
    }
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  // hot: SPSC producer path — runs once per captured frame; any allocation,
  // lock, throw, or syscall here stalls the sampler tick.
  /// Publish `value`; returns false (and leaves `value` unconsumed) when the
  /// ring is full.
  [[nodiscard]] bool try_push(T& value) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      // mo: acquire pairs with try_pop's release seq store, so a recycled
      // slot's prior value read is complete before we overwrite it.
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          // mo: release publishes cell.value to the consumer; pairs with
          // try_pop's acquire seq load.
          cell.seq.store(pos + 1, std::memory_order_release);
          pushed_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full: slot still holds an unconsumed frame
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  // hot: overwrite publish sits on the same sampler tick as try_push; the
  // eviction loop may spin but must never allocate, lock, throw, or do IO.
  /// Publish unconditionally: when full, evict oldest frames until the push
  /// lands.  Returns the number evicted; each victim is handed to
  /// `on_drop(T&&)` before being destroyed (pass a no-op to just count).
  template <typename OnDrop>
  std::size_t push_overwrite(T value, OnDrop&& on_drop) {
    std::size_t evicted = 0;
    while (!try_push(value)) {
      T victim;
      if (try_pop(victim)) {
        ++evicted;
        dropped_.fetch_add(1, std::memory_order_relaxed);
        popped_.fetch_sub(1, std::memory_order_relaxed);  // not a real take
        on_drop(std::move(victim));
      }
    }
    return evicted;
  }

  std::size_t push_overwrite(T value) {
    return push_overwrite(std::move(value), [](T&&) {});
  }

  // hot: SPSC consumer path — the publisher drain loop calls this per frame
  // while holding its send budget; it must stay wait-free.
  /// Take the oldest frame; false when empty.
  [[nodiscard]] bool try_pop(T& out) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      // mo: acquire pairs with try_push's release seq store, making the
      // producer's cell.value write visible before we move from it.
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          // mo: release hands the emptied slot back to producers; pairs with
          // try_push's acquire seq load.
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          popped_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Frames currently resident (racy snapshot; exact at quiescence).
  [[nodiscard]] std::size_t size() const {
    // mo: acquire on both cursors keeps the snapshot no staler than the
    // callers' published claims; pairs with the CAS updates above.
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);  // mo: ditto
    return head >= tail ? head - tail : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const {
    return popped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  // Separate cache lines so the producer's head and consumer's tail do not
  // false-share.
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The pipeline's ring instantiation: encoded wire frames (frame.hpp).
using FrameRing = SpscRing<std::vector<std::uint8_t>>;

}  // namespace tsvpt::telemetry
