// Concurrent fleet sampling: N independent TSV stacks, each with its own
// thermal network, workload and sensor monitor, advanced and scanned by a
// pool of worker threads.  Every scan is encoded as a wire frame
// (telemetry::encode) and published into the worker's lock-free ring, from
// which the Aggregator's collector thread drains.
//
// Stacks are deterministic given the master seed: stack k draws its process
// variation, sensor instances and noise stream from derive_seed(seed, k),
// so frame *contents* are identical no matter how many threads run —
// threading only changes interleaving.  Workers own disjoint stack subsets
// (stack k -> worker k % threads), so no lock ever guards simulation state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/stack_monitor.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/ring.hpp"
#include "thermal/network.hpp"
#include "thermal/workload.hpp"

namespace tsvpt::telemetry {

class FleetSampler {
 public:
  struct Config {
    /// Independent stacks in the fleet.
    std::size_t stack_count = 8;
    /// Worker threads (clamped to stack_count; 0 = hardware_concurrency).
    std::size_t thread_count = 0;
    /// Frames (full scans) each stack produces.
    std::size_t scans_per_stack = 50;
    /// Simulated time between scans and thermal integration granularity.
    Second sample_period{1e-3};
    Second thermal_step{2.5e-4};
    /// Sensor grid per die.
    std::size_t grid_columns = 2;
    std::size_t grid_rows = 2;
    /// Capacity of each worker's ring (frames).
    std::size_t ring_capacity = 256;
    /// Burst/idle workload shape (die 0 is the hot logic die).
    Watt peak_power{5.0};
    Watt idle_power{0.25};
    Second burst_period{50e-3};
    core::PtSensor::Config sensor;
    std::uint64_t seed = 1;
  };

  /// Builds every stack up front (thermal network, variation draw, monitor)
  /// so run() measures sampling, not construction.
  explicit FleetSampler(Config config);
  ~FleetSampler();

  FleetSampler(const FleetSampler&) = delete;
  FleetSampler& operator=(const FleetSampler&) = delete;

  [[nodiscard]] std::size_t stack_count() const { return stacks_.size(); }
  [[nodiscard]] std::size_t worker_count() const { return rings_.size(); }

  /// The rings workers publish into — hand these to Aggregator::start
  /// *before* run() so frames are drained while sampling is in flight.
  [[nodiscard]] std::vector<FrameRing*> rings();

  /// Sample the whole fleet: spawns the worker pool, blocks until every
  /// stack has produced scans_per_stack frames.  Callable once.
  void run();

  struct StackProduction {
    std::uint64_t frames = 0;
    /// Frames this stack lost to ring eviction (drop-oldest).
    std::uint64_t dropped = 0;
  };

  /// Per-stack production counters (valid after run()).
  [[nodiscard]] const std::vector<StackProduction>& production() const {
    return production_;
  }
  [[nodiscard]] std::uint64_t total_frames() const;
  /// All drops, attributed or not.
  [[nodiscard]] std::uint64_t total_dropped() const;
  /// Evicted frames whose peeked stack id did not name a stack of this
  /// sampler (cannot happen while the rings stay private; counted, not
  /// written through, if it ever does).
  [[nodiscard]] std::uint64_t unattributed_drops() const {
    return unattributed_drops_.load(std::memory_order_relaxed);
  }
  /// Wall-clock duration of run().
  [[nodiscard]] Second elapsed() const { return elapsed_; }

 private:
  struct Stack;

  void worker(std::size_t worker_index);

  Config config_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  std::vector<std::unique_ptr<FrameRing>> rings_;
  std::vector<StackProduction> production_;
  std::atomic<std::uint64_t> unattributed_drops_{0};
  Second elapsed_{0.0};
  bool ran_ = false;
};

}  // namespace tsvpt::telemetry
