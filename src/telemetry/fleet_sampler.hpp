// Concurrent fleet sampling: N independent TSV stacks, each with its own
// thermal network, workload and sensor monitor, advanced and scanned by a
// pool of worker threads.  Every scan is encoded as a wire frame
// (telemetry::encode) and published into the worker's lock-free ring, from
// which the Aggregator's collector thread drains.
//
// Stacks are deterministic given the master seed: stack k draws its process
// variation, sensor instances and noise stream from derive_seed(seed, k),
// so frame *contents* are identical no matter how many threads run —
// threading only changes interleaving.  Workers own disjoint stack subsets
// (stack k -> worker k % threads), so no lock ever guards simulation state.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "control/controller.hpp"
#include "core/health_supervisor.hpp"
#include "core/stack_monitor.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/ring.hpp"
#include "thermal/network.hpp"
#include "thermal/workload.hpp"

namespace tsvpt::telemetry {

/// Fault-injection seam in the sampling path: a worker calls these hooks
/// around every scan of every stack it owns.  Implementations (see
/// inject::ChaosInjector) must be safe for concurrent calls with
/// *different* stack indices — a stack is only ever touched by one worker,
/// so per-stack state needs no locking, but anything cross-stack does.
class ScanInterceptor {
 public:
  virtual ~ScanInterceptor() = default;

  /// Before stack `stack`'s scan `scan` is sampled: inject or clear sensor
  /// faults, perturb supply rails, request worker stalls.
  virtual void before_scan(std::size_t stack, std::uint64_t scan,
                           core::StackMonitor& monitor) {
    (void)stack; (void)scan; (void)monitor;
  }
  /// After sampling, before supervision: mutate raw readings (silent
  /// corruption — counter bit flips, calibration drift).
  virtual void after_scan(std::size_t stack, std::uint64_t scan,
                          std::vector<core::StackMonitor::SiteReading>&
                              readings) {
    (void)stack; (void)scan; (void)readings;
  }
  /// The encoded frame, about to be published.  Mutate to corrupt it on
  /// the wire; return false to suppress the publish entirely (a stalled
  /// ring: the sequence number still advances, so the collector sees the
  /// gap as missed frames).
  virtual bool before_publish(std::size_t stack, std::uint64_t scan,
                              std::vector<std::uint8_t>& buffer) {
    (void)stack; (void)scan; (void)buffer;
    return true;
  }
};

/// Durable-recording seam: every frame a worker produces is offered to the
/// sink right after encoding, alongside its wire image — this is how the
/// historian (store::StoreWriter) persists a run while it samples.  Workers
/// call concurrently from their own threads, so implementations must be
/// thread-safe.  The sink sees every *produced* frame, including ones the
/// ring later evicts or an interceptor suppresses/corrupts on publish: the
/// recorder's job is the production history, not the lossy live path.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void on_frame(const Frame& frame,
                        const std::vector<std::uint8_t>& wire) = 0;
};

class FleetSampler {
 public:
  struct Config {
    /// Independent stacks in the fleet.
    std::size_t stack_count = 8;
    /// Worker threads (clamped to stack_count; 0 = hardware_concurrency).
    std::size_t thread_count = 0;
    /// Frames (full scans) each stack produces.
    std::size_t scans_per_stack = 50;
    /// Simulated time between scans and thermal integration granularity.
    Second sample_period{1e-3};
    Second thermal_step{2.5e-4};
    /// Sensor grid per die.
    std::size_t grid_columns = 2;
    std::size_t grid_rows = 2;
    /// Capacity of each worker's ring (frames).
    std::size_t ring_capacity = 256;
    /// Burst/idle workload shape (die 0 is the hot logic die).
    Watt peak_power{5.0};
    Watt idle_power{0.25};
    Second burst_period{50e-3};
    core::PtSensor::Config sensor;
    std::uint64_t seed = 1;
    /// Offset added to every frame's stack_id on the wire, so multiple
    /// publisher processes feeding one ingest server occupy disjoint fleet
    /// id ranges.  Local indices (worker_of, production()) stay 0-based.
    std::uint32_t stack_id_base = 0;
    /// Optional fault-injection seam (not owned; must outlive run()).
    ScanInterceptor* interceptor = nullptr;
    /// Optional durable-recording seam (not owned; must outlive run()).
    /// Called by every worker with every frame it produces — see FrameSink.
    FrameSink* sink = nullptr;
    /// Per-stack health supervision: quarantine faulty sites, substitute
    /// their readings, recalibrate on recovery.  Off by default — the
    /// plain pipeline ships raw scans.
    bool supervise = false;
    core::HealthSupervisor::Config health;
    /// Closed-loop control seam (not owned; must outlive run()).  Stack k
    /// is driven by plane->controller(k): each scan's post-supervision
    /// readings feed its decision, and the next scan's thermal advance
    /// runs under the held actuation.  Controllers follow the same
    /// ownership rule as stacks — only the owning worker touches stack
    /// k's controller, so the loop stays thread-count-invariant.
    control::ControlPlane* control = nullptr;
  };

  /// Builds every stack up front (thermal network, variation draw, monitor)
  /// so run() measures sampling, not construction.
  explicit FleetSampler(Config config);
  ~FleetSampler();

  FleetSampler(const FleetSampler&) = delete;
  FleetSampler& operator=(const FleetSampler&) = delete;

  [[nodiscard]] std::size_t stack_count() const { return stacks_.size(); }
  [[nodiscard]] std::size_t worker_count() const { return rings_.size(); }

  /// The rings workers publish into — hand these to Aggregator::start
  /// *before* run() so frames are drained while sampling is in flight.
  [[nodiscard]] std::vector<FrameRing*> rings();

  /// Sample the whole fleet: spawns the worker pool, blocks until every
  /// stack has produced scans_per_stack frames.  Callable once.
  void run();

  /// Late-bind the fault-injection seam (injectors usually need the sampler
  /// pointer themselves, so they cannot exist before it).  Call before
  /// run(); throws afterwards.
  void set_interceptor(ScanInterceptor* interceptor);

  struct StackProduction {
    std::uint64_t frames = 0;
    /// Frames this stack lost to ring eviction (drop-oldest).
    std::uint64_t dropped = 0;
    /// Frames produced but never published (interceptor suppressed them —
    /// an injected ring stall).  The collector sees these as sequence gaps.
    std::uint64_t suppressed = 0;
  };

  /// Per-stack production counters (valid after run()).
  [[nodiscard]] const std::vector<StackProduction>& production() const {
    return production_;
  }
  [[nodiscard]] std::uint64_t total_frames() const;
  /// All drops, attributed or not.
  [[nodiscard]] std::uint64_t total_dropped() const;
  /// Evicted frames whose peeked stack id did not name a stack of this
  /// sampler (cannot happen while the rings stay private; counted, not
  /// written through, if it ever does).
  [[nodiscard]] std::uint64_t unattributed_drops() const {
    return unattributed_drops_.load(std::memory_order_relaxed);
  }
  /// Wall-clock duration of run().
  [[nodiscard]] Second elapsed() const { return elapsed_; }

  /// The worker thread that owns stack k (ring index == worker index).
  [[nodiscard]] std::size_t worker_of(std::size_t stack) const;

  /// Park worker w at its next scan boundary (an injected worker kill).
  /// The worker stays parked — producing nothing, tripping the collector's
  /// frame-age watchdog — until resume_worker restores it.  Callable from
  /// any thread, including the stalled worker itself (takes effect at the
  /// next boundary).
  void stall_worker(std::size_t worker_index);
  /// Un-park worker w; no-op when it is not stalled (safe from the
  /// Aggregator's watchdog callback even after the worker finished).
  void resume_worker(std::size_t worker_index);
  void resume_all();

  /// Health-transition log of stack k's supervisor (empty unless
  /// Config::supervise; valid after run()).
  [[nodiscard]] std::vector<core::HealthSupervisor::Transition> transitions(
      std::size_t stack) const;
  /// Final health state of every site of stack k (empty unless supervised).
  [[nodiscard]] std::vector<core::HealthState> health(
      std::size_t stack) const;

 private:
  struct Stack;
  struct StallGate {
    std::mutex mutex;
    std::condition_variable cv;
    bool stalled = false;
  };

  void worker(std::size_t worker_index);

  Config config_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  std::vector<std::unique_ptr<FrameRing>> rings_;
  std::vector<std::unique_ptr<StallGate>> gates_;
  std::vector<StackProduction> production_;
  std::atomic<std::uint64_t> unattributed_drops_{0};
  Second elapsed_{0.0};
  bool ran_ = false;
};

}  // namespace tsvpt::telemetry
