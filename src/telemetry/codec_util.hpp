// Byte-level codec primitives shared by the frame wire codec
// (telemetry/frame.cpp) and the historian's block codec (store/block.cpp):
// CRC-32, zigzag signed mapping, LEB128 varints, and little-endian
// fixed-width put/get helpers.  Everything is host-order-independent: values
// travel little-endian, doubles as IEEE-754 bit patterns.
//
// The varint reader and the fixed-width getters are bounds-checked against
// the caller's buffer and report failure instead of reading past the end —
// both codecs promise "malformed input maps to a status, never UB", and that
// promise starts here.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsvpt::telemetry {

namespace detail {

[[nodiscard]] inline const std::uint32_t* crc32_table() {
  static const auto table = [] {
    struct Table {
      std::uint32_t entries[256];
    } t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t.entries[i] = c;
    }
    return t;
  }();
  return table.entries;
}

}  // namespace detail

/// CRC-32 (reflected 0xEDB88320, init/final 0xFFFFFFFF — the zlib CRC).
[[nodiscard]] inline std::uint32_t crc32(const std::uint8_t* data,
                                         std::size_t size) {
  const std::uint32_t* table = detail::crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

/// Map a signed delta onto an unsigned value with small magnitudes staying
/// small (…, -2 -> 3, -1 -> 1, 0 -> 0, 1 -> 2, 2 -> 4, …), so varint
/// encoding of near-zero deltas costs one byte regardless of sign.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1u);
}

/// Append `v` as an LEB128 varint (7 bits per byte, high bit = continuation;
/// 1 byte for values < 128, at most 10 for a full u64).
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Read a varint at data[pos]; advances pos and returns true on success,
/// false (pos unspecified) on truncation or an over-long (> 10 byte)
/// encoding.
inline bool get_varint(const std::uint8_t* data, std::size_t size,
                       std::size_t& pos, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= size) return false;
    const std::uint8_t byte = data[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      out = v;
      return true;
    }
  }
  return false;  // 10 continuation bytes: not a canonical u64
}

// --- little-endian fixed-width writers ---

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

// --- little-endian fixed-width readers (unchecked: caller verifies size) ---

[[nodiscard]] inline std::uint16_t get_u16(const std::uint8_t* data) {
  return static_cast<std::uint16_t>(
      data[0] | (static_cast<std::uint16_t>(data[1]) << 8));
}

[[nodiscard]] inline std::uint32_t get_u32(const std::uint8_t* data) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] inline std::uint64_t get_u64(const std::uint8_t* data) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] inline double get_f64(const std::uint8_t* data) {
  return std::bit_cast<double>(get_u64(data));
}

/// Bounds-checked cursor over a byte buffer: every read either succeeds and
/// advances or returns false leaving the cursor untouched, so decoders can
/// bail with a status instead of reading out of bounds.
class ByteCursor {
 public:
  ByteCursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  bool u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& out) {
    if (remaining() < 2) return false;
    out = get_u16(data_ + pos_);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = get_u32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = get_u64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool f64(double& out) {
    if (remaining() < 8) return false;
    out = get_f64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool varint(std::uint64_t& out) {
    return get_varint(data_, size_, pos_, out);
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace tsvpt::telemetry
