// Fleet aggregation and alerting: a collector thread drains the samplers'
// rings, decodes wire frames, folds every reading into per-stack/per-die
// rolling statistics (ptsim's RunningStats) and raises alerts:
//
//   kOverTemperature — a sensed reading crossed the threshold;
//   kThermalRunaway  — a die's hottest sensed reading is climbing faster
//                      than the configured rate between consecutive frames
//                      (the runaway precursor the paper's stack monitoring
//                      exists to catch);
//   kDeadSensor      — a site reported degraded conversions (a dead/stuck
//                      oscillator) for `dead_scan_limit` consecutive frames;
//   kSpatialSuspect  — core::FaultDetector's leave-one-out spatial
//                      cross-check flagged the site within its scan.
//
// Alert edges, not levels: an alert fires when a condition becomes true and
// re-arms when it clears, so a stack sitting at 90 C does not emit one
// alert per frame.  The callback runs on the collector thread — keep it
// cheap and do not touch the sampler from it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_detector.hpp"
#include "core/health_supervisor.hpp"
#include "ptsim/stats.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/ring.hpp"

namespace tsvpt::telemetry {

enum class AlertKind {
  kOverTemperature,
  kThermalRunaway,
  kDeadSensor,
  kSpatialSuspect,
};

[[nodiscard]] const char* to_string(AlertKind kind);

/// Distributed-ingest ring trailer: the IngestServer appends 16 bytes to
/// each frame before pushing it into a shard ring —
/// [enqueue_ns u64 LE][clock_offset_ns i64 LE] — giving the draining
/// aggregator the shard-queue entry time (shard_to_ingest attribution) and
/// the publisher's clock offset (aligned-clock e2e re-basing).  The offset
/// is kRingTrailerInvalidOffset when the publisher had no estimate yet.
inline constexpr std::size_t kRingTrailerSize = 16;
inline constexpr std::int64_t kRingTrailerInvalidOffset =
    std::numeric_limits<std::int64_t>::min();

struct Alert {
  AlertKind kind = AlertKind::kOverTemperature;
  std::uint32_t stack_id = 0;
  std::size_t die = 0;
  /// Site that triggered (the die's hottest site for runaway).
  std::size_t site_index = 0;
  /// Condition magnitude: degC for over-temperature, degC/s for runaway,
  /// consecutive degraded frames for dead-sensor, degC deviation for
  /// spatial suspects.
  double value = 0.0;
  Second sim_time{0.0};
};

/// A producer-side health transition as seen on the wire: the collector
/// tracks every site's health byte and emits one event per change
/// (edge-triggered, like alerts).  Lost frames may collapse intermediate
/// hops into a single observed edge.
struct HealthEvent {
  std::uint32_t stack_id = 0;
  std::size_t die = 0;
  std::size_t site_index = 0;
  core::HealthState from = core::HealthState::kHealthy;
  core::HealthState to = core::HealthState::kHealthy;
  Second sim_time{0.0};
};

class Aggregator {
 public:
  struct Config {
    /// Sensed temperature above which a site is alerting.
    Celsius alert_threshold{85.0};
    /// Die-level heating rate (degC per simulated second) above which the
    /// die is flagged as running away.
    double runaway_rate{400.0};
    /// Consecutive degraded frames before a site is declared dead.
    std::size_t dead_scan_limit = 3;
    /// Spatial leave-one-out cross-check per scan (FaultDetector).
    bool spatial_check = true;
    /// Fleet monitoring uses sparse per-die grids (2x2 typical), where real
    /// hotspot gradients reach well past FaultDetector's 8 C single-stack
    /// default; widen the threshold so healthy fleets stay quiet and the
    /// check catches electrically impossible outliers (dead/stuck sensors).
    core::FaultDetector::Config fault{.threshold = Celsius{15.0}};
    /// Collector-side worker watchdog: when a ring stays empty for this
    /// much wall-clock time while others still flow (or the collector is
    /// otherwise idle), the worker feeding it is presumed stalled and
    /// on_stalled_ring fires once (re-armed by the ring's next frame).
    /// Zero disables the watchdog.
    Second watchdog_timeout{0.0};
    /// Called on the collector thread with the stalled ring's index —
    /// typically wired to FleetSampler::resume_worker (ring index == worker
    /// index).  Must tolerate kicks on workers that finished legitimately.
    std::function<void(std::size_t)> on_stalled_ring;
    /// Ring entries carry the 16-byte IngestServer trailer (see
    /// kRingTrailerSize above).  Set by the server for its shard
    /// aggregators; single-process pipelines leave it off.
    bool shard_trailer = false;
  };

  using AlertCallback = std::function<void(const Alert&)>;
  using HealthCallback = std::function<void(const HealthEvent&)>;

  explicit Aggregator(Config config, AlertCallback on_alert = nullptr,
                      HealthCallback on_health = nullptr);
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Spawn the collector thread draining `rings` (which must outlive the
  /// aggregator or the next stop()).  The collector spins over the rings,
  /// yielding when all are momentarily empty.
  void start(std::vector<FrameRing*> rings);

  /// Drain whatever is still queued, then join the collector.  Idempotent.
  void stop();

  /// Synchronous ingestion of one encoded frame — the collector's inner
  /// step, exposed for deterministic single-threaded tests and replay.
  /// Not thread-safe against a running collector.
  void ingest(const std::vector<std::uint8_t>& buffer);

  struct DieStats {
    RunningStats sensed_c;
    RunningStats error_c;  // sensed - truth, the tracking-accuracy ledger
    /// Error of degraded readings (substituted estimates and failed
    /// conversions) — kept out of error_c so sensor accuracy and
    /// degraded-mode accuracy are separately auditable.
    RunningStats degraded_error_c;
  };

  struct StackStats {
    std::uint64_t frames = 0;
    /// Sequence-number gaps observed (frames lost before the collector).
    std::uint64_t missed = 0;
    std::uint64_t alerts = 0;
    /// One past the highest sequence ingested — lets a cross-shard merge
    /// recompute missed as max(next_sequence) - frames even when a stack's
    /// frames were split across shards (ingest failover).
    std::uint64_t next_sequence = 0;
    Second last_sim_time{0.0};
    std::map<std::size_t, DieStats> dies;
  };

  struct Summary {
    std::uint64_t frames = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t alerts = 0;
    std::map<AlertKind, std::uint64_t> alerts_by_kind;
    std::map<std::uint32_t, StackStats> stacks;
    /// Collector-side end-to-end latency (capture to decode), seconds.
    /// Cross-process samples are re-based onto this process's clock when
    /// the ring trailer carried a valid offset (see latency_aligned).
    Samples latency;
    /// How many latency samples used the aligned-clock path — nonzero means
    /// the numbers are cross-process comparable ("aligned_clock" source).
    std::uint64_t latency_aligned = 0;
    /// Health-byte edges observed on the wire, in arrival order.
    std::vector<HealthEvent> health_transitions;
    /// Last health state seen per (stack, site).
    std::map<std::pair<std::uint32_t, std::size_t>, core::HealthState>
        site_health;
    /// Readings that arrived flagged degraded (substitutes + failed
    /// conversions).
    std::uint64_t substituted_readings = 0;
    /// Times the frame-age watchdog fired on_stalled_ring.
    std::uint64_t watchdog_kicks = 0;
  };

  /// Snapshot of everything aggregated so far.  Call after stop() (or
  /// before start()) — not concurrently with a running collector.
  [[nodiscard]] const Summary& summary() const { return summary_; }

  /// Coarse live counters, safe to read from any thread *while the
  /// collector runs* (relaxed atomics mirroring the Summary fields) — what
  /// periodic progress reporting prints without stopping collection.
  struct Progress {
    std::uint64_t frames = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t alerts = 0;
  };
  [[nodiscard]] Progress progress() const {
    return Progress{live_frames_.load(std::memory_order_relaxed),
                    live_decode_errors_.load(std::memory_order_relaxed),
                    live_alerts_.load(std::memory_order_relaxed)};
  }

 private:
  void collect(std::vector<FrameRing*> rings);
  void raise(AlertKind kind, const Frame& frame, std::size_t die,
             std::size_t site, double value);

  /// Per-site edge/streak state for alert re-arming.
  struct SiteState {
    bool over_temperature = false;
    std::size_t degraded_streak = 0;
    bool dead = false;
    bool spatial_suspect = false;
  };
  struct DieRunaway {
    double last_max_c = 0.0;
    Second last_time{0.0};
    bool primed = false;
    bool alerting = false;
  };

  Config config_;
  AlertCallback on_alert_;
  HealthCallback on_health_;
  core::FaultDetector fault_detector_;
  Summary summary_;
  std::map<std::pair<std::uint32_t, std::size_t>, SiteState> sites_;
  std::map<std::pair<std::uint32_t, std::size_t>, DieRunaway> runaway_;
  std::map<std::uint32_t, std::uint64_t> next_sequence_;

  std::thread collector_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> live_frames_{0};
  std::atomic<std::uint64_t> live_decode_errors_{0};
  std::atomic<std::uint64_t> live_alerts_{0};
};

}  // namespace tsvpt::telemetry
