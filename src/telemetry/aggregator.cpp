#include "telemetry/aggregator.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "telemetry/codec_util.hpp"

namespace tsvpt::telemetry {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Collector-side instrumentation (one collector thread live, plus the
/// replay path reusing ingest() — same handles serve both).
struct AggregatorMetrics {
  obs::Counter frames = obs::counter("tsvpt_agg_frames_total");
  obs::Counter decode_errors = obs::counter("tsvpt_agg_decode_errors_total");
  obs::Counter alerts = obs::counter("tsvpt_agg_alerts_total");
  obs::Counter health_events = obs::counter("tsvpt_agg_health_events_total");
  obs::Counter watchdog_kicks =
      obs::counter("tsvpt_agg_watchdog_kicks_total");
  obs::Counter missed = obs::counter("tsvpt_agg_missed_frames_total");
  obs::Histogram ingest_seconds =
      obs::histogram("tsvpt_agg_ingest_seconds");
  obs::Histogram e2e_latency_seconds =
      obs::histogram("tsvpt_agg_e2e_latency_seconds");
  obs::Histogram shard_to_ingest =
      obs::stage_latency(obs::kStageShardToIngest);

  static const AggregatorMetrics& get() {
    static const AggregatorMetrics metrics;
    return metrics;
  }
};

}  // namespace

const char* to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kOverTemperature: return "over_temperature";
    case AlertKind::kThermalRunaway: return "thermal_runaway";
    case AlertKind::kDeadSensor: return "dead_sensor";
    case AlertKind::kSpatialSuspect: return "spatial_suspect";
  }
  return "unknown";
}

Aggregator::Aggregator(Config config, AlertCallback on_alert,
                       HealthCallback on_health)
    : config_(std::move(config)), on_alert_(std::move(on_alert)),
      on_health_(std::move(on_health)), fault_detector_(config_.fault) {}

Aggregator::~Aggregator() { stop(); }

void Aggregator::start(std::vector<FrameRing*> rings) {
  if (collector_.joinable()) {
    throw std::logic_error{"Aggregator::start: already running"};
  }
  stop_requested_.store(false, std::memory_order_relaxed);
  collector_ = std::thread{[this, rings = std::move(rings)]() mutable {
    collect(std::move(rings));
  }};
}

void Aggregator::stop() {
  if (!collector_.joinable()) return;
  // mo: release pairs with collect()'s acquire loads so everything written
  // before stop() is visible to the collector's final drain.
  stop_requested_.store(true, std::memory_order_release);
  collector_.join();
}

void Aggregator::collect(std::vector<FrameRing*> rings) {
  // Frame-age watchdog state: wall-clock of each ring's last frame and a
  // kicked latch so one stall fires on_stalled_ring exactly once until the
  // ring produces again.
  const bool watchdog = config_.watchdog_timeout.value() > 0.0;
  const std::uint64_t timeout_ns = static_cast<std::uint64_t>(
      config_.watchdog_timeout.value() * 1e9);
  std::vector<std::uint64_t> last_seen_ns(rings.size(), steady_now_ns());
  std::vector<bool> kicked(rings.size(), false);

  std::vector<std::uint8_t> buffer;
  for (;;) {
    bool drained_any = false;
    for (std::size_t r = 0; r < rings.size(); ++r) {
      FrameRing* ring = rings[r];
      while (ring->try_pop(buffer)) {
        drained_any = true;
        if (watchdog) {
          last_seen_ns[r] = steady_now_ns();
          kicked[r] = false;
        }
        ingest(buffer);
      }
    }
    if (!drained_any) {
      // mo: acquire pairs with stop()'s release store (see below).
      if (watchdog && !stop_requested_.load(std::memory_order_acquire)) {
        // Idle with workers still supposedly running: any ring silent past
        // the timeout marks its worker as stalled.
        const std::uint64_t now = steady_now_ns();
        for (std::size_t r = 0; r < rings.size(); ++r) {
          if (kicked[r] || now - last_seen_ns[r] <= timeout_ns) continue;
          kicked[r] = true;
          summary_.watchdog_kicks += 1;
          AggregatorMetrics::get().watchdog_kicks.inc();
          obs::instant("aggregator", "watchdog_kick", r);
          if (config_.on_stalled_ring) config_.on_stalled_ring(r);
        }
      }
      // mo: acquire pairs with stop()'s release store; after it reads true,
      // all frames pushed before stop() are visible to the drain below.
      if (stop_requested_.load(std::memory_order_acquire)) {
        // The empty pass above may have scanned a ring *before* its worker's
        // final push (stop() is only called once workers are joined, but the
        // scan and the push can interleave).  Workers are done now, so one
        // more full drain picks up any such tail frames before we return.
        for (FrameRing* ring : rings) {
          while (ring->try_pop(buffer)) ingest(buffer);
        }
        return;
      }
      std::this_thread::yield();
    }
  }
}

void Aggregator::raise(AlertKind kind, const Frame& frame, std::size_t die,
                       std::size_t site, double value) {
  Alert alert;
  alert.kind = kind;
  alert.stack_id = frame.stack_id;
  alert.die = die;
  alert.site_index = site;
  alert.value = value;
  alert.sim_time = frame.sim_time;
  summary_.alerts += 1;
  live_alerts_.fetch_add(1, std::memory_order_relaxed);
  summary_.alerts_by_kind[kind] += 1;
  summary_.stacks[frame.stack_id].alerts += 1;
  AggregatorMetrics::get().alerts.inc();
  // Alert edges land in the flight recorder so a trace of a bad run shows
  // *when* the pipeline noticed, not just that it did.
  obs::instant("alert", to_string(kind), frame.stack_id);
  if (on_alert_) on_alert_(alert);
}

void Aggregator::ingest(const std::vector<std::uint8_t>& buffer) {
  const AggregatorMetrics& metrics = AggregatorMetrics::get();
  const obs::ObsSpan ingest_span{"aggregator", "ingest",
                                 metrics.ingest_seconds};
  // Distributed mode: peel the IngestServer's ring trailer off before
  // decode (the frame's own CRC does not cover it).
  std::size_t wire_size = buffer.size();
  std::uint64_t enqueue_ns = 0;
  std::int64_t clock_offset_ns = kRingTrailerInvalidOffset;
  bool have_trailer = false;
  if (config_.shard_trailer && wire_size >= kRingTrailerSize) {
    wire_size -= kRingTrailerSize;
    enqueue_ns = get_u64(buffer.data() + wire_size);
    clock_offset_ns =
        static_cast<std::int64_t>(get_u64(buffer.data() + wire_size + 8));
    have_trailer = true;
  }
  DecodeResult result = decode(buffer.data(), wire_size);
  if (!result.ok()) {
    summary_.decode_errors += 1;
    live_decode_errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.decode_errors.inc();
    obs::instant("aggregator", "decode_error");
    return;
  }
  const Frame& frame = result.frame;

  summary_.frames += 1;
  live_frames_.fetch_add(1, std::memory_order_relaxed);
  metrics.frames.inc();
  if (frame.capture_ns != 0 || have_trailer) {
    const std::uint64_t now = steady_now_ns();
    if (have_trailer && enqueue_ns != 0 && now >= enqueue_ns) {
      metrics.shard_to_ingest.observe(
          static_cast<double>(now - enqueue_ns) * 1e-9);
    }
    if (frame.capture_ns != 0) {
      // Cross-process frames: capture_ns is on the publisher's clock; a
      // valid trailer offset re-bases it onto ours so e2e is meaningful.
      std::uint64_t capture = frame.capture_ns;
      bool aligned = false;
      if (have_trailer && clock_offset_ns != kRingTrailerInvalidOffset) {
        capture = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(capture) + clock_offset_ns);
        aligned = true;
      }
      // >= : on coarse steady_clock resolution capture and decode can share
      // a tick, and zero is a valid latency sample.
      if (now >= capture) {
        const double latency_s = static_cast<double>(now - capture) * 1e-9;
        summary_.latency.add(latency_s);
        if (aligned) summary_.latency_aligned += 1;
        metrics.e2e_latency_seconds.observe(latency_s);
      }
    }
  }

  StackStats& stack = summary_.stacks[frame.stack_id];
  stack.frames += 1;
  stack.last_sim_time = frame.sim_time;
  auto [seq_it, first_frame] =
      next_sequence_.try_emplace(frame.stack_id, frame.sequence);
  if (first_frame) {
    // Sequences start at 0, so a first arrival at seq > 0 means the ring
    // evicted the stack's opening frames before we drained them.
    stack.missed += frame.sequence;
    metrics.missed.add(frame.sequence);
  } else if (frame.sequence > seq_it->second) {
    stack.missed += frame.sequence - seq_it->second;
    metrics.missed.add(frame.sequence - seq_it->second);
  }
  seq_it->second = frame.sequence + 1;
  stack.next_sequence = std::max(stack.next_sequence, frame.sequence + 1);

  // Per-die fold + runaway bookkeeping input (hottest sensed site per die).
  std::map<std::size_t, std::pair<double, std::size_t>> die_max;
  for (const auto& r : frame.readings) {
    DieStats& die = stack.dies[r.die];
    die.sensed_c.add(r.sensed.value());
    if (r.degraded) {
      die.degraded_error_c.add(r.error());
      summary_.substituted_readings += 1;
    } else {
      die.error_c.add(r.error());
    }

    // Health-byte edge: the producer's supervisor changed its verdict on
    // this site since the last frame we saw.
    const auto health_it =
        summary_.site_health
            .try_emplace(std::make_pair(frame.stack_id, r.site_index),
                         core::HealthState::kHealthy)
            .first;
    const auto state_now = static_cast<core::HealthState>(r.health);
    if (health_it->second != state_now) {
      HealthEvent event;
      event.stack_id = frame.stack_id;
      event.die = r.die;
      event.site_index = r.site_index;
      event.from = health_it->second;
      event.to = state_now;
      event.sim_time = frame.sim_time;
      summary_.health_transitions.push_back(event);
      health_it->second = state_now;
      metrics.health_events.inc();
      if (on_health_) on_health_(event);
    }

    auto [it, inserted] =
        die_max.try_emplace(r.die, r.sensed.value(), r.site_index);
    if (!inserted && r.sensed.value() > it->second.first) {
      it->second = {r.sensed.value(), r.site_index};
    }

    SiteState& site = sites_[{frame.stack_id, r.site_index}];
    // Over-temperature: edge-triggered on threshold crossing.
    const bool over = r.sensed.value() > config_.alert_threshold.value();
    if (over && !site.over_temperature) {
      raise(AlertKind::kOverTemperature, frame, r.die, r.site_index,
            r.sensed.value());
    }
    site.over_temperature = over;
    // Dead sensor: degraded conversions for dead_scan_limit straight frames.
    site.degraded_streak = r.degraded ? site.degraded_streak + 1 : 0;
    if (site.degraded_streak >= config_.dead_scan_limit && !site.dead) {
      site.dead = true;
      raise(AlertKind::kDeadSensor, frame, r.die, r.site_index,
            static_cast<double>(site.degraded_streak));
    }
    if (!r.degraded) site.dead = false;
  }

  // Runaway: the die's peak sensed temperature climbing faster than
  // config_.runaway_rate between consecutive frames.
  for (const auto& [die, peak] : die_max) {
    DieRunaway& state = runaway_[{frame.stack_id, die}];
    if (state.primed) {
      const double dt = (frame.sim_time - state.last_time).value();
      if (dt > 0.0) {
        const double rate = (peak.first - state.last_max_c) / dt;
        if (rate > config_.runaway_rate && !state.alerting) {
          state.alerting = true;
          raise(AlertKind::kThermalRunaway, frame, die, peak.second, rate);
        }
        if (rate <= config_.runaway_rate) state.alerting = false;
      }
    }
    state.last_max_c = peak.first;
    state.last_time = frame.sim_time;
    state.primed = true;
  }

  // Spatial leave-one-out cross-check within the scan.
  if (config_.spatial_check && frame.readings.size() >= 3) {
    // Verdicts are positional (verdict i judges reading i), so take the die
    // from the reading itself rather than indexing readings by the
    // wire-supplied site_index.
    const auto verdicts = fault_detector_.analyze(frame.readings);
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      const auto& verdict = verdicts[i];
      SiteState& site = sites_[{frame.stack_id, verdict.site_index}];
      if (verdict.suspect && !site.spatial_suspect) {
        raise(AlertKind::kSpatialSuspect, frame, frame.readings[i].die,
              verdict.site_index, verdict.deviation.value());
      }
      site.spatial_suspect = verdict.suspect;
    }
  }
}

}  // namespace tsvpt::telemetry
