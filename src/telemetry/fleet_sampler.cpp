#include "telemetry/fleet_sampler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "process/variation.hpp"

namespace tsvpt::telemetry {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Worker-loop instrumentation, registered once and shared by every worker
/// thread (the handles are sharded internally, so concurrent use from the
/// pool stays uncontended).
struct SamplerMetrics {
  obs::Counter frames = obs::counter("tsvpt_sampler_frames_total");
  obs::Counter dropped = obs::counter("tsvpt_sampler_dropped_total");
  obs::Counter suppressed = obs::counter("tsvpt_sampler_suppressed_total");
  obs::Counter stalls = obs::counter("tsvpt_sampler_stalls_total");
  obs::Histogram scan_seconds =
      obs::histogram("tsvpt_sampler_scan_seconds");
  obs::Histogram encode_seconds =
      obs::histogram("tsvpt_sampler_encode_seconds");
  obs::Histogram push_seconds =
      obs::histogram("tsvpt_sampler_ring_push_seconds");
  obs::Histogram stall_wait_seconds =
      obs::histogram("tsvpt_sampler_stall_wait_seconds");
  obs::Histogram capture_to_ring =
      obs::stage_latency(obs::kStageCaptureToRing);

  static const SamplerMetrics& get() {
    static const SamplerMetrics metrics;
    return metrics;
  }
};

}  // namespace

/// Everything one stack needs to evolve and be scanned, owned by exactly
/// one worker thread for the whole run.
struct FleetSampler::Stack {
  thermal::StackConfig geometry;
  thermal::ThermalNetwork network;
  thermal::Workload workload;
  core::StackMonitor monitor;
  Rng noise;
  Second now{0.0};
  std::uint64_t sequence = 0;
  /// Present only when Config::supervise — owned by this stack's worker.
  std::unique_ptr<core::HealthSupervisor> supervisor;
  std::vector<core::HealthSupervisor::Transition> transitions;

  Stack(thermal::StackConfig geom, thermal::Workload load,
        std::vector<core::SensorSite> sites,
        const core::PtSensor::Config& sensor, std::uint64_t seed)
      : geometry(std::move(geom)),
        network(geometry),
        workload(std::move(load)),
        monitor(&network, sensor, std::move(sites), derive_seed(seed, 1)),
        noise(derive_seed(seed, 2)) {}
};

FleetSampler::FleetSampler(Config config) : config_(std::move(config)) {
  if (config_.stack_count == 0) {
    throw std::invalid_argument{"FleetSampler: zero stacks"};
  }
  if (config_.scans_per_stack == 0) {
    throw std::invalid_argument{"FleetSampler: zero scans"};
  }
  if (config_.sample_period.value() <= 0.0 ||
      config_.thermal_step.value() <= 0.0) {
    throw std::invalid_argument{"FleetSampler: non-positive period"};
  }
  if (config_.control != nullptr &&
      config_.control->stack_count() < config_.stack_count) {
    throw std::invalid_argument{
        "FleetSampler: control plane smaller than the fleet"};
  }
  if (config_.thread_count == 0) {
    config_.thread_count = std::thread::hardware_concurrency();
    if (config_.thread_count == 0) config_.thread_count = 1;
  }
  if (config_.thread_count > config_.stack_count) {
    config_.thread_count = config_.stack_count;
  }

  stacks_.reserve(config_.stack_count);
  production_.resize(config_.stack_count);
  for (std::size_t k = 0; k < config_.stack_count; ++k) {
    const std::uint64_t stack_seed = derive_seed(config_.seed, k);
    thermal::StackConfig geometry = thermal::StackConfig::four_die_stack();
    thermal::Workload workload = thermal::Workload::burst_idle(
        geometry, config_.peak_power, config_.idle_power,
        config_.burst_period,
        /*cycles=*/1'000'000);  // effectively unbounded; scans set duration

    std::vector<core::SensorSite> sites = core::StackMonitor::uniform_sites(
        geometry, config_.grid_columns, config_.grid_rows);
    const std::size_t per_die = config_.grid_columns * config_.grid_rows;
    std::vector<process::Point> points;
    points.reserve(per_die);
    for (std::size_t i = 0; i < per_die; ++i) {
      points.push_back(sites[i].location);
    }
    process::VariationModel variation{config_.sensor.tech, points};
    Rng process_rng{derive_seed(stack_seed, 0)};
    for (std::size_t d = 0; d < geometry.die_count(); ++d) {
      const process::DieVariation die = variation.sample_die(process_rng);
      for (std::size_t i = 0; i < per_die; ++i) {
        sites[d * per_die + i].vt_delta = die.at(i);
      }
    }
    stacks_.push_back(std::make_unique<Stack>(
        std::move(geometry), std::move(workload), std::move(sites),
        config_.sensor, stack_seed));
    if (config_.supervise) {
      stacks_.back()->supervisor =
          std::make_unique<core::HealthSupervisor>(config_.health);
    }
  }
  if (config_.control != nullptr &&
      config_.control->die_count() != stacks_.front()->geometry.die_count()) {
    throw std::invalid_argument{
        "FleetSampler: control plane die count mismatch"};
  }

  rings_.reserve(config_.thread_count);
  gates_.reserve(config_.thread_count);
  for (std::size_t w = 0; w < config_.thread_count; ++w) {
    rings_.push_back(std::make_unique<FrameRing>(config_.ring_capacity));
    gates_.push_back(std::make_unique<StallGate>());
  }
}

FleetSampler::~FleetSampler() = default;

std::vector<FrameRing*> FleetSampler::rings() {
  std::vector<FrameRing*> out;
  out.reserve(rings_.size());
  for (auto& ring : rings_) out.push_back(ring.get());
  return out;
}

// hot(io): sampler workers feed the publisher through in-memory rings only;
// a syscall here (socket, fsync, poll) would couple thermal scan cadence to
// kernel scheduling and show up as fake sensor jitter.
void FleetSampler::worker(std::size_t worker_index) {
  FrameRing& ring = *rings_[worker_index];

  // Initialize and power-on-calibrate this worker's stacks.
  for (std::size_t k = worker_index; k < stacks_.size();
       k += config_.thread_count) {
    Stack& stack = *stacks_[k];
    stack.workload.apply(stack.network, Second{0.0});
    stack.network.set_temperatures(stack.network.steady_state());
    stack.monitor.calibrate_all(&stack.noise);
  }

  // Round-robin the stacks scan by scan so every stack streams steadily
  // (scan-major, not stack-major: a collector watching for runaway should
  // not see one stack's whole history before another's first frame).
  for (std::size_t scan = 0; scan < config_.scans_per_stack; ++scan) {
    // Scan boundary: honour an injected worker stall.  Parked here the
    // worker produces nothing, its rings age, and the collector's watchdog
    // is expected to notice and resume it.
    {
      StallGate& gate = *gates_[worker_index];
      std::unique_lock<std::mutex> lock{gate.mutex};
      if (gate.stalled) {
        // Only a real stall pays for a span — the un-stalled boundary stays
        // a mutex acquire and one branch.
        const SamplerMetrics& m = SamplerMetrics::get();
        m.stalls.inc();
        const obs::ObsSpan wait_span{"sampler", "stall_wait",
                                     m.stall_wait_seconds, worker_index};
        gate.cv.wait(lock, [&] { return !gate.stalled; });
      }
    }

    for (std::size_t k = worker_index; k < stacks_.size();
         k += config_.thread_count) {
      Stack& stack = *stacks_[k];
      const SamplerMetrics& metrics = SamplerMetrics::get();
      // One span per stack-scan (thermal advance + conversion +
      // supervision): the frame is the pipeline's natural unit of work, so
      // frame-level spans keep the recorder's rate equal to the frame rate.
      const obs::ObsSpan scan_span{"sampler", "scan", metrics.scan_seconds,
                                   k};
      if (config_.interceptor != nullptr) {
        config_.interceptor->before_scan(k, scan, stack.monitor);
      }
      control::Controller* controller =
          config_.control != nullptr ? &config_.control->controller(k)
                                     : nullptr;
      // Advance simulated time to the next sampling instant — under the
      // controller's held actuation when the loop is closed.
      Second advanced{0.0};
      while (advanced < config_.sample_period) {
        const Second h =
            std::min(config_.thermal_step, config_.sample_period - advanced);
        if (h.value() <= 0.0) break;  // float residue; the period is covered
        if (controller != nullptr) {
          control::apply_actuation(stack.workload, stack.network,
                                   stack.now + advanced,
                                   controller->actuation(),
                                   controller->config().plant);
        } else {
          stack.workload.apply(stack.network, stack.now + advanced);
        }
        stack.network.step(h);
        if (controller != nullptr) {
          Celsius hottest{-273.15};
          const std::size_t dies = stack.geometry.die_count();
          for (std::size_t d = 0; d < dies; ++d) {
            const Celsius t = to_celsius(stack.network.max_temperature(d));
            if (t > hottest) hottest = t;
          }
          controller->note_tick(
              h, hottest,
              Watt{stack.network.total_power().value() +
                   stack.network.leakage_power().value()});
        }
        advanced += h;
      }
      stack.now += config_.sample_period;

      Frame frame;
      frame.stack_id =
          config_.stack_id_base + static_cast<std::uint32_t>(k);
      frame.sequence = stack.sequence++;
      frame.sim_time = stack.now;
      if (stack.supervisor != nullptr) {
        // Supervised path: only convert the sites the supervisor asks for
        // (quarantined sites between probes and dead sites cost nothing);
        // skipped slots carry a placeholder the supervisor substitutes.
        const std::size_t sites = stack.monitor.site_count();
        std::vector<bool> sampled(sites, true);
        frame.readings.reserve(sites);
        for (std::size_t i = 0; i < sites; ++i) {
          if (stack.supervisor->wants_sample(i)) {
            frame.readings.push_back(stack.monitor.sample_site(i, &stack.noise));
          } else {
            sampled[i] = false;
            core::StackMonitor::SiteReading placeholder;
            placeholder.site_index = i;
            placeholder.die = stack.monitor.site(i).die;
            placeholder.location = stack.monitor.site(i).location;
            placeholder.truth = stack.monitor.truth_at(i);
            placeholder.degraded = true;  // no conversion behind it
            frame.readings.push_back(placeholder);
          }
        }
        if (config_.interceptor != nullptr) {
          config_.interceptor->after_scan(k, scan, frame.readings);
        }
        auto result = stack.supervisor->observe(frame.readings, sampled);
        for (const std::size_t i : result.recalibrate) {
          // Forced recalibration on recovery: drop the latched process
          // point; the next conversion self-calibrates afresh.
          stack.monitor.sensor(i).clear_calibration();
        }
        for (auto& t : result.transitions) {
          stack.transitions.push_back(std::move(t));
        }
        frame.readings = std::move(result.readings);
      } else {
        frame.readings = stack.monitor.sample_all(&stack.noise);
        if (config_.interceptor != nullptr) {
          config_.interceptor->after_scan(k, scan, frame.readings);
        }
      }
      if (controller != nullptr) {
        // Post-supervision readings: the controller sees what the fleet
        // sees — substituted quarantine placeholders arrive flagged
        // degraded, so no policy can actuate on a dead sensor.
        controller->on_scan(scan, stack.now, frame.readings);
      }
      frame.capture_ns = steady_now_ns();

      production_[k].frames += 1;
      metrics.frames.inc();
      std::vector<std::uint8_t> buffer;
      {
        const obs::ObsSpan encode_span{"sampler", "encode",
                                       metrics.encode_seconds, k};
        buffer = encode(frame);
      }
      if (config_.sink != nullptr) {
        // The recorder sees every produced frame with its pristine wire
        // image — before the interceptor gets a chance to corrupt or
        // suppress the publish.  The live ring stays lossy; the store does
        // not.
        config_.sink->on_frame(frame, buffer);
      }
      if (config_.interceptor != nullptr &&
          !config_.interceptor->before_publish(k, scan, buffer)) {
        // Injected ring stall: the frame is produced (sequence advanced)
        // but never published — the collector sees a sequence gap.
        production_[k].suppressed += 1;
        metrics.suppressed.inc();
        continue;
      }
      const obs::ObsSpan push_span{"sampler", "ring_push",
                                   metrics.push_seconds, k};
      ring.push_overwrite(std::move(buffer),
                          [&](std::vector<std::uint8_t>&& v) {
        metrics.dropped.inc();
        const auto victim = peek_stack_id(v);
        if (victim && *victim >= config_.stack_id_base &&
            *victim - config_.stack_id_base < production_.size()) {
          production_[*victim - config_.stack_id_base].dropped += 1;
        } else {
          // Peeked id out of range (or no header): a frame this sampler did
          // not produce.  Impossible while rings stay private, but never an
          // excuse for an out-of-bounds write.
          unattributed_drops_.fetch_add(1, std::memory_order_relaxed);
        }
      });
      // First leg of the stage waterfall: sense-complete to ring-visible.
      const std::uint64_t pushed_ns = steady_now_ns();
      if (pushed_ns >= frame.capture_ns) {
        metrics.capture_to_ring.observe(
            static_cast<double>(pushed_ns - frame.capture_ns) * 1e-9);
      }
    }
  }
}

void FleetSampler::set_interceptor(ScanInterceptor* interceptor) {
  if (ran_) {
    throw std::logic_error{"FleetSampler::set_interceptor: already ran"};
  }
  config_.interceptor = interceptor;
}

void FleetSampler::run() {
  if (ran_) throw std::logic_error{"FleetSampler::run: already ran"};
  ran_ = true;

  obs::gauge("tsvpt_sampler_workers")
      .set(static_cast<double>(config_.thread_count));
  obs::gauge("tsvpt_sampler_stacks")
      .set(static_cast<double>(config_.stack_count));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(config_.thread_count);
  for (std::size_t w = 0; w < config_.thread_count; ++w) {
    pool.emplace_back([this, w] { worker(w); });
  }
  for (auto& t : pool) t.join();
  elapsed_ = Second{std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count()};
}

std::uint64_t FleetSampler::total_frames() const {
  std::uint64_t total = 0;
  for (const auto& p : production_) total += p.frames;
  return total;
}

std::uint64_t FleetSampler::total_dropped() const {
  std::uint64_t total = unattributed_drops_.load(std::memory_order_relaxed);
  for (const auto& p : production_) total += p.dropped;
  return total;
}

std::size_t FleetSampler::worker_of(std::size_t stack) const {
  if (stack >= stacks_.size()) {
    throw std::out_of_range{"FleetSampler::worker_of: no such stack"};
  }
  return stack % config_.thread_count;
}

void FleetSampler::stall_worker(std::size_t worker_index) {
  StallGate& gate = *gates_.at(worker_index);
  const std::lock_guard<std::mutex> lock{gate.mutex};
  gate.stalled = true;
}

void FleetSampler::resume_worker(std::size_t worker_index) {
  StallGate& gate = *gates_.at(worker_index);
  {
    const std::lock_guard<std::mutex> lock{gate.mutex};
    gate.stalled = false;
  }
  gate.cv.notify_all();
}

void FleetSampler::resume_all() {
  for (std::size_t w = 0; w < gates_.size(); ++w) resume_worker(w);
}

std::vector<core::HealthSupervisor::Transition> FleetSampler::transitions(
    std::size_t stack) const {
  const Stack& s = *stacks_.at(stack);
  return s.transitions;
}

std::vector<core::HealthState> FleetSampler::health(std::size_t stack) const {
  const Stack& s = *stacks_.at(stack);
  std::vector<core::HealthState> out;
  if (s.supervisor == nullptr) return out;
  out.reserve(s.supervisor->site_count());
  for (std::size_t i = 0; i < s.supervisor->site_count(); ++i) {
    out.push_back(s.supervisor->state(i));
  }
  return out;
}

}  // namespace tsvpt::telemetry
