// Wire codec for readout frames: the unit of data a stack's readout
// controller ships off-die.  One frame carries one full scan (every
// SiteReading of one StackMonitor::sample_all) plus enough header to route,
// order and timestamp it at the collector:
//
//   [magic u32] [version u16] [flags u16] [stack_id u32] [site_count u32]
//   [sequence u64] [sim_time f64] [capture_ns u64]
//   site_count x { site u32, die u32, x f64, y f64,
//                  sensed f64, truth f64, energy f64, degraded u8,
//                  health u8 }
//   [crc32 u32]
//
// Everything is little-endian on the wire regardless of host order; doubles
// travel as their IEEE-754 bit patterns.  The trailing CRC-32 (IEEE
// polynomial, as in Ethernet/zlib) covers every preceding byte, so
// truncation, bit rot and version skew are all detected at decode time
// instead of corrupting fleet statistics.  `truth` is simulation-only
// ground truth riding along for error accounting; real silicon would omit
// it (a future wire version).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/stack_monitor.hpp"
#include "ptsim/units.hpp"
#include "telemetry/codec_util.hpp"  // crc32 + varint/zigzag primitives

namespace tsvpt::telemetry {

/// Wire-format revision this build encodes and the only one it decodes.
/// v2 added the per-site health byte (core::HealthState as judged by the
/// producer-side HealthSupervisor), so the collector can track quarantine
/// transitions without re-deriving them.
inline constexpr std::uint16_t kWireVersion = 2;
/// "TSVT" little-endian.
inline constexpr std::uint32_t kWireMagic = 0x54565354u;
/// Decode-time sanity bound: no plausible stack carries more sites.
inline constexpr std::uint32_t kMaxSiteCount = 1u << 16;

/// One scan of one stack, as transported on the wire.
struct Frame {
  std::uint32_t stack_id = 0;
  /// Per-stack monotonically increasing frame number (gap = lost frame).
  std::uint64_t sequence = 0;
  /// Simulated time of the scan.
  Second sim_time{0.0};
  /// Producer-side std::chrono::steady_clock stamp, for end-to-end latency.
  std::uint64_t capture_ns = 0;
  std::vector<core::StackMonitor::SiteReading> readings;

  [[nodiscard]] bool operator==(const Frame& other) const;
};

/// Serialize to the wire layout above (header + payload + CRC).
[[nodiscard]] std::vector<std::uint8_t> encode(const Frame& frame);

enum class DecodeStatus {
  kOk,
  /// Buffer shorter than the layout promises (or than a header at all).
  kTruncated,
  kBadMagic,
  /// Header version this build does not speak.
  kUnsupportedVersion,
  /// Site count exceeds kMaxSiteCount (corrupt or hostile length field).
  kBadSiteCount,
  /// A reading's site_index is outside [0, site_count).  Frames carry one
  /// full scan, so indexes are dense; consumers rely on this to index
  /// scan-shaped arrays safely.
  kBadSiteIndex,
  /// A reading's health byte names no core::HealthState.
  kBadHealthState,
  kBadCrc,
};

[[nodiscard]] const char* to_string(DecodeStatus status);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kTruncated;
  Frame frame;  // valid only when status == kOk

  [[nodiscard]] bool ok() const { return status == DecodeStatus::kOk; }
};

/// Validate and deserialize one frame.  Never throws: every malformed input
/// maps to a DecodeStatus (fuzz-tested).
[[nodiscard]] DecodeResult decode(const std::uint8_t* data, std::size_t size);
[[nodiscard]] DecodeResult decode(const std::vector<std::uint8_t>& buffer);

/// Read just the stack id from an encoded frame without a full decode —
/// what drop-oldest accounting needs when a ring evicts a frame (attributing
/// the loss is O(1); decoding the victim would cost more than producing it).
/// Empty when the buffer cannot possibly hold a valid header.
[[nodiscard]] std::optional<std::uint32_t> peek_stack_id(
    const std::vector<std::uint8_t>& buffer);

/// Encoded size of a frame carrying `site_count` readings.
[[nodiscard]] std::size_t encoded_size(std::size_t site_count);

}  // namespace tsvpt::telemetry
