#include "telemetry/frame.hpp"

#include <bit>
#include <cstring>

#include "core/health_supervisor.hpp"
#include "telemetry/codec_util.hpp"

namespace tsvpt::telemetry {
namespace {

// Header: magic, version, flags, stack_id, site_count, sequence, sim_time,
// capture_ns.
constexpr std::size_t kHeaderSize = 4 + 2 + 2 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kSiteSize = 4 + 4 + 8 * 5 + 1 + 1;
constexpr std::size_t kCrcSize = 4;
constexpr std::size_t kStackIdOffset = 4 + 2 + 2;

}  // namespace

bool Frame::operator==(const Frame& other) const {
  if (stack_id != other.stack_id || sequence != other.sequence ||
      sim_time.value() != other.sim_time.value() ||
      capture_ns != other.capture_ns ||
      readings.size() != other.readings.size()) {
    return false;
  }
  for (std::size_t i = 0; i < readings.size(); ++i) {
    const auto& a = readings[i];
    const auto& b = other.readings[i];
    if (a.site_index != b.site_index || a.die != b.die ||
        a.location.x != b.location.x || a.location.y != b.location.y ||
        a.sensed.value() != b.sensed.value() ||
        a.truth.value() != b.truth.value() ||
        a.energy.value() != b.energy.value() || a.degraded != b.degraded ||
        a.health != b.health) {
      return false;
    }
  }
  return true;
}

std::size_t encoded_size(std::size_t site_count) {
  return kHeaderSize + site_count * kSiteSize + kCrcSize;
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(frame.readings.size()));
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u16(out, 0);  // flags, reserved
  put_u32(out, frame.stack_id);
  put_u32(out, static_cast<std::uint32_t>(frame.readings.size()));
  put_u64(out, frame.sequence);
  put_f64(out, frame.sim_time.value());
  put_u64(out, frame.capture_ns);
  for (const auto& r : frame.readings) {
    put_u32(out, static_cast<std::uint32_t>(r.site_index));
    put_u32(out, static_cast<std::uint32_t>(r.die));
    put_f64(out, r.location.x);
    put_f64(out, r.location.y);
    put_f64(out, r.sensed.value());
    put_f64(out, r.truth.value());
    put_f64(out, r.energy.value());
    put_u8(out, r.degraded ? 1 : 0);
    put_u8(out, r.health);
  }
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

DecodeResult decode(const std::uint8_t* data, std::size_t size) {
  DecodeResult result;
  if (data == nullptr || size < kHeaderSize + kCrcSize) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  ByteCursor r{data, size};
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t flags = 0;
  if (!r.u32(magic) || magic != kWireMagic) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  if (!r.u16(version) || version != kWireVersion) {
    result.status = DecodeStatus::kUnsupportedVersion;
    return result;
  }
  (void)r.u16(flags);  // reserved
  Frame frame;
  std::uint32_t site_count = 0;
  (void)r.u32(frame.stack_id);
  (void)r.u32(site_count);
  if (site_count > kMaxSiteCount) {
    result.status = DecodeStatus::kBadSiteCount;
    return result;
  }
  if (size != encoded_size(site_count)) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  if (crc32(data, size - kCrcSize) != get_u32(data + size - kCrcSize)) {
    result.status = DecodeStatus::kBadCrc;
    return result;
  }
  (void)r.u64(frame.sequence);
  double sim_time = 0.0;
  (void)r.f64(sim_time);
  frame.sim_time = Second{sim_time};
  (void)r.u64(frame.capture_ns);
  frame.readings.reserve(site_count);
  for (std::uint32_t i = 0; i < site_count; ++i) {
    core::StackMonitor::SiteReading reading;
    std::uint32_t site_index = 0;
    std::uint32_t die = 0;
    (void)r.u32(site_index);
    reading.site_index = site_index;
    if (reading.site_index >= site_count) {
      result.status = DecodeStatus::kBadSiteIndex;
      return result;
    }
    (void)r.u32(die);
    reading.die = die;
    double x = 0.0;
    double y = 0.0;
    double sensed = 0.0;
    double truth = 0.0;
    double energy = 0.0;
    (void)r.f64(x);
    (void)r.f64(y);
    (void)r.f64(sensed);
    (void)r.f64(truth);
    (void)r.f64(energy);
    reading.location = {x, y};
    reading.sensed = Celsius{sensed};
    reading.truth = Celsius{truth};
    reading.energy = Joule{energy};
    std::uint8_t degraded = 0;
    (void)r.u8(degraded);
    reading.degraded = degraded != 0;
    (void)r.u8(reading.health);
    if (reading.health >= core::kHealthStateCount) {
      result.status = DecodeStatus::kBadHealthState;
      return result;
    }
    frame.readings.push_back(reading);
  }
  result.status = DecodeStatus::kOk;
  result.frame = std::move(frame);
  return result;
}

DecodeResult decode(const std::vector<std::uint8_t>& buffer) {
  return decode(buffer.data(), buffer.size());
}

std::optional<std::uint32_t> peek_stack_id(
    const std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < kHeaderSize) return std::nullopt;
  return get_u32(buffer.data() + kStackIdOffset);
}

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kUnsupportedVersion: return "unsupported-version";
    case DecodeStatus::kBadSiteCount: return "bad-site-count";
    case DecodeStatus::kBadSiteIndex: return "bad-site-index";
    case DecodeStatus::kBadHealthState: return "bad-health-state";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  return "unknown";
}

}  // namespace tsvpt::telemetry
