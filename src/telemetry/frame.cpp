#include "telemetry/frame.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "core/health_supervisor.hpp"

namespace tsvpt::telemetry {
namespace {

// Header: magic, version, flags, stack_id, site_count, sequence, sim_time,
// capture_ns.
constexpr std::size_t kHeaderSize = 4 + 2 + 2 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kSiteSize = 4 + 4 + 8 * 5 + 1 + 1;
constexpr std::size_t kCrcSize = 4;
constexpr std::size_t kStackIdOffset = 4 + 2 + 2;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

class Writer {
 public:
  explicit Writer(std::size_t reserve) { out_.reserve(reserve); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  std::vector<std::uint8_t>& bytes() { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return data_[pos_++]; }
  std::uint16_t u16() {
    const auto v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool Frame::operator==(const Frame& other) const {
  if (stack_id != other.stack_id || sequence != other.sequence ||
      sim_time.value() != other.sim_time.value() ||
      capture_ns != other.capture_ns ||
      readings.size() != other.readings.size()) {
    return false;
  }
  for (std::size_t i = 0; i < readings.size(); ++i) {
    const auto& a = readings[i];
    const auto& b = other.readings[i];
    if (a.site_index != b.site_index || a.die != b.die ||
        a.location.x != b.location.x || a.location.y != b.location.y ||
        a.sensed.value() != b.sensed.value() ||
        a.truth.value() != b.truth.value() ||
        a.energy.value() != b.energy.value() || a.degraded != b.degraded ||
        a.health != b.health) {
      return false;
    }
  }
  return true;
}

std::size_t encoded_size(std::size_t site_count) {
  return kHeaderSize + site_count * kSiteSize + kCrcSize;
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  Writer w{encoded_size(frame.readings.size())};
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(0);  // flags, reserved
  w.u32(frame.stack_id);
  w.u32(static_cast<std::uint32_t>(frame.readings.size()));
  w.u64(frame.sequence);
  w.f64(frame.sim_time.value());
  w.u64(frame.capture_ns);
  for (const auto& r : frame.readings) {
    w.u32(static_cast<std::uint32_t>(r.site_index));
    w.u32(static_cast<std::uint32_t>(r.die));
    w.f64(r.location.x);
    w.f64(r.location.y);
    w.f64(r.sensed.value());
    w.f64(r.truth.value());
    w.f64(r.energy.value());
    w.u8(r.degraded ? 1 : 0);
    w.u8(r.health);
  }
  w.u32(crc32(w.bytes().data(), w.bytes().size()));
  return std::move(w.bytes());
}

DecodeResult decode(const std::uint8_t* data, std::size_t size) {
  DecodeResult result;
  if (data == nullptr || size < kHeaderSize + kCrcSize) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  Reader r{data, size};
  if (r.u32() != kWireMagic) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  if (r.u16() != kWireVersion) {
    result.status = DecodeStatus::kUnsupportedVersion;
    return result;
  }
  (void)r.u16();  // flags
  Frame frame;
  frame.stack_id = r.u32();
  const std::uint32_t site_count = r.u32();
  if (site_count > kMaxSiteCount) {
    result.status = DecodeStatus::kBadSiteCount;
    return result;
  }
  if (size != encoded_size(site_count)) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  if (crc32(data, size - kCrcSize) !=
      [&] {
        std::uint32_t v = 0;
        std::memcpy(&v, data + size - kCrcSize, kCrcSize);
        if constexpr (std::endian::native == std::endian::big) {
          v = __builtin_bswap32(v);
        }
        return v;
      }()) {
    result.status = DecodeStatus::kBadCrc;
    return result;
  }
  frame.sequence = r.u64();
  frame.sim_time = Second{r.f64()};
  frame.capture_ns = r.u64();
  frame.readings.reserve(site_count);
  for (std::uint32_t i = 0; i < site_count; ++i) {
    core::StackMonitor::SiteReading reading;
    reading.site_index = r.u32();
    if (reading.site_index >= site_count) {
      result.status = DecodeStatus::kBadSiteIndex;
      return result;
    }
    reading.die = r.u32();
    reading.location.x = r.f64();
    reading.location.y = r.f64();
    reading.sensed = Celsius{r.f64()};
    reading.truth = Celsius{r.f64()};
    reading.energy = Joule{r.f64()};
    reading.degraded = r.u8() != 0;
    reading.health = r.u8();
    if (reading.health >= core::kHealthStateCount) {
      result.status = DecodeStatus::kBadHealthState;
      return result;
    }
    frame.readings.push_back(reading);
  }
  result.status = DecodeStatus::kOk;
  result.frame = std::move(frame);
  return result;
}

DecodeResult decode(const std::vector<std::uint8_t>& buffer) {
  return decode(buffer.data(), buffer.size());
}

std::optional<std::uint32_t> peek_stack_id(
    const std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < kHeaderSize) return std::nullopt;
  std::uint32_t id = 0;
  for (int i = 0; i < 4; ++i) {
    id |= static_cast<std::uint32_t>(buffer[kStackIdOffset + i]) << (8 * i);
  }
  return id;
}

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kUnsupportedVersion: return "unsupported-version";
    case DecodeStatus::kBadSiteCount: return "bad-site-count";
    case DecodeStatus::kBadSiteIndex: return "bad-site-index";
    case DecodeStatus::kBadHealthState: return "bad-health-state";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  return "unknown";
}

}  // namespace tsvpt::telemetry
