// Deterministic random-number generation for Monte-Carlo experiments.
//
// All stochastic behaviour in the simulator flows through Rng so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256++ (public domain, Blackman & Vigna) seeded through SplitMix64,
// which gives us cheap, high-quality, *stable across platforms* streams —
// std::mt19937 distributions are not guaranteed bit-identical across
// standard-library implementations, and the paper-reproduction tables must
// not change when the toolchain does.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace tsvpt {

/// Counter-based seed derivation so that independent subsystems (per-die
/// process draws, noise sources, workload generators) can be given
/// decorrelated child seeds from one experiment master seed.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::uint64_t stream_id);

/// Deterministic pseudo-random generator with the distribution helpers the
/// simulator needs.  Copyable; copies continue the same sequence
/// independently, which makes "fork a stream" explicit at call sites.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double gaussian();

  /// Normal deviate with given mean and standard deviation.
  double gaussian(double mean, double sigma);

  /// Bernoulli trial.
  bool bernoulli(double p_true);

  /// Exponentially distributed deviate with the given mean (> 0).
  double exponential(double mean);

  /// A decorrelated child generator for an independent subsystem.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

  /// Fisher-Yates shuffle of an index vector (used by placement ablations).
  void shuffle(std::vector<std::size_t>& items);

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_;
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tsvpt
