// Statistics accumulators used by the Monte-Carlo harnesses and benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tsvpt {

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
/// Used where the population is too large to keep resident.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  /// Population variance (n denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// max(|min|, |max|): the "±x" bound the paper's abstract quotes.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with quantile / sigma-bound queries.  Keeps all samples;
/// fine for the populations used here (thousands to low millions).
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::vector<double> values);

  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double max_abs() const;
  /// Linear-interpolated quantile, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  /// Three-sigma spread around the mean, the usual sensor-accuracy metric.
  [[nodiscard]] double three_sigma() const { return 3.0 * stddev(); }
  /// Root-mean-square of the samples (useful for error populations).
  [[nodiscard]] double rms() const;

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-bin histogram over [lo, hi]; out-of-range samples clamp to the edge
/// bins so totals always match the sample count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// Render as rows of "center count bar" suitable for bench output.
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Ordinary least-squares line fit; returned as y = slope * x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination of the fit.
  double r_squared = 0.0;
};

[[nodiscard]] LineFit fit_line(const std::vector<double>& x,
                               const std::vector<double>& y);

/// Pearson correlation coefficient of two equal-length series.
[[nodiscard]] double correlation(const std::vector<double>& x,
                                 const std::vector<double>& y);

}  // namespace tsvpt
