#include "ptsim/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace tsvpt {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step: used only for seeding / seed derivation.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream_id) {
  // Mix the stream id through SplitMix64 twice so adjacent ids land far
  // apart in the seed space.
  std::uint64_t s = master ^ (0xA0761D6478BD642FULL * (stream_id + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; SplitMix64 of any seed
  // cannot produce four zero words, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument{"uniform_int: hi < lo"};
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Classic rejection below the bias threshold for an exactly uniform draw.
  const std::uint64_t threshold = (0 - span) % span;
  std::uint64_t x = next_u64();
  while (x < threshold) x = next_u64();
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double sigma) {
  return mean + sigma * gaussian();
}

bool Rng::bernoulli(double p_true) { return uniform() < p_true; }

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

Rng Rng::fork(std::uint64_t stream_id) const {
  return Rng{derive_seed(seed_, stream_id)};
}

void Rng::shuffle(std::vector<std::size_t>& items) {
  if (items.empty()) return;
  for (std::size_t i = items.size() - 1; i > 0; --i) {
    const auto j =
        static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
    std::swap(items[i], items[j]);
  }
}

}  // namespace tsvpt
