// Strong physical-unit types used throughout the tsvpt libraries.
//
// The sensor models mix temperatures, voltages, frequencies, energies and
// geometric quantities; silently adding a Kelvin to a Volt is exactly the
// kind of bug a behavioral-model codebase breeds.  Every public interface in
// this project therefore traffics in the wrapper types below instead of bare
// doubles.  The wrappers are zero-overhead: a single double, constexpr
// everywhere, with only the arithmetic that is dimensionally meaningful.
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace tsvpt {

/// CRTP base providing the arithmetic shared by all scalar unit wrappers.
/// Same-unit add/subtract, scaling by dimensionless doubles, comparisons,
/// and a ratio operator that yields a dimensionless double.
template <typename Derived>
class UnitBase {
 public:
  constexpr UnitBase() = default;
  constexpr explicit UnitBase(double v) : value_(v) {}

  /// Raw numeric value in the unit's canonical SI scale.
  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value_ + b.value_};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value_ - b.value_};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value_}; }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value_ * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value_ * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value_ / s};
  }
  /// Ratio of two same-unit quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value_ <=> b.value_;
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value_ == b.value_;
  }
  constexpr Derived& operator+=(Derived b) {
    value_ += b.value_;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived b) {
    value_ -= b.value_;
    return static_cast<Derived&>(*this);
  }

  friend std::ostream& operator<<(std::ostream& os, Derived d) {
    return os << d.value_ << ' ' << Derived::kSymbol;
  }

 protected:
  double value_ = 0.0;
};

/// Electrical potential in volts.
class Volt : public UnitBase<Volt> {
 public:
  static constexpr const char* kSymbol = "V";
  using UnitBase::UnitBase;
};

/// Frequency in hertz.
class Hertz : public UnitBase<Hertz> {
 public:
  static constexpr const char* kSymbol = "Hz";
  using UnitBase::UnitBase;
};

/// Time in seconds.
class Second : public UnitBase<Second> {
 public:
  static constexpr const char* kSymbol = "s";
  using UnitBase::UnitBase;
};

/// Energy in joules.
class Joule : public UnitBase<Joule> {
 public:
  static constexpr const char* kSymbol = "J";
  using UnitBase::UnitBase;
};

/// Power in watts.
class Watt : public UnitBase<Watt> {
 public:
  static constexpr const char* kSymbol = "W";
  using UnitBase::UnitBase;
};

/// Electrical current in amperes.
class Ampere : public UnitBase<Ampere> {
 public:
  static constexpr const char* kSymbol = "A";
  using UnitBase::UnitBase;
};

/// Capacitance in farads.
class Farad : public UnitBase<Farad> {
 public:
  static constexpr const char* kSymbol = "F";
  using UnitBase::UnitBase;
};

/// Length in meters.
class Meter : public UnitBase<Meter> {
 public:
  static constexpr const char* kSymbol = "m";
  using UnitBase::UnitBase;
};

/// Absolute temperature in kelvin.  The thermal solver and the device physics
/// work in kelvin; the user-facing API works in Celsius.
class Kelvin : public UnitBase<Kelvin> {
 public:
  static constexpr const char* kSymbol = "K";
  using UnitBase::UnitBase;
};

/// Temperature expressed in degrees Celsius.  Distinct from Kelvin so that
/// the 273.15 offset is applied exactly once, at an explicit conversion.
class Celsius : public UnitBase<Celsius> {
 public:
  static constexpr const char* kSymbol = "degC";
  using UnitBase::UnitBase;
};

inline constexpr double kCelsiusOffset = 273.15;

[[nodiscard]] constexpr Kelvin to_kelvin(Celsius c) {
  return Kelvin{c.value() + kCelsiusOffset};
}
[[nodiscard]] constexpr Celsius to_celsius(Kelvin k) {
  return Celsius{k.value() - kCelsiusOffset};
}

// Cross-unit arithmetic that the models actually need.
[[nodiscard]] constexpr Second period_of(Hertz f) {
  return Second{1.0 / f.value()};
}
[[nodiscard]] constexpr Hertz frequency_of(Second t) {
  return Hertz{1.0 / t.value()};
}
[[nodiscard]] constexpr Joule operator*(Watt p, Second t) {
  return Joule{p.value() * t.value()};
}
[[nodiscard]] constexpr Joule operator*(Second t, Watt p) { return p * t; }
[[nodiscard]] constexpr Watt operator*(Volt v, Ampere i) {
  return Watt{v.value() * i.value()};
}
[[nodiscard]] constexpr Watt operator/(Joule e, Second t) {
  return Watt{e.value() / t.value()};
}

// Convenience literal-style factories (SI-prefixed), e.g. millivolts(1.6).
[[nodiscard]] constexpr Volt volts(double v) { return Volt{v}; }
[[nodiscard]] constexpr Volt millivolts(double v) { return Volt{v * 1e-3}; }
[[nodiscard]] constexpr Hertz hertz(double v) { return Hertz{v}; }
[[nodiscard]] constexpr Hertz kilohertz(double v) { return Hertz{v * 1e3}; }
[[nodiscard]] constexpr Hertz megahertz(double v) { return Hertz{v * 1e6}; }
[[nodiscard]] constexpr Hertz gigahertz(double v) { return Hertz{v * 1e9}; }
[[nodiscard]] constexpr Second seconds(double v) { return Second{v}; }
[[nodiscard]] constexpr Second milliseconds(double v) {
  return Second{v * 1e-3};
}
[[nodiscard]] constexpr Second microseconds(double v) {
  return Second{v * 1e-6};
}
[[nodiscard]] constexpr Second nanoseconds(double v) {
  return Second{v * 1e-9};
}
[[nodiscard]] constexpr Second picoseconds(double v) {
  return Second{v * 1e-12};
}
[[nodiscard]] constexpr Joule joules(double v) { return Joule{v}; }
[[nodiscard]] constexpr Joule picojoules(double v) { return Joule{v * 1e-12}; }
[[nodiscard]] constexpr Joule femtojoules(double v) {
  return Joule{v * 1e-15};
}
[[nodiscard]] constexpr Watt watts(double v) { return Watt{v}; }
[[nodiscard]] constexpr Watt milliwatts(double v) { return Watt{v * 1e-3}; }
[[nodiscard]] constexpr Watt microwatts(double v) { return Watt{v * 1e-6}; }
[[nodiscard]] constexpr Meter meters(double v) { return Meter{v}; }
[[nodiscard]] constexpr Meter millimeters(double v) { return Meter{v * 1e-3}; }
[[nodiscard]] constexpr Meter micrometers(double v) { return Meter{v * 1e-6}; }
[[nodiscard]] constexpr Celsius celsius(double v) { return Celsius{v}; }
[[nodiscard]] constexpr Kelvin kelvin(double v) { return Kelvin{v}; }
[[nodiscard]] constexpr Farad farads(double v) { return Farad{v}; }
[[nodiscard]] constexpr Farad femtofarads(double v) {
  return Farad{v * 1e-15};
}
[[nodiscard]] constexpr Ampere amperes(double v) { return Ampere{v}; }
[[nodiscard]] constexpr Ampere microamperes(double v) {
  return Ampere{v * 1e-6};
}

/// Boltzmann constant over electron charge: thermal voltage slope, V/K.
inline constexpr double kBoltzmannOverQ = 8.617333262e-5;

/// Thermal voltage kT/q at an absolute temperature.
[[nodiscard]] constexpr Volt thermal_voltage(Kelvin t) {
  return Volt{kBoltzmannOverQ * t.value()};
}

}  // namespace tsvpt
