#include "ptsim/table.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace tsvpt {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::add_column(std::string header, int precision) {
  if (!rows_.empty()) {
    throw std::logic_error{"add_column after rows were added"};
  }
  headers_.push_back(std::move(header));
  precisions_.push_back(precision);
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"row width does not match column count"};
  }
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& cell, std::size_t column) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  std::ostringstream os;
  if (const auto* d = std::get_if<double>(&cell)) {
    os.setf(std::ios::fixed);
    os.precision(precisions_[column]);
    os << *d;
  } else {
    os << std::get<long long>(cell);
  }
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c], c));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : formatted) print_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << ',';
    os << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << quote(format_cell(row[c], c));
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

void Table::write_csv(const std::string& path) const {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot open " + path};
  out << to_csv();
  if (!out) throw std::runtime_error{"write failed: " + path};
}

}  // namespace tsvpt
