// Minimal leveled logger.  The simulator libraries never print to stdout on
// their own (bench output must stay machine-parsable); diagnostics go through
// this sink, which tests can capture and benches can silence.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace tsvpt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] const char* to_string(LogLevel level);

/// Process-wide logging configuration.  Not thread-safe by design: the
/// simulator is single-threaded per experiment, and benches set this once at
/// startup.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replace the output sink (default writes to stderr).
  void set_sink(Sink sink);

  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {
/// Stream-style one-shot message builder: LogLine(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() {
  return detail::LogLine{LogLevel::kDebug};
}
inline detail::LogLine log_info() { return detail::LogLine{LogLevel::kInfo}; }
inline detail::LogLine log_warn() { return detail::LogLine{LogLevel::kWarn}; }
inline detail::LogLine log_error() {
  return detail::LogLine{LogLevel::kError};
}

}  // namespace tsvpt
