// Minimal leveled logger.  The simulator libraries never print to stdout on
// their own (bench output must stay machine-parsable); diagnostics go through
// this sink, which tests can capture and benches can silence.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <sstream>
#include <string>

namespace tsvpt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] const char* to_string(LogLevel level);

/// "debug" / "info" / "warn" / "error" (case-insensitive; "warning" also
/// accepted).  nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(const std::string& text);

/// Process-wide logging configuration.  The level is an atomic so worker
/// threads can consult it while the CLI (or a test) flips it; sink swaps are
/// serialized against in-flight log() calls by an internal mutex.  The
/// startup level comes from the TSVPT_LOG environment variable when set
/// (kWarn otherwise); the default sink writes to stderr with a monotonic
/// timestamp so interleaved worker output can be ordered.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  /// Replace the output sink (default writes to stderr).
  void set_sink(Sink sink);

  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Sink sink_;
};

namespace detail {
/// Stream-style one-shot message builder: LogLine(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() {
  return detail::LogLine{LogLevel::kDebug};
}
inline detail::LogLine log_info() { return detail::LogLine{LogLevel::kInfo}; }
inline detail::LogLine log_warn() { return detail::LogLine{LogLevel::kWarn}; }
inline detail::LogLine log_error() {
  return detail::LogLine{LogLevel::kError};
}

}  // namespace tsvpt
