// ASCII table / CSV rendering for the benchmark harnesses.
//
// Every bench binary regenerates a paper table or figure series; this class
// gives them a uniform, diff-friendly output format (and a CSV sidecar for
// plotting).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace tsvpt {

/// A table cell: text or a number with per-column formatting.
using Cell = std::variant<std::string, double, long long>;

class Table {
 public:
  explicit Table(std::string title = {});

  /// Define columns, in order.  `precision` applies to double cells.
  void add_column(std::string header, int precision = 3);

  /// Append one row; must match the number of columns.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return headers_.size(); }

  /// Render as an aligned ASCII table.
  [[nodiscard]] std::string render() const;

  /// Render as CSV (RFC-4180-ish quoting for commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Print the ASCII rendering to a stream (and title, if any).
  void print(std::ostream& os) const;

  /// Write the CSV form to `path`; throws std::runtime_error on failure.
  void write_csv(const std::string& path) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& cell,
                                        std::size_t column) const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<int> precisions_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace tsvpt
