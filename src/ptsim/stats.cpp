#include "ptsim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace tsvpt {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }
double RunningStats::max_abs() const {
  return std::max(std::abs(min_), std::abs(max_));
}

Samples::Samples(std::vector<double> values) : values_(std::move(values)) {}

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Samples::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double Samples::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Samples::max_abs() const {
  return std::max(std::abs(min()), std::abs(max()));
}

double Samples::quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"quantile out of range"};
  ensure_sorted();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Samples::rms() const {
  if (values_.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values_) acc += v * v;
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument{"Histogram needs >= 1 bin"};
  if (!(hi > lo)) throw std::invalid_argument{"Histogram needs hi > lo"};
}

void Histogram::add(double x) {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"histogram bin"};
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"histogram bin"};
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        counts_[i] * max_bar_width / peak;
    os.setf(std::ios::fixed);
    os.precision(4);
    os << bin_center(i) << "\t" << counts_[i] << "\t"
       << std::string(bar, '#') << "\n";
  }
  return os.str();
}

LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument{"fit_line needs two equal-length series"};
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument{"fit_line: degenerate x"};
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  const double ymean = sy / n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ymean) * (y[i] - ymean);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double correlation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument{"correlation needs two equal-length series"};
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double num = 0.0;
  double dx2 = 0.0;
  double dy2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    dx2 += (x[i] - mx) * (x[i] - mx);
    dy2 += (y[i] - my) * (y[i] - my);
  }
  if (dx2 == 0.0 || dy2 == 0.0) return 0.0;
  return num / std::sqrt(dx2 * dy2);
}

}  // namespace tsvpt
