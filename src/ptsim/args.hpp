// Minimal command-line flag parser for the CLI tool (no external deps).
// Supports `--key value`, `--key=value` and bare positionals; typed access
// with defaults; unknown-flag detection.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsvpt {

class Args {
 public:
  /// Parse argv (excluding argv[0]).  Throws std::runtime_error on a flag
  /// with no value.
  Args(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] long long get(const std::string& key,
                              long long fallback) const;

  /// Throws std::runtime_error listing any flag not in `known`.
  void check_known(const std::set<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

inline Args::Args(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (i + 1 >= argc) {
      throw std::runtime_error{"flag --" + body + " needs a value"};
    }
    flags_[body] = argv[++i];
  }
}

inline bool Args::has(const std::string& key) const {
  return flags_.count(key) != 0;
}

inline std::string Args::get(const std::string& key,
                             const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

inline double Args::get(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(it->second, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != it->second.size()) {
    throw std::runtime_error{"flag --" + key + ": not a number: '" +
                             it->second + "'"};
  }
  return value;
}

inline long long Args::get(const std::string& key, long long fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  std::size_t consumed = 0;
  long long value = 0;
  try {
    value = std::stoll(it->second, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != it->second.size()) {
    throw std::runtime_error{"flag --" + key + ": not an integer: '" +
                             it->second + "'"};
  }
  return value;
}

inline void Args::check_known(const std::set<std::string>& known) const {
  for (const auto& [key, value] : flags_) {
    if (known.count(key) == 0) {
      throw std::runtime_error{"unknown flag --" + key};
    }
  }
}

}  // namespace tsvpt
