#include "ptsim/log.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace tsvpt {

namespace {

// Serializes sink invocation and replacement: worker threads log while the
// CLI may still be installing a capture sink in a test.
std::mutex& sink_mutex() {
  static std::mutex mutex;
  return mutex;
}

/// Seconds since the first log line (monotonic), so multi-threaded output
/// can be ordered and aligned with trace spans without wall-clock skew.
double uptime_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  std::transform(text.begin(), text.end(), std::back_inserter(lower),
                 [](unsigned char c) {
                   return static_cast<char>(std::tolower(c));
                 });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  if (const char* env = std::getenv("TSVPT_LOG")) {
    if (const auto level = parse_log_level(env)) level_ = *level;
  }
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%10.6f] [%s] %s\n", uptime_seconds(),
                 to_string(level), message.c_str());
  };
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock{sink_mutex()};
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock{sink_mutex()};
  if (sink_) sink_(level, message);
}

}  // namespace tsvpt
