#include "ptsim/log.hpp"

#include <iostream>

namespace tsvpt {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::cerr << "[" << to_string(level) << "] " << message << '\n';
  };
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (sink_) sink_(level, message);
}

}  // namespace tsvpt
