#include "circuit/supply.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsvpt::circuit {

VddMonitor::VddMonitor(Config config, std::uint64_t instance_seed)
    : config_(config) {
  if (config_.bits == 0 || config_.bits > 24) {
    throw std::invalid_argument{"VddMonitor: bits"};
  }
  if (!(config_.range_hi > config_.range_lo)) {
    throw std::invalid_argument{"VddMonitor: range"};
  }
  Rng rng{instance_seed};
  instance_gain_ = 1.0 + rng.gaussian(0.0, config_.gain_sigma);
  instance_offset_ = Volt{rng.gaussian(0.0, config_.offset_sigma.value())};
}

Volt VddMonitor::measure(Volt true_vdd, Rng* noise) const {
  double v = instance_gain_ * true_vdd.value() + instance_offset_.value();
  if (noise != nullptr) v += config_.noise_rms.value() * noise->gaussian();
  // Quantize over the monitor range.
  const double lo = config_.range_lo.value();
  const double hi = config_.range_hi.value();
  const double levels = static_cast<double>((1ULL << config_.bits) - 1);
  const double norm = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  const double code = std::round(norm * levels);
  return Volt{lo + code / levels * (hi - lo)};
}

}  // namespace tsvpt::circuit
