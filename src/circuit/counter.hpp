// Frequency-to-digital conversion: a ripple counter gated by a window derived
// from a reference clock.  Models the three real error sources of the scheme:
// quantization (±1 count), reference-frequency error (systematic ppm offset
// per instance), and window jitter (accumulated cycle jitter).
#pragma once

#include <cstdint>

#include "ptsim/rng.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::circuit {

/// The on-chip (or forwarded) reference clock that times the count window.
struct ReferenceClock {
  Hertz nominal{25e6};
  /// Per-instance systematic frequency error, parts-per-million.
  double systematic_ppm = 0.0;
  /// RMS window-edge jitter as ppm of the window length.
  double jitter_ppm_rms = 5.0;

  [[nodiscard]] Hertz actual() const {
    return Hertz{nominal.value() * (1.0 + systematic_ppm * 1e-6)};
  }
};

class FrequencyCounter {
 public:
  struct Config {
    ReferenceClock reference;
    /// Nominal gate window (realized as a whole number of ref cycles).
    Second window{2e-6};
    /// Counter width; overflow saturates and flags the reading.
    unsigned counter_bits = 16;
  };

  struct Reading {
    std::uint64_t count = 0;
    /// count / nominal_window — what the digital side believes it measured.
    Hertz measured{0.0};
    /// The physical window that actually elapsed (for diagnostics).
    Second actual_window{0.0};
    bool saturated = false;
  };

  explicit FrequencyCounter(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// Gate window as actually realized: a whole number of reference cycles.
  [[nodiscard]] Second nominal_window() const;
  [[nodiscard]] std::uint64_t reference_cycles() const { return ref_cycles_; }

  /// Frequency quantization step (LSB) of one reading.
  [[nodiscard]] Hertz resolution() const;

  /// Measure a signal of the given true frequency.  When `rng` is non-null,
  /// sampling phase and window jitter are randomized; with nullptr the
  /// measurement is the deterministic expected value (useful in tests).
  [[nodiscard]] Reading measure(Hertz true_frequency, Rng* rng = nullptr) const;

 private:
  Config config_;
  std::uint64_t ref_cycles_;
};

}  // namespace tsvpt::circuit
