// Behavioral ring-oscillator models.
//
// The sensor's oscillator bank needs members with linearly independent
// sensitivity vectors over (Vtn, Vtp, T).  Four topologies are modeled, each
// reduced to its stage pull-up / pull-down current:
//
//   kStandard       — plain inverter chain.  Balanced Vtn/Vtp sensitivity,
//                     mild negative tempco at nominal VDD (mobility-limited).
//   kNmosSensitive  — "PSRO-N": stacked-NMOS pull-down driven at reduced
//                     gate bias, strong PMOS pull-up.  Delay dominated by the
//                     low-overdrive NMOS path => steep ∂f/∂Vtn.
//   kPmosSensitive  — "PSRO-P": the complementary structure => steep ∂f/∂Vtp.
//   kThermal        — "TDRO": current-starved chain with near-threshold
//                     footer/header bias => strongly positive, monotone
//                     ∂f/∂T (subthreshold-exponential régime).
//
// Stage delay uses the switched-capacitance abstraction
//   t_phl = C V_DD / (2 I_pulldown),  t_plh = C V_DD / (2 I_pullup),
//   f     = 1 / (2 N (t_phl + t_plh) / 2),
// with currents from the EKV-style device model, so every topology inherits
// physically consistent Vt/temperature/supply behaviour.
#pragma once

#include <cstddef>
#include <string>

#include "circuit/operating_point.hpp"
#include "device/mosfet.hpp"
#include "device/tech.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::circuit {

enum class RoTopology { kStandard, kNmosSensitive, kPmosSensitive, kThermal };

[[nodiscard]] const char* to_string(RoTopology topology);

/// First-order sensitivity of log-frequency at an operating point.
struct RoSensitivity {
  /// d ln(f) / d Vtn, per volt.
  double dlnf_dvtn = 0.0;
  /// d ln(f) / d Vtp, per volt.
  double dlnf_dvtp = 0.0;
  /// d ln(f) / d T, per kelvin.
  double dlnf_dt = 0.0;
};

class RingOscillator {
 public:
  struct Config {
    RoTopology topology = RoTopology::kStandard;
    /// Number of inverting stages (odd).
    std::size_t stages = 31;
    /// Pull-down gate bias as a fraction of VDD, and series-stack divisor.
    double nmos_gate_fraction = 1.0;
    double nmos_stack = 1.0;
    /// Pull-up equivalents.
    double pmos_gate_fraction = 1.0;
    double pmos_stack = 1.0;
    /// Short-circuit/overhead multiplier on dynamic energy.
    double energy_overhead = 1.10;
  };

  RingOscillator(const device::Technology& tech, Config config);

  /// Factory with the tuned per-topology internals used by the sensor.
  [[nodiscard]] static RingOscillator make(const device::Technology& tech,
                                           RoTopology topology,
                                           std::size_t stages = 0);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] RoTopology topology() const { return config_.topology; }

  /// Oscillation frequency at the operating point (noise-free).
  [[nodiscard]] Hertz frequency(const OperatingPoint& op) const;

  /// Dynamic energy dissipated per full output period.
  [[nodiscard]] Joule energy_per_cycle(Volt vdd) const;

  /// Average power while running at the operating point.
  [[nodiscard]] Watt power(const OperatingPoint& op) const;

  /// Leakage power of the chain when gated off.
  [[nodiscard]] Watt leakage_power(const OperatingPoint& op) const;

  /// Numerical log-frequency sensitivities at the operating point.
  [[nodiscard]] RoSensitivity sensitivity(const OperatingPoint& op) const;

 private:
  [[nodiscard]] Second stage_delay(const OperatingPoint& op) const;

  const device::Technology* tech_;
  device::Mosfet nmos_;
  device::Mosfet pmos_;
  Config config_;
};

}  // namespace tsvpt::circuit
