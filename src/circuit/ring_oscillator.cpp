#include "circuit/ring_oscillator.hpp"

#include <cmath>
#include <stdexcept>

namespace tsvpt::circuit {

const char* to_string(RoTopology topology) {
  switch (topology) {
    case RoTopology::kStandard:
      return "STDRO";
    case RoTopology::kNmosSensitive:
      return "PSRO-N";
    case RoTopology::kPmosSensitive:
      return "PSRO-P";
    case RoTopology::kThermal:
      return "TDRO";
  }
  return "?";
}

RingOscillator::RingOscillator(const device::Technology& tech, Config config)
    : tech_(&tech), nmos_(tech, device::TransistorKind::kNmos),
      pmos_(tech, device::TransistorKind::kPmos), config_(config) {
  if (config_.stages < 3 || config_.stages % 2 == 0) {
    throw std::invalid_argument{"RingOscillator: stages must be odd and >= 3"};
  }
  if (config_.nmos_stack < 1.0 || config_.pmos_stack < 1.0) {
    throw std::invalid_argument{"RingOscillator: stack divisor < 1"};
  }
}

RingOscillator RingOscillator::make(const device::Technology& tech,
                                    RoTopology topology, std::size_t stages) {
  Config cfg;
  cfg.topology = topology;
  switch (topology) {
    case RoTopology::kStandard:
      cfg.stages = stages != 0 ? stages : 31;
      break;
    case RoTopology::kNmosSensitive:
      // Stacked, under-driven pull-down: overdrive ~ 0.16 V at nominal, so
      // a 1 mV Vtn shift moves the stage current by ~1 %.
      cfg.stages = stages != 0 ? stages : 31;
      cfg.nmos_gate_fraction = 0.58;
      cfg.nmos_stack = 2.0;
      break;
    case RoTopology::kPmosSensitive:
      cfg.stages = stages != 0 ? stages : 31;
      cfg.pmos_gate_fraction = 0.56;
      cfg.pmos_stack = 2.0;
      break;
    case RoTopology::kThermal:
      // Near-threshold starved chain: footer/header biased a hair above
      // |Vt0|, putting the stage current in the exponential régime.
      cfg.stages = stages != 0 ? stages : 15;
      cfg.nmos_gate_fraction = 0.45;
      cfg.pmos_gate_fraction = 0.45;
      cfg.nmos_stack = 1.0;
      cfg.pmos_stack = 1.0;
      cfg.energy_overhead = 1.0;  // current-limited edges: no crowbar
      break;
  }
  return RingOscillator{tech, cfg};
}

Second RingOscillator::stage_delay(const OperatingPoint& op) const {
  if (op.vdd.value() <= 0.0) {
    throw std::invalid_argument{"RingOscillator: vdd <= 0"};
  }
  const double c = tech_->stage_cap.value();
  const double vdd = op.vdd.value();

  const Volt vgs_n{vdd * config_.nmos_gate_fraction};
  const Volt vgs_p{vdd * config_.pmos_gate_fraction};
  const double i_dn =
      nmos_.id_sat(vgs_n, op.temperature, op.vt_delta.nmos).value() /
      config_.nmos_stack;
  const double i_dp =
      pmos_.id_sat(vgs_p, op.temperature, op.vt_delta.pmos).value() /
      config_.pmos_stack;
  if (i_dn <= 0.0 || i_dp <= 0.0) {
    throw std::runtime_error{"RingOscillator: non-positive drive current"};
  }
  const double t_phl = c * vdd / (2.0 * i_dn);
  const double t_plh = c * vdd / (2.0 * i_dp);
  return Second{0.5 * (t_phl + t_plh)};
}

Hertz RingOscillator::frequency(const OperatingPoint& op) const {
  const double tpd = stage_delay(op).value();
  return Hertz{1.0 / (2.0 * static_cast<double>(config_.stages) * tpd)};
}

Joule RingOscillator::energy_per_cycle(Volt vdd) const {
  // Every stage charges and discharges C once per output period.
  const double c = tech_->stage_cap.value();
  const double v = vdd.value();
  return Joule{config_.energy_overhead * static_cast<double>(config_.stages) *
               c * v * v};
}

Watt RingOscillator::power(const OperatingPoint& op) const {
  return Watt{energy_per_cycle(op.vdd).value() * frequency(op).value()};
}

Watt RingOscillator::leakage_power(const OperatingPoint& op) const {
  // One leaking device per stage (the off transistor), at full VDD.
  const double i_leak_n =
      nmos_.leakage(op.vdd, op.temperature, op.vt_delta.nmos).value();
  const double i_leak_p =
      pmos_.leakage(op.vdd, op.temperature, op.vt_delta.pmos).value();
  return Watt{0.5 * static_cast<double>(config_.stages) *
              (i_leak_n + i_leak_p) * op.vdd.value()};
}

RoSensitivity RingOscillator::sensitivity(const OperatingPoint& op) const {
  RoSensitivity s;
  const double f0 = frequency(op).value();
  constexpr double kVtStep = 0.5e-3;  // 0.5 mV
  constexpr double kTStep = 0.1;      // 0.1 K

  {
    OperatingPoint hi = op;
    OperatingPoint lo = op;
    hi.vt_delta.nmos += Volt{kVtStep};
    lo.vt_delta.nmos -= Volt{kVtStep};
    s.dlnf_dvtn = (frequency(hi).value() - frequency(lo).value()) /
                  (2.0 * kVtStep * f0);
  }
  {
    OperatingPoint hi = op;
    OperatingPoint lo = op;
    hi.vt_delta.pmos += Volt{kVtStep};
    lo.vt_delta.pmos -= Volt{kVtStep};
    s.dlnf_dvtp = (frequency(hi).value() - frequency(lo).value()) /
                  (2.0 * kVtStep * f0);
  }
  {
    const OperatingPoint hi =
        op.with_temperature(op.temperature + Kelvin{kTStep});
    const OperatingPoint lo =
        op.with_temperature(op.temperature - Kelvin{kTStep});
    s.dlnf_dt = (frequency(hi).value() - frequency(lo).value()) /
                (2.0 * kTStep * f0);
  }
  return s;
}

}  // namespace tsvpt::circuit
