// Energy accounting for one sensor conversion.
//
// A conversion runs each enabled oscillator for one count window and then
// executes the digital decoupling/readout step.  Components:
//   * oscillator dynamic energy: E_cycle(VDD) x cycles counted,
//   * counter energy: per-increment switching of the ripple counter,
//   * digital/control energy: FSM, bias DAC settle, decoupling arithmetic,
//     readout latching — a fixed cost per conversion,
//   * bias/static power integrated over the active time.
//
// The fixed digital cost is the one free parameter, calibrated so that the
// default sensor configuration lands on the paper's 367.5 pJ/conversion
// headline; the *scaling behaviour* (linear in window length, per-RO
// breakdown) is model-driven and is what bench T1 reproduces.
#pragma once

#include <cstdint>

#include "ptsim/units.hpp"

namespace tsvpt::circuit {

struct ConversionEnergyParams {
  /// Energy per counter increment (flip-flop cascade average toggles).
  Joule per_count{20e-15};
  /// Fixed digital cost per conversion (control FSM + decoupling math).
  /// Calibrated so the default full conversion totals the paper's
  /// 367.5 pJ/conversion headline at 25 degC nominal (see EXPERIMENTS.md).
  Joule control_fixed{235.7e-12};
  /// Bias network static power while the conversion is active.
  Watt bias_static{2e-6};
};

struct ConversionEnergyBreakdown {
  Joule oscillators{0.0};
  Joule counters{0.0};
  Joule control{0.0};
  Joule bias{0.0};

  [[nodiscard]] Joule total() const {
    return oscillators + counters + control + bias;
  }
};

class ConversionEnergyModel {
 public:
  ConversionEnergyModel() = default;
  explicit ConversionEnergyModel(ConversionEnergyParams params)
      : params_(params) {}

  [[nodiscard]] const ConversionEnergyParams& params() const {
    return params_;
  }

  /// Begin a conversion's accounting.
  void reset() {
    breakdown_ = {};
    auxiliary_ = Joule{0.0};
    active_time_ = Second{0.0};
  }

  /// Record one oscillator's window: its dynamic energy and counts.
  void add_oscillator_window(Joule energy_per_cycle, std::uint64_t cycles,
                             Second window);

  /// Record an auxiliary block's fixed cost (e.g. a VDD-monitor sample);
  /// reported under the control component.
  void add_auxiliary(Joule energy) { auxiliary_ += energy; }

  /// Finalize: adds the fixed control cost and integrated bias power.
  [[nodiscard]] ConversionEnergyBreakdown finish();

 private:
  ConversionEnergyParams params_;
  ConversionEnergyBreakdown breakdown_;
  Joule auxiliary_{0.0};
  Second active_time_{0.0};
};

}  // namespace tsvpt::circuit
