#include "circuit/counter.hpp"

#include <cmath>
#include <stdexcept>

namespace tsvpt::circuit {

FrequencyCounter::FrequencyCounter(Config config) : config_(config) {
  if (config_.window.value() <= 0.0) {
    throw std::invalid_argument{"FrequencyCounter: window <= 0"};
  }
  if (config_.reference.nominal.value() <= 0.0) {
    throw std::invalid_argument{"FrequencyCounter: reference <= 0"};
  }
  if (config_.counter_bits == 0 || config_.counter_bits > 63) {
    throw std::invalid_argument{"FrequencyCounter: counter_bits"};
  }
  ref_cycles_ = static_cast<std::uint64_t>(std::llround(
      config_.window.value() * config_.reference.nominal.value()));
  if (ref_cycles_ == 0) {
    throw std::invalid_argument{
        "FrequencyCounter: window shorter than one reference cycle"};
  }
}

Second FrequencyCounter::nominal_window() const {
  return Second{static_cast<double>(ref_cycles_) /
                config_.reference.nominal.value()};
}

Hertz FrequencyCounter::resolution() const {
  return Hertz{1.0 / nominal_window().value()};
}

FrequencyCounter::Reading FrequencyCounter::measure(Hertz true_frequency,
                                                    Rng* rng) const {
  if (true_frequency.value() < 0.0) {
    throw std::invalid_argument{"FrequencyCounter: negative frequency"};
  }
  // Physical window: ref_cycles of the *actual* reference, plus edge jitter.
  double window = static_cast<double>(ref_cycles_) /
                  config_.reference.actual().value();
  if (rng != nullptr) {
    window += window * 1e-6 * config_.reference.jitter_ppm_rms *
              rng->gaussian();
  }
  window = std::max(window, 0.0);

  // Edges captured in the window; the sampling phase adds the fractional
  // uncertainty that makes quantization ±1 count rather than a fixed floor.
  const double edges = true_frequency.value() * window;
  const double phase = rng != nullptr ? rng->uniform() : 0.5;
  auto count = static_cast<std::uint64_t>(std::floor(edges + phase));

  Reading reading;
  const std::uint64_t max_count =
      (1ULL << config_.counter_bits) - 1;
  if (count > max_count) {
    count = max_count;
    reading.saturated = true;
  }
  reading.count = count;
  reading.actual_window = Second{window};
  reading.measured =
      Hertz{static_cast<double>(count) / nominal_window().value()};
  return reading;
}

}  // namespace tsvpt::circuit
