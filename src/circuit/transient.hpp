// Transistor-level transient simulation of a ring oscillator.
//
// The sensor library computes RO frequency from the analytic switched-
// capacitance abstraction f = 1 / (2 N tpd) with tpd from saturation
// currents.  This module validates that abstraction: it integrates the
// actual circuit ODE
//
//   C dV_i/dt = I_up(V_{i-1}, V_i) - I_down(V_{i-1}, V_i)
//
// stage by stage, using the *same* EKV device model, and measures the
// oscillation period from threshold crossings.  The `transient_validation`
// tests pin the analytic model to the simulated circuit within a fixed
// band across temperature, Vt shift, supply and topology — so every
// higher-level result is traceable to circuit behaviour, not just to the
// shortcut formula.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/operating_point.hpp"
#include "circuit/ring_oscillator.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::circuit {

struct TransientResult {
  Hertz frequency{0.0};
  /// Full periods actually measured (after settling).
  std::size_t periods_measured = 0;
  /// True when the chain oscillated and enough periods were captured.
  bool valid = false;
};

class TransientRoSimulator {
 public:
  struct Options {
    /// Integration step as a fraction of the analytic stage delay.
    double step_fraction = 0.02;
    /// Periods to discard (start-up) and to average.
    std::size_t settle_periods = 3;
    std::size_t measure_periods = 8;
    /// Hard cap on integration steps.
    std::size_t max_steps = 2000000;
  };

  /// Simulate `ro` at the operating point and measure its frequency.
  [[nodiscard]] static TransientResult simulate(const RingOscillator& ro,
                                                const device::Technology& tech,
                                                const OperatingPoint& op,
                                                const Options& options);
  [[nodiscard]] static TransientResult simulate(const RingOscillator& ro,
                                                const device::Technology& tech,
                                                const OperatingPoint& op) {
    return simulate(ro, tech, op, Options{});
  }

  /// Convenience: relative deviation (f_transient / f_analytic - 1).
  [[nodiscard]] static double relative_deviation(
      const RingOscillator& ro, const device::Technology& tech,
      const OperatingPoint& op, const Options& options);
  [[nodiscard]] static double relative_deviation(
      const RingOscillator& ro, const device::Technology& tech,
      const OperatingPoint& op) {
    return relative_deviation(ro, tech, op, Options{});
  }
};

}  // namespace tsvpt::circuit
