// Supply-rail model: systematic IR droop plus random high-frequency noise.
// Ring-oscillator sensors are notoriously supply-sensitive; the A4 ablation
// bench quantifies how much accuracy survives a dirty rail, and the
// ratio-metric reading mode in the core sensor mitigates it.
#pragma once

#include "ptsim/rng.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::circuit {

class SupplyRail {
 public:
  struct Config {
    Volt nominal{1.0};
    /// Static IR droop at this point of the grid (subtracted from nominal).
    Volt droop{0.0};
    /// RMS random noise seen averaged over one count window.
    Volt noise_rms{0.0};
  };

  SupplyRail() = default;
  explicit SupplyRail(Config config) : config_(config) {}

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Volt nominal() const { return config_.nominal; }

  /// Effective rail voltage for one measurement; deterministic when rng is
  /// null (droop only).
  [[nodiscard]] Volt effective(Rng* rng = nullptr) const {
    double v = config_.nominal.value() - config_.droop.value();
    if (rng != nullptr && config_.noise_rms.value() > 0.0) {
      v += config_.noise_rms.value() * rng->gaussian();
    }
    return Volt{v};
  }

 private:
  Config config_;
};

/// On-chip supply-voltage monitor: a small ADC-like block that reports the
/// local rail with per-instance gain/offset error plus sampling noise and
/// quantization.  Used by the sensor's supply-compensated mode — solving for
/// VDD as an extra unknown of the oscillator bank is ill-conditioned (a rail
/// change is nearly collinear with a (dVtn, dVtp, T) combination), so a
/// direct measurement is required, exactly as in PVT-sensor practice.
class VddMonitor {
 public:
  struct Config {
    /// Per-instance gain error sigma (relative) and offset sigma.
    double gain_sigma = 0.2e-2;
    Volt offset_sigma{1.5e-3};
    /// Per-sample noise.
    Volt noise_rms{0.5e-3};
    /// Quantizer: codes span [lo, hi].
    unsigned bits = 10;
    Volt range_lo{0.6};
    Volt range_hi{1.4};
    /// Energy per sample (sampling network + SAR).
    Joule sample_energy{18e-12};
  };

  VddMonitor(Config config, std::uint64_t instance_seed);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Joule sample_energy() const { return config_.sample_energy; }

  /// One sample of the true rail voltage.
  [[nodiscard]] Volt measure(Volt true_vdd, Rng* noise) const;

 private:
  Config config_;
  double instance_gain_ = 1.0;
  Volt instance_offset_{0.0};
};

}  // namespace tsvpt::circuit
