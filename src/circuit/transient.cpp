#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "device/mosfet.hpp"

namespace tsvpt::circuit {
namespace {

/// Per-stage drive evaluation mirroring the analytic model's topology
/// abstraction: the pull-down NMOS gate rides the stage input but is
/// ceiling-limited by the bias fraction (stacked/starved structures), and
/// the stack divisor scales the current; complementary for the pull-up.
class StageModel {
 public:
  StageModel(const device::Technology& tech,
             const RingOscillator::Config& cfg)
      : nmos_(tech, device::TransistorKind::kNmos),
        pmos_(tech, device::TransistorKind::kPmos), cfg_(cfg) {}

  [[nodiscard]] double pulldown_current(double vin, double vout, double vdd,
                                        Kelvin t,
                                        device::VtDelta dvt) const {
    const double vgs = std::min(vin, cfg_.nmos_gate_fraction * vdd);
    if (vgs <= 0.0 || vout <= 0.0) return 0.0;
    return nmos_.id(Volt{vgs}, Volt{vout}, t, dvt.nmos).value() /
           cfg_.nmos_stack;
  }

  [[nodiscard]] double pullup_current(double vin, double vout, double vdd,
                                      Kelvin t, device::VtDelta dvt) const {
    const double vsg = std::min(vdd - vin, cfg_.pmos_gate_fraction * vdd);
    const double vsd = vdd - vout;
    if (vsg <= 0.0 || vsd <= 0.0) return 0.0;
    return pmos_.id(Volt{vsg}, Volt{vsd}, t, dvt.pmos).value() /
           cfg_.pmos_stack;
  }

 private:
  device::Mosfet nmos_;
  device::Mosfet pmos_;
  RingOscillator::Config cfg_;
};

}  // namespace

TransientResult TransientRoSimulator::simulate(const RingOscillator& ro,
                                               const device::Technology& tech,
                                               const OperatingPoint& op,
                                               const Options& options) {
  if (options.step_fraction <= 0.0 || options.step_fraction > 0.5) {
    throw std::invalid_argument{"TransientRoSimulator: step fraction"};
  }
  const std::size_t stages = ro.config().stages;
  const double vdd = op.vdd.value();
  const double c = tech.stage_cap.value();
  const StageModel stage{tech, ro.config()};

  // Integration step scaled from the analytic estimate.
  const double tpd_estimate =
      1.0 / (2.0 * static_cast<double>(stages) * ro.frequency(op).value());
  const double dt = options.step_fraction * tpd_estimate;

  // Initial condition: alternating rails (odd chain cannot satisfy it, so
  // the contradiction at the wrap seeds the oscillation).
  std::vector<double> v(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    v[i] = (i % 2 == 0) ? 0.0 : vdd;
  }

  const double threshold = 0.5 * vdd;
  std::vector<double> crossing_times;
  crossing_times.reserve(options.settle_periods + options.measure_periods +
                         2);
  double prev_v0 = v[0];
  std::vector<double> dv(stages);

  const std::size_t needed =
      options.settle_periods + options.measure_periods + 1;
  double time = 0.0;
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    // Heun (RK2) integration of the coupled chain.
    auto derivative = [&](const std::vector<double>& state,
                          std::vector<double>& out) {
      for (std::size_t i = 0; i < stages; ++i) {
        const double vin = state[(i + stages - 1) % stages];
        const double vout = state[i];
        const double i_up =
            stage.pullup_current(vin, vout, vdd, op.temperature, op.vt_delta);
        const double i_down = stage.pulldown_current(vin, vout, vdd,
                                                     op.temperature,
                                                     op.vt_delta);
        out[i] = (i_up - i_down) / c;
      }
    };
    static thread_local std::vector<double> k1;
    static thread_local std::vector<double> mid;
    static thread_local std::vector<double> k2;
    k1.assign(stages, 0.0);
    mid.assign(stages, 0.0);
    k2.assign(stages, 0.0);
    derivative(v, k1);
    for (std::size_t i = 0; i < stages; ++i) {
      mid[i] = std::clamp(v[i] + dt * k1[i], 0.0, vdd);
    }
    derivative(mid, k2);
    for (std::size_t i = 0; i < stages; ++i) {
      v[i] = std::clamp(v[i] + 0.5 * dt * (k1[i] + k2[i]), 0.0, vdd);
    }
    time += dt;

    // Rising-edge detection on node 0 with linear interpolation.
    if (prev_v0 < threshold && v[0] >= threshold) {
      const double frac = (threshold - prev_v0) / (v[0] - prev_v0);
      crossing_times.push_back(time - dt + frac * dt);
      if (crossing_times.size() >= needed) break;
    }
    prev_v0 = v[0];
  }

  TransientResult result;
  if (crossing_times.size() < needed) return result;  // did not oscillate
  const std::size_t first = options.settle_periods;
  const double span = crossing_times.back() - crossing_times[first];
  const auto periods = crossing_times.size() - 1 - first;
  result.periods_measured = periods;
  result.frequency = Hertz{static_cast<double>(periods) / span};
  result.valid = true;
  return result;
}

double TransientRoSimulator::relative_deviation(const RingOscillator& ro,
                                                const device::Technology& tech,
                                                const OperatingPoint& op,
                                                const Options& options) {
  const TransientResult result = simulate(ro, tech, op, options);
  if (!result.valid) {
    throw std::runtime_error{"transient simulation did not oscillate"};
  }
  return result.frequency.value() / ro.frequency(op).value() - 1.0;
}

}  // namespace tsvpt::circuit
