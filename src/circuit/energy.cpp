#include "circuit/energy.hpp"

namespace tsvpt::circuit {

void ConversionEnergyModel::add_oscillator_window(Joule energy_per_cycle,
                                                  std::uint64_t cycles,
                                                  Second window) {
  breakdown_.oscillators +=
      Joule{energy_per_cycle.value() * static_cast<double>(cycles)};
  breakdown_.counters +=
      Joule{params_.per_count.value() * static_cast<double>(cycles)};
  active_time_ += window;
}

ConversionEnergyBreakdown ConversionEnergyModel::finish() {
  breakdown_.control = params_.control_fixed + auxiliary_;
  breakdown_.bias = params_.bias_static * active_time_;
  return breakdown_;
}

}  // namespace tsvpt::circuit
