// The electrical/thermal condition a circuit block is evaluated at.
#pragma once

#include "device/mosfet.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::circuit {

struct OperatingPoint {
  Volt vdd{1.0};
  Kelvin temperature{300.0};
  /// Local threshold deviation (D2D + WID + stress) at the block's location.
  device::VtDelta vt_delta;

  [[nodiscard]] OperatingPoint with_temperature(Kelvin t) const {
    OperatingPoint op = *this;
    op.temperature = t;
    return op;
  }
  [[nodiscard]] OperatingPoint with_vdd(Volt v) const {
    OperatingPoint op = *this;
    op.vdd = v;
    return op;
  }
  [[nodiscard]] OperatingPoint with_vt_delta(device::VtDelta d) const {
    OperatingPoint op = *this;
    op.vt_delta = d;
    return op;
  }
};

}  // namespace tsvpt::circuit
