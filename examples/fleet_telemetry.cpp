// Fleet telemetry: the full pipeline on a small fleet.  Eight independent
// 4-die stacks are sampled concurrently by a worker pool; every scan is
// encoded as a CRC-protected wire frame, published through a lock-free
// ring, and drained by the aggregator's collector thread, which maintains
// per-die rolling statistics and fires alerts through a callback.
//
//   $ ./examples/fleet_telemetry
#include <atomic>
#include <cstdio>

#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

int main() {
  using namespace tsvpt;

  telemetry::FleetSampler::Config fleet;
  fleet.stack_count = 8;
  fleet.thread_count = 4;
  fleet.scans_per_stack = 30;
  fleet.seed = 2026;

  telemetry::Aggregator::Config alerts;
  // Low threshold so the demo's burst workload actually trips it.
  alerts.alert_threshold = Celsius{31.0};

  std::atomic<int> alert_count{0};
  telemetry::Aggregator aggregator{
      alerts, [&](const telemetry::Alert& alert) {
        // Runs on the collector thread: keep it cheap.
        alert_count.fetch_add(1, std::memory_order_relaxed);
        std::printf("ALERT %-16s stack %2u die %zu site %2zu  %8.2f  "
                    "(t=%.1f ms)\n",
                    telemetry::to_string(alert.kind), alert.stack_id,
                    alert.die, alert.site_index, alert.value,
                    alert.sim_time.value() * 1e3);
      }};

  telemetry::FleetSampler sampler{fleet};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();

  const auto& sum = aggregator.summary();
  std::printf("\n%zu stacks, %zu workers: %llu frames in %.3f s "
              "(%.0f frames/s), %llu dropped, %llu decode errors\n",
              sampler.stack_count(), sampler.worker_count(),
              static_cast<unsigned long long>(sampler.total_frames()),
              sampler.elapsed().value(),
              static_cast<double>(sampler.total_frames()) /
                  sampler.elapsed().value(),
              static_cast<unsigned long long>(sampler.total_dropped()),
              static_cast<unsigned long long>(sum.decode_errors));
  std::printf("%d alerts delivered through the callback\n\n",
              alert_count.load(std::memory_order_relaxed));

  for (const auto& [stack_id, stats] : sum.stacks) {
    std::printf("stack %2u: %3llu frames", stack_id,
                static_cast<unsigned long long>(stats.frames));
    for (const auto& [die, die_stats] : stats.dies) {
      std::printf("  die%zu %5.1f C (err 3s %.2f)", die,
                  die_stats.sensed_c.mean(),
                  3.0 * die_stats.error_c.stddev());
    }
    std::printf("\n");
  }
  return 0;
}
