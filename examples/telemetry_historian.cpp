// The telemetry historian, end to end: record a fleet run to disk, crash
// mid-write, recover, and replay — the workflow the store exists for.
//
// Act 1 records a fleet capture through a StoreWriter sink, then simulates
// a crash by tearing bytes off the newest segment's tail (exactly what a
// SIGKILL between write() and fsync() leaves behind).  Act 2 reopens the
// store: the writer truncates the torn tail and appends a second capture
// after it.  Act 3 queries a time window, then replays the whole store
// through a fresh Aggregator — the same ingest path live collection uses —
// and shows the recovered prefix analyzing identically to a live run.
//
//   $ ./examples/telemetry_historian
#include <cstdio>
#include <filesystem>
#include <vector>

#include "store/store.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

namespace {

// One deterministic fleet capture recorded straight into `writer`.
void record_fleet(tsvpt::store::StoreWriter& writer, std::uint64_t seed) {
  tsvpt::telemetry::FleetSampler::Config cfg;
  cfg.stack_count = 4;
  cfg.scans_per_stack = 50;
  cfg.seed = seed;
  cfg.sink = &writer;
  tsvpt::telemetry::FleetSampler sampler{cfg};
  sampler.run();
}

}  // namespace

int main() {
  using namespace tsvpt;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "tsvpt_historian_example")
          .string();
  std::filesystem::remove_all(dir);

  // --- Act 1: record, then crash mid-write. -------------------------------
  {
    store::StoreWriter writer{dir};
    record_fleet(writer, /*seed=*/21);
    writer.flush();
    // A real crash would just drop the process here; the destructor runs in
    // this example, so tear the tail by hand to leave the same wreckage.
  }
  const std::string segment = store::list_segment_files(dir).back();
  std::vector<std::uint8_t> bytes;
  if (!store::read_file(segment, bytes)) return 1;
  std::filesystem::resize_file(segment, bytes.size() - 37);
  std::printf("recorded %zu bytes, then tore 37 off the tail (a crash)\n",
              bytes.size());

  // --- Act 2: reopen — recovery truncates the torn block, appending
  // resumes, and a second capture lands after the survivors. ---------------
  {
    store::StoreWriter writer{dir};
    const store::StoreStats before = writer.stats();
    std::printf("reopened: %llu torn tail truncated, %llu frames intact\n",
                static_cast<unsigned long long>(before.torn_tail_recoveries),
                static_cast<unsigned long long>(before.frames));
    record_fleet(writer, /*seed=*/22);
    writer.close();
  }

  // --- Act 3: query a window, replay everything. --------------------------
  const store::StoreReader reader{dir};
  const store::StoreStats stats = reader.stats();
  std::printf("store: %zu segment(s), %zu blocks, %llu frames, "
              "%.2fx compression, %llu corrupt\n",
              stats.segments, stats.blocks,
              static_cast<unsigned long long>(stats.frames),
              stats.compression_ratio(),
              static_cast<unsigned long long>(reader.verify()));

  store::StoreReader::Query window;
  window.t_min = 0.010;
  window.t_max = 0.020;
  window.stack_ids = {2};
  const auto frames = reader.query(window);
  std::printf("query stack 2, t in [10ms, 20ms]: %zu frames\n",
              frames.size());

  telemetry::Aggregator aggregator{telemetry::Aggregator::Config{}};
  const auto replayed = reader.replay({}, aggregator);
  const auto& sum = aggregator.summary();
  std::printf("replay: %llu frames through the live ingest path, "
              "%llu decode errors, %llu alerts\n",
              static_cast<unsigned long long>(replayed.frames_replayed),
              static_cast<unsigned long long>(sum.decode_errors),
              static_cast<unsigned long long>(sum.alerts));

  std::filesystem::remove_all(dir);
  return (replayed.corrupt_blocks == 0 && sum.decode_errors == 0) ? 0 : 1;
}
