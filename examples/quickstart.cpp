// Quickstart: build a PT sensor, drop it on a die with process variation,
// self-calibrate once at power-on, then read temperature and the extracted
// process point.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/pt_sensor.hpp"
#include "process/variation.hpp"

int main() {
  using namespace tsvpt;

  // 1. The technology card (a behavioral TSMC-65nm-like model).
  const device::Technology tech = device::Technology::tsmc65_like();

  // 2. Draw a die from the statistical process: this is the (unknown to the
  //    sensor) threshold-voltage deviation the sensor must extract.
  process::VariationModel variation{tech, {process::Point{2.5e-3, 2.5e-3}}};
  Rng rng{2026};
  const process::DieVariation die = variation.sample_die(rng);
  const device::VtDelta truth = die.at(0);

  // 3. Instantiate the sensor macro.  The seed individualizes the instance
  //    (its internal device mismatch), exactly like a physical chip.
  core::PtSensor sensor{core::PtSensor::Config{}, /*instance_seed=*/1};

  // 4. The physical environment: 63.2 degC junction, the die's deviation.
  core::DieEnvironment env;
  env.temperature = to_kelvin(Celsius{63.2});
  env.vt_delta = truth;

  // 5. One full self-calibrating conversion: measures the three ring
  //    oscillators and decouples (dVtn, dVtp, T) — no external references.
  const auto estimate = sensor.self_calibrate(env, &rng);
  std::cout << "self-calibration (" << (estimate.converged ? "converged" : "FAILED")
            << " in " << estimate.iterations << " Newton iterations)\n"
            << "  dVtn: estimated " << estimate.dvtn.value() * 1e3
            << " mV, true " << truth.nmos.value() * 1e3 << " mV\n"
            << "  dVtp: estimated " << estimate.dvtp.value() * 1e3
            << " mV, true " << truth.pmos.value() * 1e3 << " mV\n"
            << "  T:    estimated " << to_celsius(estimate.temperature).value()
            << " degC, true 63.2 degC\n"
            << "  energy: " << estimate.energy.value() * 1e12
            << " pJ for the full conversion\n\n";

  // 6. Cheap tracking conversions follow the temperature using the latched
  //    process point (TDRO window only).
  std::cout << "tracking reads:\n";
  for (double t : {20.0, 45.0, 85.0}) {
    const auto reading = sensor.read(env.at_celsius(Celsius{t}), &rng);
    std::cout << "  true " << t << " degC -> sensed "
              << reading.temperature.value() << " degC  ("
              << reading.energy.value() * 1e12 << " pJ)\n";
  }
  return 0;
}
