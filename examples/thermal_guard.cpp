// Thermal guard: closed-loop thermal management driven by the sensor
// network.  A hot workload pushes the stack past its limit; the guard
// throttles power when any *sensed* temperature crosses the trip point.
// Runs the same scenario unguarded, guarded-by-PT-sensor, and guarded by a
// deliberately miscalibrated monitor, to show what sensing accuracy buys.
//
//   $ ./examples/thermal_guard
#include <iostream>

#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "sim/thermal_guard.hpp"
#include "thermal/workload.hpp"

namespace {

using namespace tsvpt;

std::vector<core::SensorSite> build_sites(const thermal::StackConfig& stack,
                                          Volt extra_shift) {
  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(stack, 2, 2);
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < 4; ++i) points.push_back(sites[i].location);
  process::VariationModel variation{device::Technology::tsmc65_like(), points};
  Rng rng{11};
  for (std::size_t d = 0; d < stack.die_count(); ++d) {
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) {
      device::VtDelta delta = die.at(i);
      delta.nmos += extra_shift;
      delta.pmos += extra_shift;
      sites[d * 4 + i].vt_delta = delta;
    }
  }
  return sites;
}

}  // namespace

int main() {
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();
  const thermal::Workload hot = thermal::Workload::burst_idle(
      stack, Watt{16.0}, Watt{1.0}, Second{60e-3}, 3);

  sim::ThermalGuard::Config guard_cfg;
  guard_cfg.throttle_on = Celsius{70.0};
  guard_cfg.throttle_off = Celsius{62.0};
  guard_cfg.throttle_factor = 0.25;
  guard_cfg.sample_period = Second{2e-3};
  guard_cfg.thermal_step = Second{0.5e-3};
  const sim::ThermalGuard guard{guard_cfg};

  struct Scenario {
    const char* name;
    bool enabled;
    Volt sensor_skew;  // extra uncorrected shift injected into sensor sites
    bool calibrated;
  };
  const Scenario scenarios[] = {
      {"unguarded", false, Volt{0.0}, true},
      {"guarded, self-calibrated PT sensors", true, Volt{0.0}, true},
      {"guarded, sensors read through typical model (no self-cal)", true,
       Volt{0.0}, false},
  };

  std::cout << "trip point " << guard_cfg.throttle_on.value()
            << " degC; peak power " << 16.0 << " W bursts\n\n";
  for (const Scenario& s : scenarios) {
    thermal::ThermalNetwork network{stack};
    std::vector<core::SensorSite> sites = build_sites(stack, s.sensor_skew);
    core::PtSensor::Config cfg;
    if (!s.calibrated) {
      // Emulate a never-calibrated monitor: zero out its knowledge of the
      // die by inflating the mismatch it cannot correct.
      cfg.ro_mismatch_sigma = Volt{12e-3};  // ~ die-level scatter left in
    }
    core::StackMonitor monitor{&network, cfg, sites, 21};
    const auto result =
        guard.run(network, hot, monitor, Second{180e-3}, 33, s.enabled);
    std::cout << s.name << ":\n"
              << "  max true " << result.max_true.value() << " degC, max sensed "
              << result.max_sensed.value() << " degC\n"
              << "  over-limit integral " << result.overshoot_integral
              << " degC*s, throttled " << 100.0 * result.throttled_fraction
              << "% of samples (" << result.throttle_events << " trip events)\n\n";
  }

  std::cout << "Takeaway: the guard only works as well as its sensors — the\n"
               "self-calibrated monitor trips on time; an uncalibrated one\n"
               "mis-times the trip and either overshoots or over-throttles.\n";
  return 0;
}
