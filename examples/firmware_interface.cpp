// Firmware-style integration: talk to the sensor macro the way an SoC
// driver would — through the command/status/result register map, polling
// BUSY, decoding fixed-point registers — while the die's physical state
// changes underneath.
//
//   $ ./examples/firmware_interface
#include <cstdio>

#include "core/controller.hpp"
#include "process/variation.hpp"

int main() {
  using namespace tsvpt;
  using core::Register;
  using Command = core::SensorController::Command;

  // The die this macro happens to live on.
  process::VariationModel variation{device::Technology::tsmc65_like(),
                                    {process::Point{1e-3, 1e-3}}};
  Rng rng{77};
  core::DieEnvironment die;
  die.vt_delta = variation.sample_die(rng).at(0);
  die.temperature = to_kelvin(Celsius{31.0});

  core::SensorController macro{core::SensorController::Config{}, 12345};

  auto poll_until_done = [&](const char* op) {
    std::uint64_t cycles = 0;
    while (macro.read_register(Register::kStatus) &
           core::SensorController::kBusy) {
      macro.tick(die, &rng);
      ++cycles;
    }
    std::printf("  %-9s done in %llu bus cycles (%.1f us @ 25 MHz)\n", op,
                static_cast<unsigned long long>(cycles),
                static_cast<double>(cycles) / 25.0);
  };

  std::printf("boot: STATUS = 0x%04x (expect 0: idle, uncalibrated)\n",
              macro.read_register(Register::kStatus));

  // --- power-on self-calibration -----------------------------------------
  std::printf("\nissue CALIBRATE\n");
  macro.write_command(Command::kCalibrate);
  poll_until_done("calibrate");
  const std::uint16_t status = macro.read_register(Register::kStatus);
  std::printf("  STATUS = 0x%04x (CALIBRATED|DONE)\n", status);
  std::printf("  TEMP   = %.2f degC   (true %.2f)\n",
              core::SensorController::decode_temp(
                  macro.read_register(Register::kTemp)),
              to_celsius(die.temperature).value());
  std::printf("  DVTN   = %+.2f mV    (true %+.2f)\n",
              core::SensorController::decode_vt(
                  macro.read_register(Register::kDvtn)) * 1e3,
              die.vt_delta.nmos.value() * 1e3);
  std::printf("  DVTP   = %+.2f mV    (true %+.2f)\n",
              core::SensorController::decode_vt(
                  macro.read_register(Register::kDvtp)) * 1e3,
              die.vt_delta.pmos.value() * 1e3);
  std::printf("  ENERGY = %u pJ\n", macro.read_register(Register::kEnergy));

  // --- periodic temperature polling ---------------------------------------
  std::printf("\npolling loop (die heats up under load):\n");
  for (double t : {35.0, 52.0, 71.0, 66.0, 48.0}) {
    die = die.at_celsius(Celsius{t});
    macro.write_command(Command::kConvert);
    poll_until_done("convert");
    std::printf("    TEMP = %.2f degC (true %.2f), ENERGY = %u pJ\n",
                core::SensorController::decode_temp(
                    macro.read_register(Register::kTemp)),
                t, macro.read_register(Register::kEnergy));
  }

  // --- reset & auto-calibration path --------------------------------------
  std::printf("\nissue SOFT_RESET, then CONVERT (auto-calibrates)\n");
  macro.write_command(Command::kSoftReset);
  macro.write_command(Command::kConvert);
  poll_until_done("convert");
  std::printf("  STATUS = 0x%04x, TEMP = %.2f degC\n",
              macro.read_register(Register::kStatus),
              core::SensorController::decode_temp(
                  macro.read_register(Register::kTemp)));
  return 0;
}
