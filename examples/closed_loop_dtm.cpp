// Closed-loop dynamic thermal management: a runaway-prone workload on a
// weak-sink stack, run three ways.
//
//   uncontained      every die pinned at the top rung: leakage feedback
//                    diverges and the run trips the thermal runaway limit;
//   static worst-case every die parked at the bottom rung: safe, but the
//                    whole fixed work budget is paid at the unscalable
//                    power floor (and leakage) for twice as long;
//   dvfs governor    per-die ladder with hysteresis: throttles on sensed
//                    temperature, contains the runaway and finishes the
//                    same work sooner.
//
//   $ ./examples/closed_loop_dtm
#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "control/controller.hpp"
#include "control/eval.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "thermal/leakage.hpp"
#include "thermal/workload.hpp"

namespace {

using namespace tsvpt;

constexpr std::size_t kHotDie = 3;  // top die: every bond layer from sink

thermal::StackConfig weak_sink_stack() {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  cfg.sink_resistance = 5.0;  // passively cooled molded package
  return cfg;
}

thermal::Workload hot_workload() {
  thermal::WorkloadPhase hot;
  hot.name = "hot";
  hot.duration = Second{10.0};
  hot.directives.push_back({thermal::PowerDirective::Kind::kUniform, kHotDie,
                            Watt{8.0}, {}, Meter{0.0}});
  for (std::size_t d = 0; d < kHotDie; ++d) {
    hot.directives.push_back({thermal::PowerDirective::Kind::kUniform, d,
                              Watt{0.5}, {}, Meter{0.0}});
  }
  return thermal::Workload{{hot}};
}

std::vector<core::SensorSite> build_sites(const thermal::StackConfig& stack) {
  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(stack, 2, 2);
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < 4; ++i) points.push_back(sites[i].location);
  process::VariationModel variation{device::Technology::tsmc65_like(),
                                    points};
  Rng rng{11};
  for (std::size_t d = 0; d < stack.die_count(); ++d) {
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) sites[d * 4 + i].vt_delta = die.at(i);
  }
  return sites;
}

control::Controller::Config make_config(control::PolicyKind kind,
                                        std::size_t static_level) {
  control::Controller::Config cfg;
  cfg.kind = kind;
  cfg.policy.static_level = static_level;
  cfg.policy.ceiling = Celsius{69.0};
  cfg.policy.floor = Celsius{63.0};
  cfg.violation_ceiling = Celsius{80.0};
  cfg.plant.unscalable_fraction = 0.5;  // clock-tree/IO-heavy dies
  return cfg;
}

}  // namespace

int main() {
  const thermal::StackConfig stack = weak_sink_stack();
  const thermal::Workload workload = hot_workload();

  control::EvalConfig eval;
  eval.sample_period = Second{2e-3};
  eval.thermal_step = Second{1e-3};
  eval.work_budget = 2.4;
  eval.max_duration = Second{3.0};
  eval.abort_above = Celsius{120.0};  // silicon is gone past this

  struct Scenario {
    const char* name;
    control::PolicyKind kind;
    std::size_t static_level;
  };
  const Scenario scenarios[] = {
      {"uncontained (all dies at P0)", control::PolicyKind::kStaticWorstCase,
       0},
      {"static worst-case (bottom rung)",
       control::PolicyKind::kStaticWorstCase, control::kLadderBottom},
      {"dvfs ladder governor", control::PolicyKind::kDvfsLadder,
       control::kLadderBottom},
  };

  std::cout << "8 W on the top die of a 5 K/W stack; violation ceiling 80"
               " degC; runaway abort 120 degC;\nfixed work budget "
            << eval.work_budget << " (die-seconds of relative frequency)\n\n";

  for (const Scenario& s : scenarios) {
    thermal::ThermalNetwork network{stack};
    const device::Technology tech = device::Technology::tsmc65_like();
    for (std::size_t d = 0; d < stack.die_count(); ++d) {
      network.set_leakage_power(
          d, thermal::leakage_source(
                 tech, Volt{1.0},
                 Watt{0.10 / static_cast<double>(stack.dies[d].nx *
                                                 stack.dies[d].ny)},
                 Kelvin{318.15}));
    }
    std::vector<core::SensorSite> sites = build_sites(stack);
    core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites, 21};
    control::Controller controller{make_config(s.kind, s.static_level),
                                   stack.die_count()};

    std::cout << s.name << ":\n";
    const control::EvalResult result =
        run_closed_loop(network, workload, monitor, controller, eval, 33);
    const control::Controller::Stats& st = result.stats;
    if (result.runaway) {
      std::printf(
          "  THERMAL RUNAWAY at t=%.3f s: true temperature crossed %.0f "
          "degC (work %.2f of %.2f done)\n\n",
          result.duration.value(), eval.abort_above.value(), st.work_done,
          eval.work_budget);
    } else {
      std::printf(
          "  %s in %.3f s: energy %.2f J, peak %.2f degC, "
          "%.3f violation-s, %llu actuations\n\n",
          result.completed ? "work budget met" : "timed out",
          result.duration.value(), st.energy_j, st.peak_true_c,
          st.violation_s,
          static_cast<unsigned long long>(st.actuations));
    }
  }

  std::cout
      << "Takeaway: uncontrolled, leakage feedback runs the stack away;\n"
         "parked at the worst-case rung it is safe but pays the unscalable\n"
         "floor and leakage for the whole stretched-out run; the closed\n"
         "loop finishes the same work sooner, cheaper, and still under the\n"
         "ceiling.\n";
  return 0;
}
