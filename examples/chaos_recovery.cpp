// Chaos and recovery: faults injected into a supervised fleet, watched all
// the way back to health.  A hand-written FaultPlan breaks one sensor per
// failure mode — a stuck oscillator, a dead oscillator, a corrupted wire, a
// killed worker — while the per-stack HealthSupervisor quarantines the
// victims, serves flagged substitutes, re-probes with exponential backoff,
// and recalibrates on recovery; the collector's frame-age watchdog revives
// the stalled worker.  By the end of the run every site is Healthy again.
//
//   $ ./examples/chaos_recovery
#include <cstdio>

#include "inject/fault_plan.hpp"
#include "inject/injectors.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

int main() {
  using namespace tsvpt;

  telemetry::FleetSampler::Config fleet;
  fleet.stack_count = 4;
  fleet.thread_count = 2;
  fleet.scans_per_stack = 60;
  fleet.seed = 11;
  fleet.supervise = true;
  // Sparse 2x2 grids see ~20 C leave-one-out hotspot deviations; the
  // spatial threshold must clear them or clean sites false-quarantine.
  fleet.health.fault.threshold = Celsius{25.0};
  telemetry::FleetSampler sampler{fleet};

  inject::FaultPlan plan;
  plan.add({.kind = inject::FaultKind::kStuckRo, .stack = 0, .site = 1,
            .start_scan = 5, .end_scan = 20, .magnitude = 95.0});
  plan.add({.kind = inject::FaultKind::kDeadRo, .stack = 1, .site = 6,
            .start_scan = 8, .end_scan = 22});
  plan.add({.kind = inject::FaultKind::kFrameCorrupt, .stack = 3,
            .start_scan = 6, .end_scan = 9});
  plan.add({.kind = inject::FaultKind::kWorkerStall, .stack = 2,
            .start_scan = 10, .end_scan = 11});
  inject::ChaosInjector injector{plan, &sampler};
  sampler.set_interceptor(&injector);

  std::printf("fault plan (%zu events):\n", plan.size());
  for (const auto& e : plan.events()) {
    std::printf("  %-14s stack %zu site %2zu scans [%llu, %llu)\n",
                to_string(e.kind), e.stack, e.site,
                static_cast<unsigned long long>(e.start_scan),
                static_cast<unsigned long long>(e.end_scan));
  }

  telemetry::Aggregator::Config collect;
  collect.alert_threshold = Celsius{200.0};
  collect.fault.threshold = Celsius{25.0};
  collect.watchdog_timeout = Second{0.03};
  collect.on_stalled_ring = [&](std::size_t w) { sampler.resume_worker(w); };
  telemetry::Aggregator aggregator{collect};

  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();

  std::printf("\nhealth transitions (producer side):\n");
  for (std::size_t k = 0; k < sampler.stack_count(); ++k) {
    for (const auto& t : sampler.transitions(k)) {
      std::printf("  scan %3llu  stack %zu site %2zu  %-11s -> %-11s  %s\n",
                  static_cast<unsigned long long>(t.scan), k, t.site_index,
                  core::to_string(t.from), core::to_string(t.to),
                  t.reason.c_str());
    }
  }

  const auto& sum = aggregator.summary();
  std::size_t unhealthy = 0;
  for (std::size_t k = 0; k < sampler.stack_count(); ++k) {
    for (const core::HealthState s : sampler.health(k)) {
      unhealthy += s == core::HealthState::kHealthy ? 0 : 1;
    }
  }
  std::printf("\ncollector: %llu frames, %llu decode errors (CRC victims), "
              "%llu substituted readings, %llu watchdog kicks\n",
              static_cast<unsigned long long>(sum.frames),
              static_cast<unsigned long long>(sum.decode_errors),
              static_cast<unsigned long long>(sum.substituted_readings),
              static_cast<unsigned long long>(sum.watchdog_kicks));
  std::printf("final state: %zu sites not Healthy — %s\n", unhealthy,
              unhealthy == 0 ? "fleet fully recovered" : "RECOVERY FAILED");
  return unhealthy == 0 ? 0 : 1;
}
