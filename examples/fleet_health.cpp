// Fleet health: failure injection and on-line fault localization on a live
// stack.  A 36-sensor monitor runs; one sensor dies, one sticks hot.  The
// spatial fault detector localizes both; the jump detector distinguishes
// the stuck sensor's instantaneous jump from a real (gradual) hotspot.
//
//   $ ./examples/fleet_health
#include <cstdio>
#include <memory>

#include "core/fault_detector.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"

int main() {
  using namespace tsvpt;
  using namespace tsvpt::core;

  const thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{cfg};
  std::vector<SensorSite> sites = StackMonitor::uniform_sites(cfg, 3, 3);
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < 9; ++i) points.push_back(sites[i].location);
  process::VariationModel variation{device::Technology::tsmc65_like(),
                                    points};
  Rng rng{2024};
  for (std::size_t d = 0; d < cfg.die_count(); ++d) {
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 9; ++i) sites[d * 9 + i].vt_delta = die.at(i);
  }
  network.set_uniform_power(0, Watt{2.0});
  network.set_temperatures(network.steady_state());

  StackMonitor monitor{&network, PtSensor::Config{}, sites, 77};
  monitor.calibrate_all(&rng);
  const FaultDetector spatial;
  JumpDetector temporal;

  auto report = [&](const char* label) {
    const auto sample = monitor.sample_all(&rng);
    const auto verdicts = spatial.analyze(sample);
    const auto jumped = temporal.feed(sample);
    std::printf("%s\n", label);
    bool any = false;
    for (const auto& v : verdicts) {
      if (!v.suspect) continue;
      any = true;
      std::printf("  spatial:  site %2zu (die %zu) SUSPECT — %s "
                  "(deviation %+.1f degC)\n",
                  v.site_index, sample[v.site_index].die, v.reason.c_str(),
                  v.deviation.value());
    }
    for (std::size_t s : jumped) {
      any = true;
      std::printf("  temporal: site %2zu jumped alone since last scan\n", s);
    }
    if (!any) std::printf("  all %zu sensors consistent\n", sample.size());
    std::printf("\n");
  };

  report("scan 1 (healthy fleet):");

  std::printf(">>> injecting faults: site 7 TDRO dies; site 13 sticks at a "
              "hot frequency\n\n");
  monitor.sensor(7).inject_fault(RoRole::kTdro, RoFault::kDead);
  PtSensor& stuck = monitor.sensor(13);
  stuck.inject_fault(RoRole::kTdro, RoFault::kStuck,
                     stuck.model_frequency(RoRole::kTdro, Volt{0.0},
                                           Volt{0.0}, Kelvin{385.0}));
  report("scan 2 (after fault injection):");

  std::printf(">>> real event: 3 W hotspot appears on die 0 and grows\n\n");
  network.add_hotspot(0, {2.5e-3, 2.5e-3}, Meter{1.5e-3}, Watt{3.0});
  network.step(Second{30e-3});
  report("scan 3 (during the real transient):");
  return 0;
}
