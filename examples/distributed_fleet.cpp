// Distributed fleet ingestion: two publisher "sites" feeding one sharded
// TCP ingest service, with an exactness check at the end.
//
// Each site runs its own FleetSampler (four stacks, disjoint fleet id
// ranges via stack_id_base) and a threaded FleetPublisher that drains the
// sampler's lock-free rings into size/time-bounded batches over loopback
// TCP.  The IngestServer partitions the merged stream across two shard
// aggregators by a stable hash of the stack id and records every frame to
// an on-disk historian.
//
// The punchline: after the run, the historian is replayed through ONE
// Aggregator — the single-process path — and its FleetView digest must
// equal the sharded service's digest bit for bit.  Sharding changes where
// the work happens, never what is computed.
//
//   $ ./examples/distributed_fleet
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "ingest/fleet_view.hpp"
#include "ingest/publisher.hpp"
#include "ingest/server.hpp"
#include "store/store.hpp"
#include "telemetry/fleet_sampler.hpp"

int main() {
  using namespace tsvpt;

  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "tsvpt_distributed_fleet")
          .string();
  std::filesystem::remove_all(store_dir);

  // -- the service ---------------------------------------------------------
  ingest::IngestServer::Config server_cfg;
  server_cfg.shard_count = 2;
  server_cfg.store_dir = store_dir;  // historian rides along server-side
  ingest::IngestServer server(server_cfg);
  server.start();
  std::printf("ingest server on 127.0.0.1:%u, %zu shards\n\n", server.port(),
              server.shard_count());

  // -- two publisher sites -------------------------------------------------
  auto make_site = [&](std::uint32_t id_base, unsigned seed) {
    telemetry::FleetSampler::Config cfg;
    cfg.stack_count = 4;
    cfg.thread_count = 2;
    cfg.scans_per_stack = 25;
    cfg.stack_id_base = id_base;  // disjoint fleet id ranges per site
    cfg.seed = seed;
    return cfg;
  };
  telemetry::FleetSampler site_a{make_site(0, 7)};
  telemetry::FleetSampler site_b{make_site(100, 8)};

  ingest::FleetPublisher::Config pub_cfg;
  pub_cfg.port = server.port();
  pub_cfg.batch_max_frames = 16;
  ingest::FleetPublisher pub_a{pub_cfg};
  ingest::FleetPublisher pub_b{pub_cfg};

  pub_a.start(site_a.rings());
  pub_b.start(site_b.rings());
  std::thread site_b_thread{[&] { site_b.run(); }};
  site_a.run();
  site_b_thread.join();
  pub_a.stop();  // drains the rings and the batch queue before returning
  pub_b.stop();

  // Let the IO thread finish routing the tail, then shut down (stop()
  // drains the shard rings and closes the historian).
  const std::uint64_t produced =
      site_a.total_frames() + site_b.total_frames();
  for (int i = 0; i < 5000 && server.stats().frames < produced; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();

  const ingest::IngestServer::Stats stats = server.stats();
  std::printf("server: %llu frames in %llu batches over %llu connections "
              "(%llu bytes)\n",
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.bytes));
  for (std::size_t s = 0; s < stats.frames_per_shard.size(); ++s) {
    std::printf("  shard %zu ingested %llu frames\n", s,
                static_cast<unsigned long long>(stats.frames_per_shard[s]));
  }

  // -- the fleet-wide view, merged across shards ---------------------------
  ingest::FleetView fleet = server.fleet_view();
  std::printf("\nfleet view: %llu frames, %zu stacks, %llu alerts, "
              "%llu missed\n",
              static_cast<unsigned long long>(fleet.frames()),
              fleet.stacks().size(),
              static_cast<unsigned long long>(fleet.alerts()),
              static_cast<unsigned long long>(fleet.missed()));
  for (const auto& [stack_id, sv] : fleet.stacks()) {
    std::printf("  stack %3u: %3llu frames, %llu alerts\n", stack_id,
                static_cast<unsigned long long>(sv.frames),
                static_cast<unsigned long long>(sv.alerts));
  }

  // -- exactness: replay the historian through ONE aggregator --------------
  std::vector<telemetry::Alert> alerts;
  telemetry::Aggregator single{
      telemetry::Aggregator::Config{},
      [&](const telemetry::Alert& alert) { alerts.push_back(alert); }};
  const store::StoreReader reader{store_dir};
  const auto replayed = reader.replay({}, single);

  ingest::FleetView baseline;
  baseline.add_shard(single.summary(), alerts);
  baseline.finalize();

  std::printf("\nreplayed %llu frames from the historian into a single "
              "aggregator\n",
              static_cast<unsigned long long>(replayed.frames_replayed));
  std::printf("sharded digest %u, single-process digest %u -> %s\n",
              fleet.digest(), baseline.digest(),
              fleet.digest() == baseline.digest() ? "identical"
                                                  : "MISMATCH");

  std::filesystem::remove_all(store_dir);
  return fleet.digest() == baseline.digest() ? 0 : 1;
}
