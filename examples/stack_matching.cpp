// Stack matching: assembling 4-die TSV stacks from a wafer's dies.  A
// synchronous cross-die design runs at the speed of its *slowest* die, so
// random assembly wastes the fast dies.  Each die's PT sensor extracts its
// process point at known-good-die test (no thermal insertions); matching
// dies by sensed speed tightens every stack's internal spread and raises
// the worst-stack clock.
//
//   $ ./examples/stack_matching
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "circuit/ring_oscillator.hpp"
#include "core/pt_sensor.hpp"
#include "process/wafer.hpp"

int main() {
  using namespace tsvpt;
  const device::Technology tech = device::Technology::tsmc65_like();
  const process::WaferModel wafer{process::WaferParams{}, 42};
  const circuit::RingOscillator critical_path =
      circuit::RingOscillator::make(tech, circuit::RoTopology::kStandard);

  // Sample 128 dies off the wafer; each one self-reports its process point.
  constexpr std::size_t kDies = 128;
  struct Die {
    double speed_true_mhz;
    double speed_sensed_mhz;
  };
  std::vector<Die> dies;
  const std::size_t stride = wafer.die_count() / kDies;
  for (std::size_t i = 0; i < kDies; ++i) {
    const device::VtDelta truth = wafer.die_offset(i * stride);
    core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(1, i)};
    Rng noise{derive_seed(2, i)};
    core::DieEnvironment env;
    env.temperature = to_kelvin(Celsius{noise.uniform(20.0, 35.0)});
    env.vt_delta = truth;
    const auto est = sensor.self_calibrate(env, &noise);

    auto speed = [&](device::VtDelta d) {
      circuit::OperatingPoint op;
      op.vdd = Volt{1.0};
      op.temperature = to_kelvin(Celsius{85.0});  // worst-case corner
      op.vt_delta = d;
      return critical_path.frequency(op).value() / 1e6;
    };
    dies.push_back({speed(truth), speed({est.dvtn, est.dvtp})});
  }

  // Assemble 32 stacks of 4: random order vs sensed-speed-sorted order.
  auto stack_speeds = [&](const std::vector<std::size_t>& order) {
    std::vector<double> mins;
    std::vector<double> spreads;
    for (std::size_t s = 0; s < kDies / 4; ++s) {
      double lo = 1e30;
      double hi = -1e30;
      for (std::size_t k = 0; k < 4; ++k) {
        const double f = dies[order[4 * s + k]].speed_true_mhz;
        lo = std::min(lo, f);
        hi = std::max(hi, f);
      }
      mins.push_back(lo);
      spreads.push_back(hi - lo);
    }
    return std::pair{mins, spreads};
  };
  auto mean = [](const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  };

  std::vector<std::size_t> random_order(kDies);
  std::iota(random_order.begin(), random_order.end(), 0);
  Rng shuffle_rng{99};
  shuffle_rng.shuffle(random_order);

  std::vector<std::size_t> matched_order = random_order;
  std::sort(matched_order.begin(), matched_order.end(),
            [&](std::size_t a, std::size_t b) {
              return dies[a].speed_sensed_mhz > dies[b].speed_sensed_mhz;
            });

  const auto [random_mins, random_spreads] = stack_speeds(random_order);
  const auto [matched_mins, matched_spreads] = stack_speeds(matched_order);

  std::printf("32 four-die stacks from one wafer (speeds at 85 degC):\n\n");
  std::printf("  %-22s %-14s %-18s\n", "assembly", "mean spread",
              "mean stack clock");
  std::printf("  %-22s %8.1f MHz   %8.1f MHz\n", "random pick",
              mean(random_spreads), mean(random_mins));
  std::printf("  %-22s %8.1f MHz   %8.1f MHz\n", "sensor-matched",
              mean(matched_spreads), mean(matched_mins));

  // How good is the sensed ordering vs a perfect (true-speed) ordering?
  std::vector<std::size_t> oracle_order = random_order;
  std::sort(oracle_order.begin(), oracle_order.end(),
            [&](std::size_t a, std::size_t b) {
              return dies[a].speed_true_mhz > dies[b].speed_true_mhz;
            });
  const auto [oracle_mins, oracle_spreads] = stack_speeds(oracle_order);
  std::printf("  %-22s %8.1f MHz   %8.1f MHz\n", "oracle (true speeds)",
              mean(oracle_spreads), mean(oracle_mins));

  std::printf(
      "\nTakeaway: mV-scale Vt extraction orders dies nearly as well as the\n"
      "oracle — intra-stack speed spread shrinks ~10x and the mean stack\n"
      "clock (set by each stack's slowest die) rises vs random assembly,\n"
      "with no wafer-probe or thermal test insertions.\n");
  return 0;
}
