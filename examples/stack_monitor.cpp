// Stack monitor: the paper's system context.  A 4-die TSV 3D stack (modeled
// on the group's neural-recording microsystems: a hot DSP/MCU die under
// cool analog front-end dies) runs a bursty workload; one PT sensor per die
// quadrant tracks the temperature field and reports the per-die process map.
//
//   $ ./examples/stack_monitor
#include <iomanip>
#include <iostream>

#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "sim/monitor_session.hpp"
#include "thermal/workload.hpp"

int main() {
  using namespace tsvpt;

  // The stack: 4 thinned 5x5 mm dies, TSV field, package heat sink below.
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{stack};

  // Workload: 25 ms compute bursts (migrating hotspot on die 0) over a
  // 0.25 W idle floor on the AFE dies.
  const thermal::Workload workload = thermal::Workload::burst_idle(
      stack, Watt{5.0}, Watt{0.25}, Second{50e-3}, 3);

  // Sensor sites: 2x2 per die, with realistic process variation and
  // TSV-stress shifts that grow with die thinning up the stack.
  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(stack, 2, 2);
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < 4; ++i) points.push_back(sites[i].location);
  process::VariationModel variation{device::Technology::tsmc65_like(), points};
  Rng rng{42};
  for (std::size_t d = 0; d < stack.die_count(); ++d) {
    variation.set_tsv_stress(process::TsvStressField{
        stack.tsv.centers, process::TsvStressParams{},
        1.0 + 0.25 * static_cast<double>(d)});
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) {
      sites[d * 4 + i].vt_delta = die.at(i);
      sites[d * 4 + i].supply = circuit::SupplyRail{
          {Volt{1.0}, Volt{3e-3 * static_cast<double>(d)}, Volt{1e-3}}};
    }
  }

  // Supply-compensated sensors: upper dies see real PDN droop.
  core::PtSensor::Config sensor_cfg;
  sensor_cfg.compensate_supply = true;
  core::StackMonitor monitor{&network, sensor_cfg, sites, 7};

  // Run 150 ms with 2 ms sampling.
  sim::MonitoringSession::Config session_cfg;
  session_cfg.sample_period = Second{2e-3};
  session_cfg.thermal_step = Second{0.5e-3};
  sim::MonitoringSession session{&network, &workload, &monitor, session_cfg, 9};
  session.run(Second{150e-3});

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "time(ms)  die0 true/sensed   die1   die2   die3 (hottest site, degC)\n";
  for (std::size_t k = 0; k < session.trace().size(); k += 10) {
    const sim::SamplePoint& point = session.trace()[k];
    std::cout << std::setw(7) << point.time.value() * 1e3 << "  ";
    for (std::size_t d = 0; d < 4; ++d) {
      double best_true = -1e30;
      double best_sensed = 0.0;
      for (const auto& r : point.readings) {
        if (r.die == d && r.truth.value() > best_true) {
          best_true = r.truth.value();
          best_sensed = r.sensed.value();
        }
      }
      std::cout << best_true << "/" << best_sensed << "  ";
    }
    std::cout << '\n';
  }

  const Samples errors = session.error_samples();
  std::cout << "\ntracking error over " << errors.count()
            << " readings: 3-sigma = " << errors.three_sigma()
            << " degC, worst = " << errors.max_abs() << " degC\n";
  std::cout << "total sensing energy: "
            << session.total_sensing_energy().value() * 1e9 << " nJ\n\n";

  // The process map the stack integrator gets for free from calibration.
  std::cout << "process map (die-mean extracted dVtn / dVtp, mV):\n";
  const auto map = monitor.process_map();
  for (std::size_t d = 0; d < 4; ++d) {
    double sum_n = 0.0;
    double sum_p = 0.0;
    int count = 0;
    for (const auto& r : map) {
      if (r.die != d) continue;
      sum_n += r.dvtn_hat.value() * 1e3;
      sum_p += r.dvtp_hat.value() * 1e3;
      ++count;
    }
    std::cout << "  die " << d << ": " << sum_n / count << " / "
              << sum_p / count << '\n';
  }
  return 0;
}
