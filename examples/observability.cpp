// Self-observability: the pipeline watching itself.  A small fleet runs
// with the metrics registry and flight recorder enabled (the default);
// afterwards the program reads back what the instrumentation saw — exact
// frame counters reconciled against the sampler's own ledger, latency
// quantiles from the lock-free histograms, a Prometheus exposition ready
// to scrape, and a Chrome trace ("chrome://tracing" / Perfetto) of every
// span the layers recorded.
//
//   $ ./examples/observability
//   $ # then load observability_trace.json in https://ui.perfetto.dev
#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

int main() {
  using namespace tsvpt;

  // Start from a clean slate so the numbers below are this run's alone.
  obs::set_enabled(true);
  obs::Registry::instance().reset_values();
  obs::FlightRecorder::instance().clear();

  // Applications can mint their own metrics next to the built-in ones;
  // handles are cheap value types backed by the process-wide registry.
  const obs::Counter demo_runs = obs::counter("demo_runs_total");
  const obs::Histogram demo_seconds = obs::histogram("demo_run_seconds");

  telemetry::FleetSampler::Config fleet;
  fleet.stack_count = 6;
  fleet.thread_count = 3;
  fleet.scans_per_stack = 25;
  fleet.seed = 2026;

  {
    // A span both records a trace event and feeds the histogram.
    const obs::ObsSpan run_span{"demo", "fleet_run", demo_seconds};
    demo_runs.inc();

    telemetry::FleetSampler sampler{fleet};
    telemetry::Aggregator aggregator{telemetry::Aggregator::Config{}};
    aggregator.start(sampler.rings());
    sampler.run();
    aggregator.stop();

    std::printf("fleet done: %llu frames produced, %llu dropped\n\n",
                static_cast<unsigned long long>(sampler.total_frames()),
                static_cast<unsigned long long>(sampler.total_dropped()));
  }

  // 1. Counters: the instrumentation's ledger of everything that happened.
  std::printf("-- counters ------------------------------------------\n");
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
  for (const auto& [name, value] : snap.counters) {
    std::printf("  %-42s %10llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }

  // 2. Histograms: latency quantiles with no locks on the observe path.
  std::printf("\n-- latency quantiles ---------------------------------\n");
  std::printf("  %-34s %8s %9s %9s %9s\n", "histogram", "count", "p50 us",
              "p99 us", "max us");
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    std::printf("  %-34s %8llu %9.1f %9.1f %9.1f\n", h.name.c_str(),
                static_cast<unsigned long long>(h.count), h.p50 * 1e6,
                h.p99 * 1e6, h.max * 1e6);
  }

  // 3. Exposition: the same snapshot as scrape-ready Prometheus text.
  std::printf("\n-- prometheus (first lines) --------------------------\n");
  const std::string prom = obs::metrics_prometheus();
  std::size_t shown = 0, pos = 0;
  while (shown < 8 && pos < prom.size()) {
    const std::size_t nl = prom.find('\n', pos);
    std::printf("  %s\n", prom.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    shown += 1;
  }
  std::printf("  ... (%zu bytes total)\n", prom.size());

  // 4. Flight recorder: dump the span timeline as a Chrome trace.
  const auto events = obs::FlightRecorder::instance().snapshot();
  const char* trace_path = "observability_trace.json";
  std::ofstream{trace_path} << obs::to_chrome_trace(events);
  std::printf("\n%zu trace events written to %s "
              "(load in chrome://tracing or ui.perfetto.dev)\n",
              events.size(), trace_path);
  std::printf("flight recorder dropped %llu old events (ring is bounded)\n",
              static_cast<unsigned long long>(
                  obs::FlightRecorder::instance().dropped()));
  return 0;
}
