// Process binning: the "Vt scatter" motivation of the paper, used
// productively.  At power-on each die's sensor extracts (dVtn, dVtp); the
// integrator bins dies by predicted speed and leakage — without any wafer
// probe data — and can match dies across a stack.
//
//   $ ./examples/process_binning
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "circuit/ring_oscillator.hpp"
#include "core/pt_sensor.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"

int main() {
  using namespace tsvpt;
  const device::Technology tech = device::Technology::tsmc65_like();
  const process::VariationModel variation{tech,
                                          {process::Point{2.5e-3, 2.5e-3}}};

  // A proxy critical path: the standard RO's frequency predicts logic speed;
  // the device leakage model predicts static power.
  const circuit::RingOscillator critical_path =
      circuit::RingOscillator::make(tech, circuit::RoTopology::kStandard);
  const device::Mosfet nmos{tech, device::TransistorKind::kNmos};
  const device::Mosfet pmos{tech, device::TransistorKind::kPmos};

  struct Die {
    std::size_t id;
    double speed_true_mhz;
    double speed_pred_mhz;
    double leak_true_na;
    double leak_pred_na;
  };
  std::vector<Die> dies;

  const process::MonteCarlo mc{99, 48};
  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(5, trial)};
    core::DieEnvironment env;
    env.temperature = to_kelvin(Celsius{rng.uniform(20.0, 35.0)});
    env.vt_delta = die.at(0);
    const auto est = sensor.self_calibrate(env, &rng);

    auto speed = [&](device::VtDelta d) {
      circuit::OperatingPoint op;
      op.vdd = Volt{1.0};
      op.temperature = to_kelvin(Celsius{25.0});
      op.vt_delta = d;
      return critical_path.frequency(op).value() / 1e6;
    };
    auto leakage = [&](device::VtDelta d) {
      const Kelvin t = to_kelvin(Celsius{25.0});
      return (nmos.leakage(Volt{1.0}, t, d.nmos).value() +
              pmos.leakage(Volt{1.0}, t, d.pmos).value()) *
             1e12;
    };
    dies.push_back({trial, speed(die.at(0)), speed({est.dvtn, est.dvtp}),
                    leakage(die.at(0)), leakage({est.dvtn, est.dvtp})});
  });

  // Bin by predicted speed into fast/typical/slow thirds.
  std::sort(dies.begin(), dies.end(), [](const Die& a, const Die& b) {
    return a.speed_pred_mhz > b.speed_pred_mhz;
  });
  const std::size_t third = dies.size() / 3;

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "48 dies binned by sensor-predicted critical-path speed:\n\n";
  const char* bins[] = {"FAST", "TYP ", "SLOW"};
  std::size_t misbinned = 0;
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t lo = b * third;
    const std::size_t hi = b == 2 ? dies.size() : (b + 1) * third;
    double pred_sum = 0.0;
    double true_sum = 0.0;
    double leak_sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      pred_sum += dies[i].speed_pred_mhz;
      true_sum += dies[i].speed_true_mhz;
      leak_sum += dies[i].leak_true_na;
    }
    const double n = static_cast<double>(hi - lo);
    std::cout << "  " << bins[b] << ": mean predicted "
              << pred_sum / n << " MHz, mean true " << true_sum / n
              << " MHz, mean leakage " << leak_sum / n << " pA\n";
  }

  // How well does the predicted ordering match the true ordering?
  std::vector<Die> by_truth = dies;
  std::sort(by_truth.begin(), by_truth.end(), [](const Die& a, const Die& b) {
    return a.speed_true_mhz > b.speed_true_mhz;
  });
  for (std::size_t i = 0; i < dies.size(); ++i) {
    const std::size_t bin_pred = std::min<std::size_t>(i / third, 2);
    for (std::size_t j = 0; j < dies.size(); ++j) {
      if (by_truth[j].id != dies[i].id) continue;
      const std::size_t bin_true = std::min<std::size_t>(j / third, 2);
      if (bin_pred != bin_true) ++misbinned;
      break;
    }
  }
  std::cout << "\nbin agreement with ground truth: "
            << dies.size() - misbinned << "/" << dies.size()
            << " dies in the correct bin\n";
  std::cout << "(speed prediction error is mV-scale Vt extraction error "
               "through the path model)\n";
  return 0;
}
