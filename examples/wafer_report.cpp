// Wafer report: an ASCII wafer map of sensed process speed, reconstructed
// purely from each packaged part's power-on self-calibration — the fab
// feedback loop without wafer probe.  Each cell is one sampled die, binned
// by its sensor-extracted critical-path speed.
//
//   $ ./examples/wafer_report
#include <cstdio>
#include <map>
#include <vector>

#include "circuit/ring_oscillator.hpp"
#include "core/pt_sensor.hpp"
#include "process/wafer.hpp"

int main() {
  using namespace tsvpt;
  const device::Technology tech = device::Technology::tsmc65_like();
  const process::WaferModel wafer{process::WaferParams{}, 7};
  const circuit::RingOscillator path =
      circuit::RingOscillator::make(tech, circuit::RoTopology::kStandard);

  auto speed_of = [&](device::VtDelta d) {
    circuit::OperatingPoint op;
    op.vdd = Volt{1.0};
    op.temperature = to_kelvin(Celsius{25.0});
    op.vt_delta = d;
    return path.frequency(op).value() / 1e6;
  };

  // Sense every 4th die; keep a coarse (x, y) grid for display.
  std::map<std::pair<int, int>, double> sensed_speed;
  double lo = 1e30;
  double hi = -1e30;
  const double pitch = wafer.params().die_pitch_x.value();
  for (std::size_t i = 0; i < wafer.die_count(); i += 4) {
    const process::Point site = wafer.die_sites()[i];
    core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(3, i)};
    Rng noise{derive_seed(4, i)};
    core::DieEnvironment env;
    env.temperature = to_kelvin(Celsius{noise.uniform(20.0, 35.0)});
    env.vt_delta = wafer.die_offset(i);
    const auto est = sensor.self_calibrate(env, &noise);
    const double mhz = speed_of({est.dvtn, est.dvtp});
    const int gx = static_cast<int>(std::lround(site.x / (2.0 * pitch)));
    const int gy = static_cast<int>(std::lround(site.y / (2.0 * pitch)));
    sensed_speed[{gx, gy}] = mhz;
    lo = std::min(lo, mhz);
    hi = std::max(hi, mhz);
  }

  // 5 speed bins, '1' fastest.
  auto bin_of = [&](double mhz) {
    const double norm = (hi - mhz) / (hi - lo + 1e-12);
    return 1 + std::min(4, static_cast<int>(norm * 5.0));
  };

  std::printf("sensed speed map (MHz bins: 1 fastest .. 5 slowest, '.' = "
              "outside wafer)\n");
  std::printf("range: %.0f .. %.0f MHz\n\n", lo, hi);
  const int extent = static_cast<int>(
      std::lround(wafer.params().radius.value() / (2.0 * pitch)));
  for (int gy = extent; gy >= -extent; --gy) {
    std::printf("  ");
    for (int gx = -extent; gx <= extent; ++gx) {
      const auto it = sensed_speed.find({gx, gy});
      if (it == sensed_speed.end()) {
        std::printf(". ");
      } else {
        std::printf("%d ", bin_of(it->second));
      }
    }
    std::printf("\n");
  }
  std::printf("\nThe radial bowl (slow edge, fast center) and the wafer's "
              "tilt are visible —\nreconstructed entirely from packaged "
              "parts' self-calibrations.\n");
  return 0;
}
